//! Seeded, protocol-valid input generators.
//!
//! Each target family gets a weighted grammar: SQL statement streams
//! reusing pgsim's surface (SELECT/EXPLAIN/DML/DDL/transactions, plus the
//! CVE-2019-10130 non-leakproof-operator motif), raw HTTP/1.1 requests
//! with adversarial `Range` values, `Transfer-Encoding` obfuscation, and
//! randomized header casing, and markdown/SVG/XML payload documents built
//! around the libsim pairs' divergence seams (scheme-smuggling whitespace,
//! XXE doctypes, control characters in URLs). Generators draw only from
//! the seeded [`StdRng`], so a case is a pure function of its seed.

use rand::rngs::StdRng;
use rand::Rng;

use crate::case::FuzzCase;
use crate::exec::CRASH_INSTANCE;
use crate::target::TargetId;

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct GenOpts {
    /// Maximum items per case (at least 2 are always generated).
    pub max_items: usize,
    /// Whether a fault schedule is active: the pg-storage grammar then
    /// emits `!CRASH` items that kill + respawn the shadow-discard
    /// instance mid-stream.
    pub chaos: bool,
}

impl Default for GenOpts {
    fn default() -> Self {
        Self {
            max_items: 8,
            chaos: false,
        }
    }
}

const WORDS: &[&str] = &[
    "amber", "basalt", "cedar", "delta", "ember", "flint", "garnet", "heron", "indigo", "juniper",
    "krill", "lumen", "maple", "nectar",
];

fn pick<'a>(rng: &mut StdRng, items: &[&'a str]) -> &'a str {
    let i = rng.gen_range(0..items.len());
    items.get(i).copied().unwrap_or("")
}

fn word(rng: &mut StdRng) -> String {
    format!("{}{}", pick(rng, WORDS), rng.gen_range(0..100u32))
}

fn item_count(rng: &mut StdRng, opts: &GenOpts) -> usize {
    rng.gen_range(2..=opts.max_items.max(2))
}

// ---- SQL ----------------------------------------------------------------

const RLS_TABLES: &[(&str, &[&str])] = &[
    ("users", &["id", "name", "karma"]),
    ("user_secrets", &["secret_level", "owner", "token"]),
];

const PLAIN_TABLES: &[(&str, &[&str])] = &[
    ("inventory", &["id", "sku", "qty"]),
    ("audit_log", &["id", "entry"]),
];

const LEDGER_TABLES: &[(&str, &[&str])] = &[("ledger", &["id", "amount", "note"])];

fn table<'a>(rng: &mut StdRng, tables: &[(&'a str, &'a [&'a str])]) -> (&'a str, &'a [&'a str]) {
    let i = rng.gen_range(0..tables.len());
    tables
        .get(i)
        .map(|(t, c)| (*t, *c))
        .unwrap_or(("users", &["id"]))
}

fn column<'a>(rng: &mut StdRng, columns: &'a [&'a str]) -> &'a str {
    let i = rng.gen_range(0..columns.len().max(1));
    columns.get(i).copied().unwrap_or("id")
}

fn select_stmt(rng: &mut StdRng, tables: &[(&str, &[&str])]) -> String {
    let (t, cols) = table(rng, tables);
    let projection = match rng.gen_range(0..4u32) {
        0 => "*".to_string(),
        1 => column(rng, cols).to_string(),
        2 => format!("{}, {}", column(rng, cols), column(rng, cols)),
        _ => "COUNT(*)".to_string(),
    };
    let mut sql = format!("SELECT {projection} FROM {t}");
    if rng.gen_bool(0.4) {
        let col = column(rng, cols);
        let op = pick(rng, &["<", ">", "=", "<=", ">="]);
        sql.push_str(&format!(" WHERE {col} {op} {}", rng.gen_range(0..120u32)));
    }
    if rng.gen_bool(0.35) {
        sql.push_str(&format!(" ORDER BY {}", column(rng, cols)));
    }
    if rng.gen_bool(0.2) {
        sql.push_str(&format!(" LIMIT {}", rng.gen_range(1..6u32)));
    }
    sql
}

fn insert_stmt(rng: &mut StdRng, tables: &[(&str, &[&str])]) -> String {
    let (t, cols) = table(rng, tables);
    let values: Vec<String> = cols
        .iter()
        .map(|c| {
            if c.ends_with("id")
                || c.ends_with("qty")
                || c.ends_with("karma")
                || c.ends_with("level")
                || c.ends_with("amount")
            {
                format!("{}", rng.gen_range(0..1000u32))
            } else {
                format!("'{}'", word(rng))
            }
        })
        .collect();
    format!("INSERT INTO {t} VALUES ({})", values.join(", "))
}

/// The CVE-2019-10130 motif: a non-leakproof user-defined operator with a
/// selectivity estimator, then a row-security-filtered scan the buggy
/// planner stats-probes with it.
fn rls_motif(rng: &mut StdRng, items: &mut Vec<String>) {
    let threshold = rng.gen_range(100..10_000u32);
    items.push(
        "CREATE FUNCTION op_leak(int, int) RETURNS bool \
         AS 'BEGIN RAISE NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' \
         LANGUAGE plpgsql"
            .to_string(),
    );
    items.push(
        "CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int, \
         restrict=scalarltsel)"
            .to_string(),
    );
    items.push(format!(
        "SELECT * FROM user_secrets WHERE secret_level <<< {threshold}"
    ));
}

/// A user-defined function: valid plpgsql-lite on MiniPg, an unsupported
/// feature on MiniCockroach — implementation diversity, not a bug.
fn function_motif(rng: &mut StdRng, items: &mut Vec<String>) {
    let name = format!("fn_{}", rng.gen_range(0..50u32));
    items.push(format!(
        "CREATE FUNCTION {name}(int, int) RETURNS bool AS 'BEGIN RETURN $1 > $2; END' \
         LANGUAGE plpgsql"
    ));
}

fn sql_case(rng: &mut StdRng, opts: &GenOpts, target: TargetId) -> Vec<String> {
    let (tables, motif_weight): (&[(&str, &[&str])], u32) = match target {
        TargetId::PgRls => (RLS_TABLES, 25),
        TargetId::PgFlavors => (PLAIN_TABLES, 20),
        _ => (LEDGER_TABLES, 0),
    };
    let n = item_count(rng, opts);
    let mut items = Vec::new();
    let mut in_txn = false;
    let mut crashed = false;
    while items.len() < n {
        let roll = rng.gen_range(0..100u32);
        if roll < motif_weight {
            match target {
                TargetId::PgRls => rls_motif(rng, &mut items),
                _ => function_motif(rng, &mut items),
            }
            continue;
        }
        if target == TargetId::PgStorage && opts.chaos && !crashed && roll < 40 {
            // Crash motif: a write that lands in the WAL tail, the crash
            // (the armed fault tears the torn instance's durable suffix),
            // then an unfiltered read. Whether the recovered instance
            // still has the write is exactly where the two recovery
            // policies disagree — the read is what surfaces it.
            if in_txn {
                items.push("COMMIT".to_string());
                in_txn = false;
            }
            items.push(insert_stmt(rng, tables));
            items.push(format!("!CRASH {CRASH_INSTANCE}"));
            items.push("SELECT * FROM ledger ORDER BY id".to_string());
            crashed = true;
            continue;
        }
        match rng.gen_range(0..100u32) {
            0..=34 => items.push(select_stmt(rng, tables)),
            35..=59 => items.push(insert_stmt(rng, tables)),
            60..=69 => {
                let (t, cols) = table(rng, tables);
                let col = column(rng, cols);
                items.push(format!(
                    "UPDATE {t} SET {col} = {} WHERE id = {}",
                    rng.gen_range(0..500u32),
                    rng.gen_range(1..6u32)
                ));
            }
            70..=76 => {
                items.push(format!(
                    "EXPLAIN SELECT * FROM {} WHERE id < {}",
                    table(rng, tables).0,
                    rng.gen_range(1..50u32)
                ));
            }
            77..=86 => {
                if in_txn {
                    items.push(pick(rng, &["COMMIT", "ROLLBACK"]).to_string());
                    in_txn = false;
                } else {
                    items.push("BEGIN".to_string());
                    in_txn = true;
                }
            }
            87..=92 => items.push(format!("SET application_name = '{}'", word(rng))),
            _ => {
                let (t, _) = table(rng, tables);
                items.push(format!(
                    "DELETE FROM {t} WHERE id = {}",
                    rng.gen_range(1..8u32)
                ));
            }
        }
    }
    if in_txn {
        items.push("COMMIT".to_string());
    }
    items
}

// ---- HTTP ---------------------------------------------------------------

/// Randomizes header-name casing: exact, lower, upper, or studly.
fn casing(rng: &mut StdRng, name: &str) -> String {
    match rng.gen_range(0..4u32) {
        0 => name.to_string(),
        1 => name.to_ascii_lowercase(),
        2 => name.to_ascii_uppercase(),
        _ => name
            .chars()
            .enumerate()
            .map(|(i, c)| {
                if i % 2 == 0 {
                    c.to_ascii_uppercase()
                } else {
                    c.to_ascii_lowercase()
                }
            })
            .collect(),
    }
}

/// `Range` values around the CVE-2017-7529 overflow seam.
fn range_value(rng: &mut StdRng) -> String {
    match rng.gen_range(0..6u32) {
        0 => {
            let a = rng.gen_range(0..20u32);
            let b = a + rng.gen_range(0..20u32);
            format!("bytes={a}-{b}")
        }
        1 => format!("bytes=-{}", rng.gen_range(1..32u32)),
        2 => pick(
            rng,
            &[
                "bytes=-9223372036854775608",
                "bytes=-9223372036854775807",
                "bytes=-9223372036854775616",
            ],
        )
        .to_string(),
        3 => format!(
            "bytes={}-{},{}-{}",
            rng.gen_range(0..4u32),
            rng.gen_range(4..8u32),
            rng.gen_range(8..12u32),
            rng.gen_range(12..20u32)
        ),
        4 => format!("bytes={}-", rng.gen_range(0..30u32)),
        _ => pick(rng, &["bytes=oops", "chars=0-5", "bytes="]).to_string(),
    }
}

fn range_request(rng: &mut StdRng) -> String {
    let method = pick(rng, &["GET", "GET", "GET", "HEAD"]);
    let path = pick(
        rng,
        &["/index.html", "/index.html", "/big.bin", "/missing.html"],
    );
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\n{}: fuzz\r\n",
        casing(rng, "Host")
    );
    if rng.gen_bool(0.65) {
        req.push_str(&format!(
            "{}: {}\r\n",
            casing(rng, "Range"),
            range_value(rng)
        ));
    }
    if rng.gen_bool(0.3) {
        req.push_str(&format!("{}: {}\r\n", casing(rng, "X-Fuzz-Pad"), word(rng)));
    }
    req.push_str("\r\n");
    req
}

/// A CVE-2019-18277-shaped request: an outer request for a permitted path
/// whose body hides a complete request for a denied path behind an
/// obfuscated `Transfer-Encoding`.
fn smuggle_request(rng: &mut StdRng) -> String {
    let inner = format!(
        "GET /internal/flush HTTP/1.1\r\n{}: s1\r\n\r\n",
        casing(rng, "Host")
    );
    let te = pick(
        rng,
        &[
            "chunked",
            "\u{b}chunked",
            " chunked",
            "identity, chunked",
            "chunked ",
            "\u{c}chunked",
        ],
    );
    format!(
        "GET /public HTTP/1.1\r\n{}: s1\r\n{}: {te}\r\nContent-Length: {}\r\n\r\n{inner}",
        casing(rng, "Host"),
        casing(rng, "Transfer-Encoding"),
        inner.len()
    )
}

fn http_case(rng: &mut StdRng, opts: &GenOpts, target: TargetId) -> Vec<String> {
    let n = item_count(rng, opts);
    (0..n)
        .map(|_| match target {
            TargetId::HttpSmuggle => {
                if rng.gen_bool(0.5) {
                    format!(
                        "GET /public HTTP/1.1\r\n{}: s1\r\n\r\n",
                        casing(rng, "Host")
                    )
                } else {
                    smuggle_request(rng)
                }
            }
            _ => range_request(rng),
        })
        .collect()
}

// ---- Payloads -----------------------------------------------------------

/// URL schemes around the `javascript:` detection seams all three payload
/// pairs share (raw prefix check vs normalize-then-check).
fn scheme(rng: &mut StdRng) -> &'static str {
    pick(
        rng,
        &[
            "https://example.test/",
            "javascript:",
            "java\tscript:",
            "JaVaScRiPt:",
            "java\u{b}script:",
            "java\u{1}script:",
            "  javascript:",
        ],
    )
}

fn markdown_doc(rng: &mut StdRng) -> String {
    let parts = rng.gen_range(1..4u32);
    let mut doc = Vec::new();
    for _ in 0..parts {
        doc.push(match rng.gen_range(0..5u32) {
            0 => format!("plain **{}** text", word(rng)),
            1 => format!("[{}]({}{})", word(rng), scheme(rng), word(rng)),
            2 => format!("`code {}`", word(rng)),
            3 => format!("# heading {}", word(rng)),
            _ => format!("<b>{}</b>", word(rng)),
        });
    }
    doc.join("\n\n")
}

fn svg_doc(rng: &mut StdRng) -> String {
    let w = rng.gen_range(8..32u32);
    let h = rng.gen_range(8..32u32);
    if rng.gen_bool(0.35) {
        let path = pick(
            rng,
            &["/app/secrets.env", "/etc/passwd", "/app/missing.txt"],
        );
        format!(
            "<!DOCTYPE svg [<!ENTITY xxe SYSTEM \"file://{path}\">]>\n\
             <svg width=\"{w}\" height=\"{h}\"><text>&xxe;</text></svg>"
        )
    } else {
        let x = rng.gen_range(0..8u32);
        let y = rng.gen_range(0..8u32);
        let rw = rng.gen_range(1..8u32);
        let rh = rng.gen_range(1..8u32);
        format!(
            "<svg width=\"{w}\" height=\"{h}\">\
             <rect x=\"{x}\" y=\"{y}\" width=\"{rw}\" height=\"{rh}\"/>\
             <text>{}</text></svg>",
            word(rng)
        )
    }
}

fn html_fragment(rng: &mut StdRng) -> String {
    match rng.gen_range(0..5u32) {
        0 => format!("<b>{}</b>", word(rng)),
        1 => format!("<a href=\"{}alert(1)\">{}</a>", scheme(rng), word(rng)),
        2 => format!("<script>{}</script>", word(rng)),
        3 => format!("<i onclick=\"{}()\">{}</i>", word(rng), word(rng)),
        _ => format!("<p>{} and {}</p>", word(rng), word(rng)),
    }
}

fn payload_case(rng: &mut StdRng, opts: &GenOpts, target: TargetId) -> Vec<String> {
    let n = item_count(rng, opts);
    (0..n)
        .map(|_| match target {
            TargetId::LibMarkdown => markdown_doc(rng),
            TargetId::LibSvg => svg_doc(rng),
            _ => html_fragment(rng),
        })
        .collect()
}

// ---- Entry point --------------------------------------------------------

/// Generates one protocol-valid case for `target` from the seeded rng.
#[must_use]
pub fn generate(target: TargetId, rng: &mut StdRng, opts: &GenOpts) -> FuzzCase {
    let items = match target {
        TargetId::PgRls | TargetId::PgFlavors | TargetId::PgStorage => sql_case(rng, opts, target),
        TargetId::HttpRange | TargetId::HttpSmuggle => http_case(rng, opts, target),
        TargetId::LibMarkdown | TargetId::LibSvg | TargetId::LibXml => {
            payload_case(rng, opts, target)
        }
        TargetId::LineNoise => {
            let n = item_count(rng, opts);
            (0..n).map(|_| word(rng)).collect()
        }
    };
    FuzzCase::new(target, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn same_seed_generates_identical_cases() {
        for target in TargetId::all() {
            let opts = GenOpts {
                max_items: 10,
                chaos: true,
            };
            let a = generate(*target, &mut StdRng::seed_from_u64(99), &opts);
            let b = generate(*target, &mut StdRng::seed_from_u64(99), &opts);
            assert_eq!(a, b, "{target}");
            assert!(a.items.len() >= 2, "{target}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let opts = GenOpts::default();
        let a = generate(TargetId::HttpRange, &mut StdRng::seed_from_u64(1), &opts);
        let b = generate(TargetId::HttpRange, &mut StdRng::seed_from_u64(2), &opts);
        assert_ne!(a, b);
    }

    #[test]
    fn http_items_are_complete_requests() {
        let opts = GenOpts::default();
        for seed in 0..20u64 {
            let case = generate(TargetId::HttpRange, &mut StdRng::seed_from_u64(seed), &opts);
            for item in &case.items {
                assert!(item.ends_with("\r\n\r\n"), "{item:?}");
                assert!(item.contains(" HTTP/1.1\r\n"), "{item:?}");
            }
        }
    }

    #[test]
    fn storage_chaos_cases_crash_at_most_once_and_balance_txns() {
        for seed in 0..40u64 {
            let opts = GenOpts {
                max_items: 10,
                chaos: true,
            };
            let case = generate(TargetId::PgStorage, &mut StdRng::seed_from_u64(seed), &opts);
            let crashes = case
                .items
                .iter()
                .filter(|i| i.starts_with("!CRASH"))
                .count();
            assert!(crashes <= 1, "{:?}", case.items);
            let begins = case.items.iter().filter(|i| *i == "BEGIN").count();
            let ends = case
                .items
                .iter()
                .filter(|i| *i == "COMMIT" || *i == "ROLLBACK")
                .count();
            assert_eq!(begins, ends, "{:?}", case.items);
        }
    }

    #[test]
    fn without_chaos_no_crash_items_are_emitted() {
        for seed in 0..40u64 {
            let opts = GenOpts {
                max_items: 10,
                chaos: false,
            };
            let case = generate(TargetId::PgStorage, &mut StdRng::seed_from_u64(seed), &opts);
            assert!(!case.items.iter().any(|i| i.starts_with("!CRASH")));
        }
    }
}
