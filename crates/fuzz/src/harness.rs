//! The campaign loop: generate → execute → dedupe → shrink → triage.
//!
//! A campaign is a pure function of its [`FuzzConfig`]: per-case seeds are
//! derived from the campaign seed by a stable FNV-1a mix over
//! `(seed, target-name, case-index)`, the chaos plan seed is derived from
//! the case seed the same way, and every deployment/drive is
//! deterministic. Same config ⇒ byte-identical [`FuzzReport::findings_json`]
//! and reproducers, which is what lets CI gate on exact counts and replay
//! the committed corpus exactly.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::case::{FuzzCase, Reproducer};
use crate::exec::{classify, execute, Mode};
use crate::gen::{generate, GenOpts};
use crate::shrink::ddmin;
use crate::target::TargetId;
use crate::triage::{Finding, Verdict};
use crate::FuzzError;

/// Campaign configuration. A report is a pure function of this struct.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed: everything else derives from it.
    pub seed: u64,
    /// Deployment recipes to fuzz.
    pub targets: Vec<TargetId>,
    /// Generated cases per target.
    pub cases_per_target: usize,
    /// Maximum items per generated case.
    pub max_items: usize,
    /// Predicate-evaluation budget per shrink.
    pub shrink_budget: usize,
    /// Compose a seeded [`rddr_net::FaultPlan`] on targets that support it
    /// (fuzz-under-chaos).
    pub chaos: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            targets: TargetId::default_set(),
            cases_per_target: 12,
            max_items: 8,
            shrink_budget: 48,
            chaos: false,
        }
    }
}

/// Per-target campaign counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetStats {
    /// The target these counters describe.
    pub target: TargetId,
    /// Cases executed.
    pub cases: usize,
    /// Input items fed across all cases.
    pub items: usize,
    /// Cases whose mixed run recorded at least one divergence.
    pub divergent: usize,
    /// Deduplicated findings kept (shrunk + triaged).
    pub findings: usize,
    /// Predicate evaluations spent shrinking.
    pub shrink_evals: usize,
}

impl TargetStats {
    fn new(target: TargetId) -> Self {
        Self {
            target,
            cases: 0,
            items: 0,
            divergent: 0,
            findings: 0,
            shrink_evals: 0,
        }
    }
}

/// The result of one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// The campaign seed.
    pub seed: u64,
    /// Whether fuzz-under-chaos was requested.
    pub chaos: bool,
    /// Deduplicated, shrunk, triaged findings in discovery order.
    pub findings: Vec<Finding>,
    /// Per-target counters in config order.
    pub stats: Vec<TargetStats>,
}

impl FuzzReport {
    /// Findings with the given verdict.
    #[must_use]
    pub fn count(&self, verdict: Verdict) -> usize {
        self.findings
            .iter()
            .filter(|f| f.verdict == verdict)
            .count()
    }

    /// Total cases executed.
    #[must_use]
    pub fn total_cases(&self) -> usize {
        self.stats.iter().map(|s| s.cases).sum()
    }

    /// Total input items fed.
    #[must_use]
    pub fn total_items(&self) -> usize {
        self.stats.iter().map(|s| s.items).sum()
    }

    /// Mean shrunk-to-original item ratio across findings (1000 = no
    /// reduction, 0 = everything removed). Returns 1000 with no findings.
    #[must_use]
    pub fn shrink_ratio_permille(&self) -> u64 {
        let mut num = 0u64;
        let mut den = 0u64;
        for f in &self.findings {
            num += f.shrunk.items.len() as u64;
            den += f.original.items.len() as u64;
        }
        (num * 1000).checked_div(den).unwrap_or(1000)
    }

    /// The committable reproducer for every finding, in discovery order.
    #[must_use]
    pub fn reproducers(&self) -> Vec<Reproducer> {
        self.findings
            .iter()
            .map(|f| Reproducer {
                case: f.shrunk.clone(),
                case_seed: f.case_seed,
                chaos: f.chaos,
                verdict: f.verdict,
                signature: f.signature.clone(),
            })
            .collect()
    }

    /// The replay-stable findings section: a JSON array that is
    /// byte-identical across runs of the same config (no timings, no
    /// wall-clock, no ordering nondeterminism).
    #[must_use]
    pub fn findings_json(&self) -> String {
        let entries: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                let items: Vec<String> = f
                    .shrunk
                    .items
                    .iter()
                    .map(|i| format!("\"{}\"", json_escape(i)))
                    .collect();
                format!(
                    "{{\"target\":\"{}\",\"verdict\":\"{}\",\"signature\":\"{}\",\
                     \"case_seed\":{},\"chaos\":{},\"original_items\":{},\
                     \"shrunk_items\":[{}]}}",
                    f.target.name(),
                    f.verdict.name(),
                    json_escape(&f.signature),
                    f.case_seed,
                    f.chaos,
                    f.original.items.len(),
                    items.join(",")
                )
            })
            .collect();
        format!("[{}]", entries.join(","))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Derives a sub-seed from `(seed, tag, idx)` by FNV-1a. Stable across
/// runs and platforms; used for per-case seeds and chaos-plan seeds.
#[must_use]
pub fn mix_seed(seed: u64, tag: &str, idx: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seed
        .to_le_bytes()
        .iter()
        .chain(tag.as_bytes().iter())
        .chain(idx.to_le_bytes().iter())
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn chaos_seed_for(case_seed: u64) -> u64 {
    mix_seed(case_seed, "chaos", 0)
}

/// Runs one campaign. See the module docs for the loop shape.
///
/// # Errors
///
/// Propagates deployment failures; a severed client connection or a SQL
/// error inside a case is part of the observed behaviour, not an error.
pub fn fuzz(config: &FuzzConfig) -> Result<FuzzReport, FuzzError> {
    let mut findings = Vec::new();
    let mut stats = Vec::new();
    for target in &config.targets {
        let target = *target;
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut tstats = TargetStats::new(target);
        for case_idx in 0..config.cases_per_target {
            let case_seed = mix_seed(config.seed, target.name(), case_idx as u64);
            let chaos_active = config.chaos && target.supports_chaos();
            let opts = GenOpts {
                max_items: config.max_items,
                chaos: chaos_active,
            };
            let case = generate(target, &mut StdRng::seed_from_u64(case_seed), &opts);
            let chaos_seed = chaos_active.then(|| chaos_seed_for(case_seed));
            let found = execute(target, Mode::Mixed, chaos_seed, &case)?;
            tstats.cases += 1;
            tstats.items += found.items_run;
            if !found.diverged {
                continue;
            }
            tstats.divergent += 1;
            if !seen.insert(found.key.clone()) {
                continue;
            }
            let key = found.key.clone();
            // Shrink against the *same* signature: a subset that diverges
            // differently is a different finding, not a smaller one. A
            // deploy error during a probe counts as "does not fail" — the
            // full case is already known-failing, so the shrink stays
            // sound.
            let outcome = ddmin(&case.items, config.shrink_budget, |items| {
                let candidate = FuzzCase::new(target, items.to_vec());
                execute(target, Mode::Mixed, chaos_seed, &candidate)
                    .map(|e| e.diverged && e.key == key)
                    .unwrap_or(false)
            });
            let shrunk = FuzzCase::new(target, outcome.items.clone());
            // Triage the shrunk case — that's what gets committed, so
            // that's what the verdict must describe.
            let verdict = classify(target, &shrunk, chaos_seed)?;
            tstats.findings += 1;
            tstats.shrink_evals += outcome.evals;
            findings.push(Finding {
                target,
                verdict,
                signature: key,
                detail: found.detail,
                original: case,
                shrunk,
                case_seed,
                chaos: chaos_active,
                shrink_evals: outcome.evals,
            });
        }
        stats.push(tstats);
    }
    Ok(FuzzReport {
        seed: config.seed,
        chaos: config.chaos,
        findings,
        stats,
    })
}

/// The result of replaying one committed reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Whether the mixed deployment diverged on the replay.
    pub diverged: bool,
    /// The re-derived triage verdict (when the replay diverged).
    pub verdict: Option<Verdict>,
    /// The normalized signature observed on the replay.
    pub signature: String,
}

impl ReplayOutcome {
    /// Whether the replay reproduced the committed finding exactly:
    /// diverged, same signature, same verdict.
    #[must_use]
    pub fn matches(&self, rep: &Reproducer) -> bool {
        self.diverged && self.signature == rep.signature && self.verdict == Some(rep.verdict)
    }
}

/// Replays a committed reproducer: rebuilds the deployment (re-deriving
/// the chaos plan from the stored case seed), drives the stored items, and
/// re-runs triage.
///
/// # Errors
///
/// Propagates deployment failures.
pub fn replay(rep: &Reproducer) -> Result<ReplayOutcome, FuzzError> {
    let chaos_seed = rep.chaos.then(|| chaos_seed_for(rep.case_seed));
    let run = execute(rep.case.target, Mode::Mixed, chaos_seed, &rep.case)?;
    let verdict = if run.diverged {
        Some(classify(rep.case.target, &rep.case, chaos_seed)?)
    } else {
        None
    };
    Ok(ReplayOutcome {
        diverged: run.diverged,
        verdict,
        signature: run.key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_stable_and_sensitive() {
        assert_eq!(mix_seed(42, "pg-rls", 0), mix_seed(42, "pg-rls", 0));
        assert_ne!(mix_seed(42, "pg-rls", 0), mix_seed(42, "pg-rls", 1));
        assert_ne!(mix_seed(42, "pg-rls", 0), mix_seed(42, "pg-flavors", 0));
        assert_ne!(mix_seed(42, "pg-rls", 0), mix_seed(43, "pg-rls", 0));
    }

    #[test]
    fn json_escape_handles_crafted_bytes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\r\ny"), "x\\r\\ny");
        assert_eq!(json_escape("v\u{b}t"), "v\\u000bt");
    }

    #[test]
    fn empty_target_list_yields_empty_report() {
        let config = FuzzConfig {
            targets: Vec::new(),
            ..FuzzConfig::default()
        };
        let report = fuzz(&config).unwrap();
        assert!(report.findings.is_empty());
        assert_eq!(report.total_cases(), 0);
        assert_eq!(report.shrink_ratio_permille(), 1000);
        assert_eq!(report.findings_json(), "[]");
    }
}
