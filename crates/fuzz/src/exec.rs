//! Deployment recipes and case drivers.
//!
//! One fresh deployment per case keeps executions independent (no SQL
//! state bleeding between cases) and is what makes replay exact: every
//! reproducer carries everything needed to rebuild the world it diverged
//! in. Deployments reuse the same building blocks as `rddr-vulns` and the
//! chaos suites — [`rddr_proxy::deploy`] for the simple shapes, manual
//! wiring plus [`rddr_orchestra::Supervisor`] factories for the paged
//! storage target so `!CRASH` items can kill, crash, and respawn an
//! instance mid-stream.

use std::sync::Arc;
use std::time::Duration;

use rddr_core::protocol::LineProtocol;
use rddr_core::{DegradePolicy, EngineConfig, ResponsePolicy, VarianceRule, VarianceRules};
use rddr_httpsim::haproxy::smuggling_target_service;
use rddr_httpsim::rest::{render_service, sanitize_service, svg_service};
use rddr_httpsim::{HaproxySim, HttpClient, NginxSim, NginxVersion};
use rddr_libsim::{CairoSvg, LxmlClean, Markdown2, MarkdownSafe, SanitizeHtml, SvgLib, VirtualFs};
use rddr_net::{
    BoxStream, ConnSelector, FaultNet, FaultPlan, Network, ServiceAddr, SimNet, StorageFault,
    Stream,
};
use rddr_orchestra::{
    Cluster, ContainerHandle, CpuGovernor, FnService, Image, Service, Supervisor,
};
use rddr_pgsim::{
    CockroachFlavor, Database, DbFlavor, PgClient, PgServer, PgServerConfig, PgVersion,
    PlanDiskFaults, StorageEngine, VDisk,
};
use rddr_protocols::{HttpProtocol, PgProtocol};
use rddr_proxy::deploy::{n_version_with_telemetry, NVersionedService, Variant};
use rddr_proxy::{IncomingProxy, ProtocolFactory, ProxyTelemetry};

use crate::case::FuzzCase;
use crate::target::{Family, TargetId};
use crate::FuzzError;

/// Which instance set a deployment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// The production recipe: version/implementation-diverse instances.
    Mixed,
    /// The triage control: every slot runs instance 0's recipe.
    Uniform,
}

/// The outcome of driving one case through one deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Execution {
    /// Whether the audit log recorded at least one divergence.
    pub diverged: bool,
    /// Normalized signature of the first divergence (empty when unanimous).
    pub key: String,
    /// Raw audit detail of the first divergence.
    pub detail: String,
    /// The full replay-stable audit JSON.
    pub audit: String,
    /// Items actually fed to the deployment.
    pub items_run: usize,
    /// Whether the client connection was severed at least once.
    pub severed: bool,
}

/// The instance the pg-storage chaos schedule crashes and tears.
pub(crate) const CRASH_INSTANCE: usize = 2;

/// Quick cost model so a fuzz campaign's thousands of statements stay fast
/// under the time-scaled governor.
const fn quick_cost() -> PgServerConfig {
    PgServerConfig {
        base_cost: Duration::from_micros(10),
        cost_per_row: Duration::from_micros(1),
    }
}

fn scenario_cluster() -> Cluster {
    Cluster::with_governor(SimNet::new(), CpuGovernor::with_time_scale(8, 0.01))
}

fn pg_protocol() -> ProtocolFactory {
    Arc::new(|| Box::new(PgProtocol::new()))
}

fn http_protocol() -> ProtocolFactory {
    Arc::new(|| Box::new(HttpProtocol::new()))
}

fn line_protocol() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

fn server_banner_variance() -> Result<VarianceRules, FuzzError> {
    let mut rules = VarianceRules::new();
    rules.push(
        VarianceRule::new("http:header:server", "*")
            .map_err(|e| FuzzError::msg(format!("variance rule: {e}")))?,
    );
    Ok(rules)
}

fn config_err(e: impl std::fmt::Display) -> FuzzError {
    FuzzError::msg(format!("deploy: {e}"))
}

/// Arms the connection + storage faults the pg-storage target composes
/// with. Both fault kinds come from the same seeded plan: the first crash
/// of the shadow-discard instance's WAL tears its durable tail, and the
/// first proxy dial to instance 1 is refused (a transient connection
/// fault the quorum must absorb).
pub(crate) fn arm_chaos(plan: &FaultPlan) {
    plan.storage_inject(
        &format!("db-{CRASH_INSTANCE}"),
        Some("wal"),
        ConnSelector::Nth(0),
        StorageFault::TruncatedWalTail,
    );
    plan.refuse(&ServiceAddr::new("db", 5433), ConnSelector::Nth(0));
}

/// A running fuzz deployment: containers + proxy + telemetry, torn down on
/// drop.
pub(crate) struct Deployment {
    cluster: Cluster,
    entry: ServiceAddr,
    telemetry: ProxyTelemetry,
    /// Containers outside the N-versioned set (smuggling backends) or the
    /// manually wired instances (pg-storage).
    extra: Vec<ContainerHandle>,
    service: Option<NVersionedService>,
    /// Held for its drop side-effect (stops the manually wired proxy).
    _proxy: Option<IncomingProxy>,
    supervisor: Option<Supervisor>,
    disks: Vec<VDisk>,
}

impl Deployment {
    fn handle_mut(&mut self, i: usize) -> Option<&mut ContainerHandle> {
        if let Some(service) = &mut self.service {
            service.containers.get_mut(i)
        } else {
            self.extra.get_mut(i)
        }
    }
}

fn seed_rls_schema(db: &mut Database) -> Result<(), FuzzError> {
    let mut session = db.session("admin");
    for sql in [
        "CREATE TABLE users (id INT, name TEXT, karma INT)",
        "INSERT INTO users VALUES (1, 'alice', 70), (2, 'bob', 55), \
         (3, 'carol', 91), (4, 'dave', 12)",
        "CREATE TABLE user_secrets (secret_level INT, owner TEXT, token TEXT)",
        "INSERT INTO user_secrets VALUES (10, 'app', 'app-token-blue'), \
         (20, 'app', 'app-token-green'), (9001, 'root', 'ROOT-ADMIN-KEY')",
        "ALTER TABLE user_secrets ENABLE ROW LEVEL SECURITY",
        "CREATE POLICY visible ON user_secrets USING (owner = 'app')",
        // The querying session must NOT be pgsim's bootstrap superuser
        // (`APP`): superusers are RLS-exempt, which would mask the
        // version-gated leak probe on every version.
        "GRANT SELECT ON users TO FUZZER",
        "GRANT SELECT ON user_secrets TO FUZZER",
    ] {
        db.execute(&mut session, sql)?;
    }
    Ok(())
}

fn seed_plain_schema(db: &mut Database) -> Result<(), FuzzError> {
    let mut session = db.session("root");
    for sql in [
        "CREATE TABLE inventory (id INT, sku TEXT, qty INT)",
        "INSERT INTO inventory VALUES (1, 'bolt', 120), (2, 'nut', 300), \
         (3, 'washer', 80), (4, 'rivet', 45), (5, 'screw', 260)",
        "CREATE TABLE audit_log (id INT, entry TEXT)",
        "INSERT INTO audit_log VALUES (1, 'boot'), (2, 'ready')",
    ] {
        db.execute(&mut session, sql)?;
    }
    Ok(())
}

fn seed_ledger_schema(db: &mut Database) -> Result<(), FuzzError> {
    let mut session = db.session("app");
    for sql in [
        "CREATE TABLE ledger (id INT, amount INT, note TEXT)",
        "INSERT INTO ledger VALUES (1, 100, 'opening'), (2, -40, 'fees')",
    ] {
        db.execute(&mut session, sql)?;
    }
    Ok(())
}

fn pg_variant(
    version: &str,
    seed: fn(&mut Database) -> Result<(), FuzzError>,
) -> Result<Variant, FuzzError> {
    let parsed = PgVersion::parse(version)?;
    let mut db = Database::new(parsed);
    seed(&mut db)?;
    Ok(Variant::new(
        Image::new("postgres", version),
        Arc::new(PgServer::with_config(db, quick_cost())),
    ))
}

fn cockroach_variant() -> Result<Variant, FuzzError> {
    let flavor = CockroachFlavor {
        scramble_row_order: true,
        ..CockroachFlavor::default()
    };
    let mut db = Database::with_flavor(PgVersion::parse("10.9")?, DbFlavor::Cockroach(flavor));
    seed_plain_schema(&mut db)?;
    Ok(Variant::new(
        Image::new("cockroach", "19.1.0"),
        Arc::new(PgServer::with_config(db, quick_cost())),
    ))
}

fn nginx_variant(version: &str) -> Variant {
    let server = NginxSim::file_server(NginxVersion::parse(version));
    // The adjacent cache memory is identical across instances: the leak
    // models the *same* co-tenant secret sitting next to each buffer, so a
    // uniform vulnerable deployment leaks unanimously (version-gated, not
    // noise).
    server.publish(
        "/index.html",
        b"<html>fuzz range target</html>".to_vec(),
        b"CACHE-SECRET-adjacent-cache-line".to_vec(),
    );
    let big: Vec<u8> = (0..257u16).map(|i| b'a' + (i % 23) as u8).collect();
    server.publish(
        "/big.bin",
        big,
        b"CACHE-SECRET-adjacent-cache-line".to_vec(),
    );
    Variant::new(Image::new("nginx", version), Arc::new(server))
}

fn noise_echo(instance: usize) -> Arc<dyn Service> {
    Arc::new(FnService::new("noisy-echo", move |mut conn, _ctx| {
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 256];
        loop {
            match conn.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => buf.extend(chunk.iter().take(n).copied()),
            }
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = buf.drain(..=pos).collect();
                let mut reply: Vec<u8> = line
                    .iter()
                    .take(line.len().saturating_sub(1))
                    .copied()
                    .collect();
                // The per-instance marker models unmasked nondeterminism
                // (pointer values, worker ids) that identical versions
                // still disagree on.
                reply.extend(format!(" #i{instance}\n").into_bytes());
                if conn.write_all(&reply).is_err() {
                    return;
                }
            }
        }
    }))
}

/// Builds a fresh deployment of `target` in `mode`. When `chaos` is given
/// (pg-storage only), instance disks draw faults from the plan and the
/// proxy dials instances through a [`FaultNet`] wrapping the same plan.
pub(crate) fn deploy(
    target: TargetId,
    mode: Mode,
    chaos: Option<&FaultPlan>,
) -> Result<Deployment, FuzzError> {
    let cluster = scenario_cluster();
    let telemetry = ProxyTelemetry::new("fuzz");
    let deadline = Duration::from_millis(1500);
    let mut extra = Vec::new();
    let mut disks = Vec::new();
    let mut supervisor = None;
    let mut proxy = None;
    let mut service = None;
    let entry;

    match target {
        TargetId::PgRls => {
            let versions = match mode {
                Mode::Mixed => ["10.7", "10.7", "10.9"],
                Mode::Uniform => ["10.7", "10.7", "10.7"],
            };
            let variants = versions
                .iter()
                .copied()
                .map(|v| pg_variant(v, seed_rls_schema))
                .collect::<Result<Vec<_>, _>>()?;
            entry = ServiceAddr::new("pg", 5432);
            service = Some(
                n_version_with_telemetry(
                    &cluster,
                    "pg",
                    &entry,
                    variants,
                    EngineConfig::builder(3)
                        .filter_pair(0, 1)
                        .response_deadline(deadline)
                        .build()
                        .map_err(config_err)?,
                    pg_protocol(),
                    telemetry.clone(),
                )
                .map_err(config_err)?,
            );
        }
        TargetId::PgFlavors => {
            let variants = match mode {
                Mode::Mixed => vec![
                    pg_variant("10.9", seed_plain_schema)?,
                    pg_variant("10.9", seed_plain_schema)?,
                    cockroach_variant()?,
                ],
                Mode::Uniform => vec![
                    pg_variant("10.9", seed_plain_schema)?,
                    pg_variant("10.9", seed_plain_schema)?,
                    pg_variant("10.9", seed_plain_schema)?,
                ],
            };
            entry = ServiceAddr::new("pg", 5432);
            service = Some(
                n_version_with_telemetry(
                    &cluster,
                    "pg",
                    &entry,
                    variants,
                    EngineConfig::builder(3)
                        .filter_pair(0, 1)
                        .response_deadline(deadline)
                        .build()
                        .map_err(config_err)?,
                    pg_protocol(),
                    telemetry.clone(),
                )
                .map_err(config_err)?,
            );
        }
        TargetId::PgStorage => {
            let specs = match mode {
                Mode::Mixed => [
                    "paged:replay-forward",
                    "paged:replay-forward",
                    "paged:shadow-discard",
                ],
                Mode::Uniform => [
                    "paged:replay-forward",
                    "paged:replay-forward",
                    "paged:replay-forward",
                ],
            };
            let sup = Supervisor::new();
            let mut instance_addrs = Vec::new();
            for (i, spec) in specs.iter().enumerate() {
                let engine = StorageEngine::parse(spec)?;
                let disk = match chaos {
                    Some(plan) => PlanDiskFaults::disk(plan.clone(), &format!("db-{i}")),
                    None => VDisk::new(format!("db-{i}")),
                };
                let addr = ServiceAddr::new("db", 5432 + i as u16);
                let image = Image::new("minipg", *spec);
                let mut db = Database::with_engine(
                    PgVersion::parse("10.7")?,
                    DbFlavor::Postgres,
                    engine,
                    &disk,
                )?;
                seed_ledger_schema(&mut db)?;
                extra.push(
                    cluster
                        .run_container(
                            format!("db-{i}"),
                            image.clone(),
                            &addr,
                            Arc::new(PgServer::with_config(db, quick_cost())),
                        )
                        .map_err(config_err)?,
                );
                let factory_disk = disk.clone();
                sup.register_factory(format!("db-{i}"), image, addr.clone(), move || {
                    // Recovery (WAL replay under the instance's policy)
                    // runs inside the factory, before the readiness probe.
                    let db = Database::with_engine(
                        PgVersion::parse("10.7").map_err(|e| e.to_string())?,
                        DbFlavor::Postgres,
                        engine,
                        &factory_disk,
                    )
                    .map_err(|e| e.to_string())?;
                    Ok(Arc::new(PgServer::with_config(db, quick_cost())) as Arc<dyn Service>)
                });
                disks.push(disk);
                instance_addrs.push(addr);
            }
            let net: Arc<dyn Network> = match chaos {
                Some(plan) => Arc::new(FaultNet::new(cluster.net(), plan.clone())),
                None => Arc::new(cluster.net()),
            };
            entry = ServiceAddr::new("rddr-db", 5432);
            proxy = Some(
                IncomingProxy::start_with_telemetry(
                    net,
                    &entry,
                    instance_addrs,
                    EngineConfig::builder(3)
                        .policy(ResponsePolicy::MajorityVote)
                        .degrade(DegradePolicy::eject())
                        .response_deadline(Duration::from_millis(800))
                        .instance_deadline(Duration::from_millis(300))
                        .build()
                        .map_err(config_err)?,
                    pg_protocol(),
                    Some(telemetry.clone()),
                )
                .map_err(config_err)?,
            );
            supervisor = Some(sup);
        }
        TargetId::HttpRange => {
            let versions = match mode {
                Mode::Mixed => ["1.13.2", "1.13.2", "1.13.4"],
                Mode::Uniform => ["1.13.2", "1.13.2", "1.13.2"],
            };
            let variants = versions.iter().copied().map(nginx_variant).collect();
            entry = ServiceAddr::new("nginx", 8000);
            service = Some(
                n_version_with_telemetry(
                    &cluster,
                    "nginx",
                    &entry,
                    variants,
                    EngineConfig::builder(3)
                        .filter_pair(0, 1)
                        .variance(server_banner_variance()?)
                        .response_deadline(deadline)
                        .build()
                        .map_err(config_err)?,
                    http_protocol(),
                    telemetry.clone(),
                )
                .map_err(config_err)?,
            );
        }
        TargetId::HttpSmuggle => {
            for i in 0..2u16 {
                extra.push(
                    cluster
                        .run_container(
                            format!("s1-{i}"),
                            Image::new("s1", "v1"),
                            &ServiceAddr::new("s1", 9100 + i),
                            Arc::new(smuggling_target_service()),
                        )
                        .map_err(config_err)?,
                );
            }
            let haproxy = |backend: u16| {
                Variant::new(
                    Image::new("haproxy", "1.5.3"),
                    Arc::new(HaproxySim::new(ServiceAddr::new("s1", backend))),
                )
            };
            let variants = match mode {
                Mode::Mixed => vec![
                    haproxy(9100),
                    Variant::new(
                        Image::new("nginx", "1.13.4"),
                        Arc::new(NginxSim::reverse_proxy(
                            NginxVersion::parse("1.13.4"),
                            ServiceAddr::new("s1", 9101),
                        )),
                    ),
                ],
                Mode::Uniform => vec![haproxy(9100), haproxy(9101)],
            };
            entry = ServiceAddr::new("gw", 8080);
            service = Some(
                n_version_with_telemetry(
                    &cluster,
                    "gw",
                    &entry,
                    variants,
                    EngineConfig::builder(2)
                        .variance(server_banner_variance()?)
                        .response_deadline(deadline)
                        .build()
                        .map_err(config_err)?,
                    http_protocol(),
                    telemetry.clone(),
                )
                .map_err(config_err)?,
            );
        }
        TargetId::LibMarkdown | TargetId::LibSvg | TargetId::LibXml => {
            let pair: [Arc<dyn Service>; 2] = match target {
                TargetId::LibMarkdown => [
                    Arc::new(render_service(Arc::new(Markdown2::new()))),
                    Arc::new(render_service(Arc::new(MarkdownSafe::new()))),
                ],
                TargetId::LibSvg => {
                    let fs = VirtualFs::with_defaults();
                    [
                        Arc::new(svg_service(Arc::new(SvgLib::new()), fs.clone())),
                        Arc::new(svg_service(Arc::new(CairoSvg::new()), fs)),
                    ]
                }
                _ => [
                    Arc::new(sanitize_service(Arc::new(LxmlClean::new()))),
                    Arc::new(sanitize_service(Arc::new(SanitizeHtml::new()))),
                ],
            };
            let [vulnerable, safe] = pair;
            let variants = match mode {
                Mode::Mixed => vec![
                    Variant::new(Image::new("lib", "vulnerable"), vulnerable),
                    Variant::new(Image::new("lib", "safe"), safe),
                ],
                Mode::Uniform => vec![
                    Variant::new(Image::new("lib", "vulnerable"), Arc::clone(&vulnerable)),
                    Variant::new(Image::new("lib", "vulnerable"), vulnerable),
                ],
            };
            entry = ServiceAddr::new("rest", 8000);
            service = Some(
                n_version_with_telemetry(
                    &cluster,
                    "rest",
                    &entry,
                    variants,
                    EngineConfig::builder(2)
                        .response_deadline(deadline)
                        .build()
                        .map_err(config_err)?,
                    http_protocol(),
                    telemetry.clone(),
                )
                .map_err(config_err)?,
            );
        }
        TargetId::LineNoise => {
            // Noise is per-instance, so Mixed and Uniform deploy the same
            // thing: the point of this target is that its divergences
            // survive the uniform replay and triage as false positives.
            let variants = vec![
                Variant::new(Image::new("echo", "v1"), noise_echo(0)),
                Variant::new(Image::new("echo", "v1"), noise_echo(1)),
            ];
            entry = ServiceAddr::new("echo", 7000);
            service = Some(
                n_version_with_telemetry(
                    &cluster,
                    "echo",
                    &entry,
                    variants,
                    EngineConfig::builder(2)
                        .response_deadline(deadline)
                        .build()
                        .map_err(config_err)?,
                    line_protocol(),
                    telemetry.clone(),
                )
                .map_err(config_err)?,
            );
        }
    }

    Ok(Deployment {
        cluster,
        entry,
        telemetry,
        extra,
        service,
        _proxy: proxy,
        supervisor,
        disks,
    })
}

/// Collapses value noise out of an audit detail so repeated instances of
/// the same divergence shape dedupe to one signature: digit runs become
/// one `#`, double-quoted spans (response bodies, fuzzed values) are
/// elided entirely, and the tail is bounded. What survives is the *shape*
/// of the divergence — which field, which instance, structural or not —
/// the same philosophy the de-noiser applies to responses.
fn normalize_detail(detail: &str) -> String {
    let mut out = String::with_capacity(detail.len().min(200));
    let mut in_digits = false;
    let mut in_quotes = false;
    let mut escaped = false;
    for c in detail.chars() {
        if in_quotes {
            // Quoted spans come from `{:?}`-formatted bodies, so `\"` and
            // `\\` inside them are content, not delimiters.
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_quotes = false;
                out.push('"');
            }
            continue;
        }
        if c == '"' {
            in_quotes = true;
            out.push('"');
            in_digits = false;
            continue;
        }
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
        if out.len() >= 160 {
            break;
        }
    }
    out
}

fn collect(dep: &Deployment, case: &FuzzCase, items_run: usize, severed: bool) -> Execution {
    // Let session threads retire so audit appends and counters settle
    // (same discipline as the chaos suites).
    std::thread::sleep(Duration::from_millis(50));
    let records = dep.telemetry.audit.recent();
    let first = records.first();
    let key = first
        .map(|r| {
            format!(
                "{}|{:?}|{}|{}",
                case.target.name(),
                r.offending_instance,
                r.structural,
                normalize_detail(&r.detail)
            )
        })
        .unwrap_or_default();
    Execution {
        diverged: !records.is_empty(),
        key,
        detail: first.map(|r| r.detail.clone()).unwrap_or_default(),
        audit: dep.telemetry.audit.stable_json(),
        items_run,
        severed,
    }
}

fn drive_sql(
    dep: &mut Deployment,
    case: &FuzzCase,
    user: &str,
) -> Result<(usize, bool), FuzzError> {
    let net = dep.cluster.net();
    let mut client = Some(PgClient::connect(net.dial(&dep.entry)?, user)?);
    let mut items_run = 0usize;
    let mut severed = false;
    for item in &case.items {
        items_run += 1;
        if let Some(rest) = item.strip_prefix("!CRASH ") {
            let Some(idx) = rest.trim().parse::<usize>().ok().filter(|i| *i < 3) else {
                continue;
            };
            if dep.supervisor.is_none() {
                continue;
            }
            if let Some(handle) = dep.handle_mut(idx) {
                handle.kill();
            }
            if let Some(disk) = dep.disks.get(idx) {
                disk.crash();
            }
            let fresh = match dep.supervisor.as_ref() {
                Some(sup) => sup
                    .respawn(&dep.cluster, &format!("db-{idx}"), Duration::from_secs(2))
                    .map_err(|e| FuzzError::msg(format!("respawn db-{idx}: {e}")))?,
                None => continue,
            };
            // Keep the fresh handle alive: dropping it would stop the
            // container it just respawned.
            if let Some(slot) = dep.handle_mut(idx) {
                *slot = fresh;
            }
            // A recovered replica reappears as a fresh session: reconnect
            // so the next exchange fans out to all instances again.
            drop(client.take());
            client = Some(PgClient::connect(net.dial(&dep.entry)?, user)?);
            continue;
        }
        if item == "!RECONNECT" {
            drop(client.take());
            client = Some(PgClient::connect(net.dial(&dep.entry)?, user)?);
            continue;
        }
        let Some(active) = client.as_mut() else { break };
        if active.query(item).is_err() {
            severed = true;
            break;
        }
    }
    Ok((items_run, severed))
}

fn drive_http(dep: &Deployment, case: &FuzzCase) -> Result<(usize, bool), FuzzError> {
    let net = dep.cluster.net();
    let mut items_run = 0usize;
    let mut severed = false;
    for item in &case.items {
        items_run += 1;
        let mut client = HttpClient::connect(&net, &dep.entry)?;
        if client.send_raw(item.as_bytes()).is_err() || client.read_response().is_err() {
            severed = true;
        }
    }
    Ok((items_run, severed))
}

fn drive_payload(
    dep: &Deployment,
    case: &FuzzCase,
    route: &str,
) -> Result<(usize, bool), FuzzError> {
    let net = dep.cluster.net();
    let mut items_run = 0usize;
    let mut severed = false;
    for item in &case.items {
        items_run += 1;
        let mut client = HttpClient::connect(&net, &dep.entry)?;
        if client.post(route, item).is_err() {
            severed = true;
        }
    }
    Ok((items_run, severed))
}

fn read_line(conn: &mut BoxStream) -> bool {
    let mut seen = Vec::new();
    let mut chunk = [0u8; 128];
    loop {
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => return false,
            Ok(n) => {
                seen.extend(chunk.iter().take(n).copied());
                if seen.contains(&b'\n') {
                    return true;
                }
            }
        }
    }
}

fn drive_line(dep: &Deployment, case: &FuzzCase) -> Result<(usize, bool), FuzzError> {
    let net = dep.cluster.net();
    let mut conn = Some(net.dial(&dep.entry)?);
    let mut items_run = 0usize;
    let mut severed = false;
    for item in &case.items {
        items_run += 1;
        let Some(stream) = conn.as_mut() else {
            conn = Some(net.dial(&dep.entry)?);
            continue;
        };
        let sent = stream.write_all(format!("{item}\n").as_bytes()).is_ok();
        if !sent || !read_line(stream) {
            severed = true;
            conn = None;
        }
    }
    Ok((items_run, severed))
}

/// Deploys `target` in `mode` (with the chaos plan derived from
/// `chaos_seed`, when given and supported) and drives `case` through it.
pub(crate) fn execute(
    target: TargetId,
    mode: Mode,
    chaos_seed: Option<u64>,
    case: &FuzzCase,
) -> Result<Execution, FuzzError> {
    let plan = chaos_seed
        .filter(|_| target.supports_chaos())
        .map(FaultPlan::new);
    if let Some(p) = &plan {
        arm_chaos(p);
    }
    let mut dep = deploy(target, mode, plan.as_ref())?;
    let (items_run, severed) = match target.family() {
        Family::Sql => {
            let user = match target {
                TargetId::PgFlavors => "root",
                TargetId::PgRls => "fuzzer",
                _ => "app",
            };
            drive_sql(&mut dep, case, user)?
        }
        Family::Http => drive_http(&dep, case)?,
        Family::Payload => {
            let route = match target {
                TargetId::LibMarkdown => "/render",
                TargetId::LibSvg => "/convert",
                _ => "/sanitize",
            };
            drive_payload(&dep, case, route)?
        }
        Family::Line => drive_line(&dep, case)?,
    };
    Ok(collect(&dep, case, items_run, severed))
}

/// Classifies a divergence found on the mixed deployment. See the module
/// docs of [`crate::triage`] for the oracle.
pub(crate) fn classify(
    target: TargetId,
    case: &FuzzCase,
    chaos_seed: Option<u64>,
) -> Result<crate::Verdict, FuzzError> {
    if chaos_seed.is_some() {
        let clean = execute(target, Mode::Mixed, None, case)?;
        if !clean.diverged {
            return Ok(crate::Verdict::ChaosOnly);
        }
    }
    let uniform = execute(target, Mode::Uniform, None, case)?;
    Ok(if uniform.diverged {
        crate::Verdict::FalsePositive
    } else {
        crate::Verdict::TruePositive
    })
}
