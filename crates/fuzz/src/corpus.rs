//! On-disk corpus layout.
//!
//! A corpus directory holds one `.case` file per reproducer, named
//! `{target}-{index:02}-{verdict}.case` so a directory listing reads as a
//! triage summary. Files are the text form from
//! [`Reproducer::to_text`](crate::Reproducer::to_text); loading walks the
//! directory in sorted order so replay order is stable across platforms.

use std::fs;
use std::path::{Path, PathBuf};

use crate::case::Reproducer;
use crate::FuzzError;

/// The stable file name for a reproducer at `idx` within its campaign.
#[must_use]
pub fn file_name(rep: &Reproducer, idx: usize) -> String {
    format!(
        "{}-{:02}-{}.case",
        rep.case.target.name(),
        idx,
        rep.verdict.name()
    )
}

/// Writes every reproducer into `dir` (created if missing).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_dir(dir: &Path, reps: &[Reproducer]) -> Result<(), FuzzError> {
    fs::create_dir_all(dir)?;
    for (idx, rep) in reps.iter().enumerate() {
        fs::write(dir.join(file_name(rep, idx)), rep.to_text())?;
    }
    Ok(())
}

/// Loads every `*.case` file under `dir`, sorted by file name.
///
/// # Errors
///
/// Propagates filesystem errors and reports the offending path for parse
/// failures.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, Reproducer)>, FuzzError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let rep = Reproducer::parse(&text)
            .map_err(|e| FuzzError::msg(format!("{}: {e}", path.display())))?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        out.push((name, rep));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::FuzzCase;
    use crate::target::TargetId;
    use crate::triage::Verdict;

    fn sample(tag: &str, verdict: Verdict) -> Reproducer {
        Reproducer {
            case: FuzzCase::new(
                TargetId::LibMarkdown,
                vec![format!("[{tag}](java\tscript:alert(1))")],
            ),
            case_seed: 7,
            chaos: false,
            verdict,
            signature: format!("lib-markdown|Some(0)|false|{tag}"),
        }
    }

    #[test]
    fn corpus_roundtrips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("rddr-fuzz-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let reps = vec![
            sample("a", Verdict::TruePositive),
            sample("b", Verdict::ChaosOnly),
        ];
        write_dir(&dir, &reps).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        let loaded_reps: Vec<Reproducer> = loaded.iter().map(|(_, r)| r.clone()).collect();
        assert_eq!(loaded_reps, reps);
        assert!(loaded
            .iter()
            .all(|(name, _)| name.starts_with("lib-markdown-") && name.ends_with(".case")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_names_encode_target_index_and_verdict() {
        let rep = sample("x", Verdict::FalsePositive);
        assert_eq!(file_name(&rep, 3), "lib-markdown-03-false-positive.case");
    }
}
