//! Fuzz cases and their on-disk reproducer form.
//!
//! A case is an ordered stream of protocol items (SQL statements, raw HTTP
//! requests, payload bodies, …) fed to one fresh deployment of a target.
//! Reproducers serialize to a line-oriented text format with `\`-escaped
//! items so crafted bytes (CRLF, tabs, control characters) survive a
//! checked-in corpus file byte-exactly.

use crate::target::TargetId;
use crate::triage::Verdict;

/// One generated input stream for one target.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FuzzCase {
    /// The deployment recipe this case drives.
    pub target: TargetId,
    /// The input items, executed in order against a fresh deployment.
    pub items: Vec<String>,
}

impl FuzzCase {
    /// Creates a case.
    #[must_use]
    pub fn new(target: TargetId, items: Vec<String>) -> Self {
        Self { target, items }
    }
}

/// A shrunk, triaged finding in committable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// The minimal input stream that still diverges.
    pub case: FuzzCase,
    /// The derived per-case seed (drives the chaos plan on replay).
    pub case_seed: u64,
    /// Whether a fault schedule was active when the divergence was found.
    pub chaos: bool,
    /// The triage verdict for the shrunk case.
    pub verdict: Verdict,
    /// The normalized divergence signature the replay must match.
    pub signature: String,
}

/// Escapes one item for the single-line corpus format.
#[must_use]
pub fn escape_item(item: &str) -> String {
    let mut out = String::with_capacity(item.len() + 8);
    for c in item.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\x{:02x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_item`].
///
/// # Errors
///
/// Returns a message for truncated or unknown escape sequences.
pub fn unescape_item(text: &str) -> Result<String, String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('x') => {
                let hi = chars
                    .next()
                    .ok_or_else(|| "truncated \\x escape".to_string())?;
                let lo = chars
                    .next()
                    .ok_or_else(|| "truncated \\x escape".to_string())?;
                let code = u32::from_str_radix(&format!("{hi}{lo}"), 16)
                    .map_err(|e| format!("bad \\x escape: {e}"))?;
                out.push(char::from_u32(code).ok_or_else(|| "bad \\x escape".to_string())?);
            }
            other => return Err(format!("unknown escape {other:?}")),
        }
    }
    Ok(out)
}

const HEADER: &str = "# rddr-fuzz reproducer v1";

impl Reproducer {
    /// Renders the reproducer to its committable text form.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("target: {}\n", self.case.target.name()));
        out.push_str(&format!("case-seed: {}\n", self.case_seed));
        out.push_str(&format!("chaos: {}\n", self.chaos));
        out.push_str(&format!("verdict: {}\n", self.verdict.name()));
        out.push_str(&format!("signature: {}\n", escape_item(&self.signature)));
        for item in &self.case.items {
            out.push_str(&format!("item: {}\n", escape_item(item)));
        }
        out
    }

    /// Parses the text form back.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line or missing
    /// field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(format!("missing header line {HEADER:?}"));
        }
        let mut target = None;
        let mut case_seed = None;
        let mut chaos = None;
        let mut verdict = None;
        let mut signature = None;
        let mut items = Vec::new();
        for line in lines {
            let line = line.trim_end_matches('\r');
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(": ")
                .or_else(|| line.split_once(':').map(|(k, _)| (k, "")))
                .ok_or_else(|| format!("malformed line {line:?}"))?;
            match key {
                "target" => {
                    target = Some(
                        TargetId::parse(value)
                            .ok_or_else(|| format!("unknown target {value:?}"))?,
                    );
                }
                "case-seed" => {
                    case_seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("case-seed: {e}"))?,
                    );
                }
                "chaos" => {
                    chaos = Some(value.parse::<bool>().map_err(|e| format!("chaos: {e}"))?);
                }
                "verdict" => {
                    verdict = Some(
                        Verdict::parse(value)
                            .ok_or_else(|| format!("unknown verdict {value:?}"))?,
                    );
                }
                "signature" => signature = Some(unescape_item(value)?),
                "item" => items.push(unescape_item(value)?),
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        Ok(Self {
            case: FuzzCase::new(target.ok_or_else(|| "missing target".to_string())?, items),
            case_seed: case_seed.ok_or_else(|| "missing case-seed".to_string())?,
            chaos: chaos.ok_or_else(|| "missing chaos".to_string())?,
            verdict: verdict.ok_or_else(|| "missing verdict".to_string())?,
            signature: signature.ok_or_else(|| "missing signature".to_string())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips_crafted_bytes() {
        let nasty = "GET /x HTTP/1.1\r\nRange: bytes=-1\r\n\r\n\ttab \u{b}vt \\slash";
        assert_eq!(unescape_item(&escape_item(nasty)).unwrap(), nasty);
        assert!(!escape_item(nasty).contains('\n'), "must stay one line");
    }

    #[test]
    fn control_chars_use_hex_escapes() {
        assert_eq!(escape_item("a\u{1}b"), "a\\x01b");
        assert_eq!(unescape_item("a\\x01b").unwrap(), "a\u{1}b");
    }

    #[test]
    fn unescape_rejects_truncated_escapes() {
        assert!(unescape_item("bad\\x0").is_err());
        assert!(unescape_item("bad\\").is_err());
        assert!(unescape_item("bad\\q").is_err());
    }

    #[test]
    fn reproducer_roundtrips() {
        let rep = Reproducer {
            case: FuzzCase::new(
                TargetId::HttpRange,
                vec![
                    "GET /index.html HTTP/1.1\r\nHost: f\r\n\r\n".to_string(),
                    "line two".to_string(),
                ],
            ),
            case_seed: 0xDEAD_BEEF,
            chaos: true,
            verdict: Verdict::TruePositive,
            signature: "fuzz_in|2|structural".to_string(),
        };
        let text = rep.to_text();
        assert_eq!(Reproducer::parse(&text).unwrap(), rep);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Reproducer::parse("nope").is_err());
        let missing = format!("{HEADER}\ntarget: pg-rls\n");
        assert!(Reproducer::parse(&missing).is_err());
    }
}
