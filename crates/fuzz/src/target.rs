//! The fuzzable deployment shapes.
//!
//! Each target names a complete N-version deployment recipe (instance
//! versions/flavors, filter pair, quorum policy, wire protocol) plus the
//! input family its generator speaks. `Mixed` mode deploys the diverse
//! instance set the operator would run in production; `Uniform` mode
//! deploys N copies of instance 0 and is the triage oracle: a divergence
//! that survives uniformity is noise, not version-gated behaviour.

/// Identifies one fuzz target (deployment recipe + generator family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TargetId {
    /// MiniPg 10.7/10.7/10.9 behind a filter pair, RLS-secured schema —
    /// the CVE-2019-10130 surface (non-leakproof operators vs row security).
    PgRls,
    /// MiniPg 10.9 ×2 + MiniCockroach (scrambled row order, no plpgsql)
    /// behind a filter pair — implementation diversity, not version
    /// diversity.
    PgFlavors,
    /// Three paged-storage MiniPg instances, `replay-forward` ×2 +
    /// `shadow-discard`, MajorityVote + eject. The only target that
    /// composes with a [`rddr_net::FaultPlan`]: under chaos the generator
    /// emits `!CRASH` items and the plan arms torn-WAL-tail storage faults
    /// plus a connection refusal on the same seed.
    PgStorage,
    /// NginxSim 1.13.2 ×2 (filter pair) + 1.13.4 static file server — the
    /// CVE-2017-7529 range-filter overflow surface, plus header casing.
    HttpRange,
    /// HAProxySim 1.5.3 vs NginxSim 1.13.4 reverse proxies in front of
    /// replicated backends — the CVE-2019-18277 Transfer-Encoding
    /// smuggling surface.
    HttpSmuggle,
    /// `markdown2` vs `markdown-safe` behind `POST /render`
    /// (CVE-2020-11888 scheme-check bypass).
    LibMarkdown,
    /// `svglib` vs `cairosvg` behind `POST /convert` (CVE-2020-10799 XXE
    /// file disclosure).
    LibSvg,
    /// `lxml.clean` vs `sanitize-html` behind `POST /sanitize`
    /// (CVE-2014-3146 control-character scheme bypass).
    LibXml,
    /// A deliberately noisy echo pair whose responses embed a per-instance
    /// marker with no de-noise configuration. Every divergence it produces
    /// is a false positive by construction — it exists to validate the
    /// triage oracle and is excluded from [`TargetId::default_set`].
    LineNoise,
}

/// The input family a target's generator speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Family {
    /// SQL statement streams over the PG v3 wire protocol.
    Sql,
    /// Raw HTTP/1.1 request bytes, one request per item.
    Http,
    /// Request bodies POSTed to a fixed route.
    Payload,
    /// Newline-framed text lines.
    Line,
}

const ALL: &[TargetId] = &[
    TargetId::PgRls,
    TargetId::PgFlavors,
    TargetId::PgStorage,
    TargetId::HttpRange,
    TargetId::HttpSmuggle,
    TargetId::LibMarkdown,
    TargetId::LibSvg,
    TargetId::LibXml,
    TargetId::LineNoise,
];

impl TargetId {
    /// Stable machine name (used in corpus files and reports).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            TargetId::PgRls => "pg-rls",
            TargetId::PgFlavors => "pg-flavors",
            TargetId::PgStorage => "pg-storage",
            TargetId::HttpRange => "http-range",
            TargetId::HttpSmuggle => "http-smuggle",
            TargetId::LibMarkdown => "lib-markdown",
            TargetId::LibSvg => "lib-svg",
            TargetId::LibXml => "lib-xml",
            TargetId::LineNoise => "line-noise",
        }
    }

    /// Parses a [`TargetId::name`] back to the id.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        ALL.iter().copied().find(|t| t.name() == name)
    }

    /// Every target, in stable order.
    #[must_use]
    pub fn all() -> &'static [TargetId] {
        ALL
    }

    /// The production fuzzing set: every real deployment recipe. The
    /// synthetic [`TargetId::LineNoise`] oracle-validation target is
    /// excluded — its findings are false positives by design and would
    /// defeat the zero-FP CI gate.
    #[must_use]
    pub fn default_set() -> Vec<TargetId> {
        ALL.iter()
            .copied()
            .filter(|t| *t != TargetId::LineNoise)
            .collect()
    }

    /// Whether a composed [`rddr_net::FaultPlan`] changes this target's
    /// behaviour (connection + storage faults armed on the fuzz seed).
    #[must_use]
    pub fn supports_chaos(self) -> bool {
        matches!(self, TargetId::PgStorage)
    }

    pub(crate) fn family(self) -> Family {
        match self {
            TargetId::PgRls | TargetId::PgFlavors | TargetId::PgStorage => Family::Sql,
            TargetId::HttpRange | TargetId::HttpSmuggle => Family::Http,
            TargetId::LibMarkdown | TargetId::LibSvg | TargetId::LibXml => Family::Payload,
            TargetId::LineNoise => Family::Line,
        }
    }
}

impl std::fmt::Display for TargetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for t in TargetId::all() {
            assert_eq!(TargetId::parse(t.name()), Some(*t), "{t}");
        }
        assert_eq!(TargetId::parse("no-such-target"), None);
    }

    #[test]
    fn default_set_excludes_the_noise_oracle() {
        let set = TargetId::default_set();
        assert!(!set.contains(&TargetId::LineNoise));
        assert_eq!(set.len(), TargetId::all().len() - 1);
    }
}
