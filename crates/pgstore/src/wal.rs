//! The write-ahead log: framing, append/sync, and seeded-fault-tolerant
//! replay under pluggable recovery policies.
//!
//! Record framing (little-endian): `[payload len u32][FNV-1a of payload
//! u64][payload]`, where the payload's first byte is the record kind. A
//! transaction is `Begin … ops … Commit`; the executor wraps standalone
//! mutations so *every* change is transactional. Appends are cached until
//! [`Wal::sync`] (called at commit), so an uncommitted transaction's
//! records simply die with the crash.
//!
//! Replay applies transactions in commit order. A record that fails
//! validation *before* the end of the log is hard corruption; a partial or
//! unverifiable record *at* the tail is the expected shape of a crash, and
//! what happens next is the [`RecoveryPolicy`] — the deliberate divergence
//! corner. A torn tail whose readable kind byte is `Commit` means the
//! commit was issued and its transaction's records are all intact:
//! [`RecoveryPolicy::ReplayForward`] honours it, while
//! [`RecoveryPolicy::ShadowDiscard`] refuses to trust anything it cannot
//! verify. Both then truncate the torn tail so subsequent appends restore
//! clean framing (ReplayForward re-appends the commit it honoured).

use crate::disk::VDisk;
use crate::{fnv1a, Result, StoreError};

/// How recovery treats a torn WAL tail — the knob that makes two paged
/// instances version-diverse without touching the SQL layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Honour a torn trailing record whose readable kind byte is `Commit`:
    /// the commit was issued, its transaction's records verify, so roll
    /// the transaction forward.
    #[default]
    ReplayForward,
    /// Discard any transaction whose commit record does not fully verify;
    /// a torn tail of any kind is treated as if the crash came first.
    ShadowDiscard,
}

impl RecoveryPolicy {
    /// Parses `"replay-forward"` / `"shadow-discard"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "replay-forward" | "replay_forward" | "replay" => Some(Self::ReplayForward),
            "shadow-discard" | "shadow_discard" | "shadow" => Some(Self::ShadowDiscard),
            _ => None,
        }
    }

    /// The canonical spec string.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::ReplayForward => "replay-forward",
            Self::ShadowDiscard => "shadow-discard",
        }
    }
}

/// Largest payload `replay` accepts from a length header (16 MiB). Honest
/// records are orders of magnitude smaller; a declared length beyond this
/// is header corruption, not a torn tail.
pub const MAX_RECORD_LEN: usize = 1 << 24;

const KIND_BEGIN: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_CREATE: u8 = 3;
const KIND_DROP: u8 = 4;
const KIND_INSERT: u8 = 5;
const KIND_REWRITE: u8 = 6;

/// One logical WAL record. Row payloads are already codec-encoded — the
/// WAL is below the tuple type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction start.
    Begin {
        /// Transaction id (monotonic).
        txn: u64,
    },
    /// Transaction commit — the durability point.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// Table creation, with the executor's opaque catalog blob.
    CreateTable {
        /// Table name.
        table: String,
        /// Catalog blob (column definitions, owner).
        meta: Vec<u8>,
    },
    /// Table drop.
    DropTable {
        /// Table name.
        table: String,
    },
    /// Row append.
    Insert {
        /// Table name.
        table: String,
        /// Codec-encoded rows, in insertion order.
        rows: Vec<Vec<u8>>,
    },
    /// Wholesale row replacement (UPDATE/DELETE).
    Rewrite {
        /// Table name.
        table: String,
        /// Codec-encoded rows, in the new order.
        rows: Vec<Vec<u8>>,
    },
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let out = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or_else(|| StoreError::Corrupt("record payload underrun".into()))?;
        self.pos += n;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn u32(&mut self) -> Result<u32> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(buf))
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| StoreError::Corrupt("record string not UTF-8".into()))
    }

    fn rows(&mut self) -> Result<Vec<Vec<u8>>> {
        let n = self.u32()? as usize;
        let mut rows = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            rows.push(self.bytes()?);
        }
        Ok(rows)
    }
}

impl WalRecord {
    /// Serializes the record payload (kind byte first).
    #[must_use]
    pub fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Begin { txn } => {
                out.push(KIND_BEGIN);
                put_u64(&mut out, *txn);
            }
            WalRecord::Commit { txn } => {
                out.push(KIND_COMMIT);
                put_u64(&mut out, *txn);
            }
            WalRecord::CreateTable { table, meta } => {
                out.push(KIND_CREATE);
                put_bytes(&mut out, table.as_bytes());
                put_bytes(&mut out, meta);
            }
            WalRecord::DropTable { table } => {
                out.push(KIND_DROP);
                put_bytes(&mut out, table.as_bytes());
            }
            WalRecord::Insert { table, rows } | WalRecord::Rewrite { table, rows } => {
                out.push(match self {
                    WalRecord::Insert { .. } => KIND_INSERT,
                    _ => KIND_REWRITE,
                });
                put_bytes(&mut out, table.as_bytes());
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    put_bytes(&mut out, row);
                }
            }
        }
        out
    }

    /// Frames the record: length, checksum, payload.
    #[must_use]
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode(payload: &[u8]) -> Result<Self> {
        let (&kind, rest) = payload
            .split_first()
            .ok_or_else(|| StoreError::Corrupt("empty record payload".into()))?;
        let mut c = Cursor {
            bytes: rest,
            pos: 0,
        };
        match kind {
            KIND_BEGIN => Ok(WalRecord::Begin { txn: c.u64()? }),
            KIND_COMMIT => Ok(WalRecord::Commit { txn: c.u64()? }),
            KIND_CREATE => Ok(WalRecord::CreateTable {
                table: c.string()?,
                meta: c.bytes()?,
            }),
            KIND_DROP => Ok(WalRecord::DropTable { table: c.string()? }),
            KIND_INSERT => Ok(WalRecord::Insert {
                table: c.string()?,
                rows: c.rows()?,
            }),
            KIND_REWRITE => Ok(WalRecord::Rewrite {
                table: c.string()?,
                rows: c.rows()?,
            }),
            other => Err(StoreError::Corrupt(format!("unknown record kind {other}"))),
        }
    }
}

/// What replay found at the end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// The log ends on a record boundary.
    Clean,
    /// The log ends mid-record; the kind byte (if readable) is given.
    Torn(Option<u8>),
}

/// The outcome of replaying a WAL.
#[derive(Debug)]
pub struct Replay {
    /// Operations of committed transactions, in commit order.
    pub ops: Vec<WalRecord>,
    /// Shape of the log tail.
    pub tail: TailState,
    /// Transactions rolled forward.
    pub committed: u64,
    /// Transactions discarded (no verifiable commit).
    pub discarded: u64,
    /// Whether the policy honoured a torn trailing commit.
    pub honoured_torn_commit: bool,
    /// Byte offset of the last fully valid record's end (where a torn
    /// tail should be truncated to).
    pub valid_end: u64,
    /// One past the highest transaction id seen.
    pub next_txn: u64,
    /// The transaction honoured or discarded at the torn tail, if any.
    pub tail_txn: Option<u64>,
}

/// An append handle over a [`VDisk`] file.
#[derive(Debug)]
pub struct Wal {
    disk: VDisk,
    file: String,
}

impl Wal {
    /// Opens (or creates) the log `file` on `disk`.
    #[must_use]
    pub fn new(disk: VDisk, file: impl Into<String>) -> Self {
        Self {
            disk,
            file: file.into(),
        }
    }

    /// Appends a record (cached until [`Wal::sync`]).
    pub fn append(&self, record: &WalRecord) {
        self.disk.append(&self.file, &record.frame());
    }

    /// Hardens all cached appends — the commit durability point.
    pub fn sync(&self) {
        self.disk.fsync(&self.file);
    }

    /// Truncates the log (recovery clears a torn tail with this).
    pub fn truncate(&self, len: u64) {
        self.disk.truncate(&self.file, len);
    }

    /// Current log length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.disk.len(&self.file)
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replays the log under `policy`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on an invalid record *before* the tail —
    /// torn tails are expected crash damage, interior corruption is not.
    pub fn replay(&self, policy: RecoveryPolicy) -> Result<Replay> {
        let bytes = self
            .disk
            .read(&self.file, 0, self.disk.len(&self.file) as usize);
        let mut ops = Vec::new();
        let mut committed = 0u64;
        let mut discarded = 0u64;
        let mut next_txn = 1u64;
        // Transactions whose Begin was seen but whose Commit was not (yet):
        // ops buffered per transaction id, applied in commit order.
        let mut open: Vec<(u64, Vec<WalRecord>)> = Vec::new();
        let mut pos = 0usize;
        let mut tail = TailState::Clean;
        let mut valid_end = 0u64;
        loop {
            if pos == bytes.len() {
                break;
            }
            let Some(header) = bytes.get(pos..pos + 12) else {
                tail = TailState::Torn(bytes.get(pos + 12).copied());
                break;
            };
            let mut len_buf = [0u8; 4];
            let mut crc_buf = [0u8; 8];
            len_buf.copy_from_slice(header.get(..4).unwrap_or(&[0; 4]));
            crc_buf.copy_from_slice(header.get(4..).unwrap_or(&[0; 8]));
            let len = u32::from_le_bytes(len_buf) as usize;
            let crc = u64::from_le_bytes(crc_buf);
            // A crash can truncate a record, never inflate one: a declared
            // length past the cap no honest writer produces is a corrupt
            // header, and must fail recovery cleanly rather than be misread
            // as innocuous torn-tail damage (or drive a reader that trusts
            // the header into a giant allocation).
            if len > MAX_RECORD_LEN {
                return Err(StoreError::Corrupt(format!(
                    "WAL record at offset {pos} declares a {len} byte payload \
                     (cap {MAX_RECORD_LEN}): length header corrupt"
                )));
            }
            let Some(payload) = bytes.get(pos + 12..pos + 12 + len) else {
                tail = TailState::Torn(bytes.get(pos + 12).copied());
                break;
            };
            if fnv1a(payload) != crc {
                if pos + 12 + len == bytes.len() {
                    tail = TailState::Torn(payload.first().copied());
                    break;
                }
                return Err(StoreError::Corrupt(format!(
                    "WAL record at offset {pos} fails checksum mid-log"
                )));
            }
            let record = WalRecord::decode(payload)?;
            pos += 12 + len;
            valid_end = pos as u64;
            match record {
                WalRecord::Begin { txn } => {
                    next_txn = next_txn.max(txn + 1);
                    open.push((txn, Vec::new()));
                }
                WalRecord::Commit { txn } => {
                    next_txn = next_txn.max(txn + 1);
                    if let Some(i) = open.iter().position(|(t, _)| *t == txn) {
                        let (_, txn_ops) = open.remove(i);
                        ops.extend(txn_ops);
                        committed += 1;
                    }
                }
                op => {
                    if let Some((_, txn_ops)) = open.last_mut() {
                        txn_ops.push(op);
                    } else {
                        // Untracked standalone op (defensive): apply as-is.
                        ops.push(op);
                    }
                }
            }
        }
        let mut honoured_torn_commit = false;
        let mut tail_txn = None;
        if let TailState::Torn(kind) = tail {
            // The torn record, if its kind byte reads Commit, can only
            // belong to the most recently opened transaction.
            if kind == Some(KIND_COMMIT) {
                if let Some((txn, _)) = open.last() {
                    tail_txn = Some(*txn);
                    if policy == RecoveryPolicy::ReplayForward {
                        if let Some((txn, txn_ops)) = open.pop() {
                            next_txn = next_txn.max(txn + 1);
                            ops.extend(txn_ops);
                            committed += 1;
                            honoured_torn_commit = true;
                        }
                    }
                }
            }
        }
        discarded += open.len() as u64;
        Ok(Replay {
            ops,
            tail,
            committed,
            discarded,
            honoured_torn_commit,
            valid_end,
            next_txn,
            tail_txn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> VDisk {
        VDisk::new("wal-test")
    }

    fn row(n: u8) -> Vec<u8> {
        vec![n; 4]
    }

    fn committed_txn(wal: &Wal, txn: u64, table: &str, rows: Vec<Vec<u8>>) {
        wal.append(&WalRecord::Begin { txn });
        wal.append(&WalRecord::Insert {
            table: table.into(),
            rows,
        });
        wal.append(&WalRecord::Commit { txn });
        wal.sync();
    }

    #[test]
    fn record_round_trip() {
        for rec in [
            WalRecord::Begin { txn: 7 },
            WalRecord::Commit { txn: 7 },
            WalRecord::CreateTable {
                table: "T".into(),
                meta: b"cols".to_vec(),
            },
            WalRecord::DropTable { table: "T".into() },
            WalRecord::Insert {
                table: "T".into(),
                rows: vec![row(1), row(2)],
            },
            WalRecord::Rewrite {
                table: "T".into(),
                rows: vec![],
            },
        ] {
            let frame = rec.frame();
            let payload = &frame[12..];
            assert_eq!(WalRecord::decode(payload).unwrap(), rec);
        }
    }

    #[test]
    fn replay_applies_committed_and_discards_uncommitted() {
        let d = disk();
        let wal = Wal::new(d.clone(), "wal");
        committed_txn(&wal, 1, "T", vec![row(1)]);
        // Uncommitted txn: records appended but never synced.
        wal.append(&WalRecord::Begin { txn: 2 });
        wal.append(&WalRecord::Insert {
            table: "T".into(),
            rows: vec![row(2)],
        });
        d.crash();
        let replay = Wal::new(d, "wal")
            .replay(RecoveryPolicy::ReplayForward)
            .unwrap();
        assert_eq!(replay.tail, TailState::Clean);
        assert_eq!((replay.committed, replay.discarded), (1, 0));
        assert_eq!(replay.ops.len(), 1);
        assert_eq!(replay.next_txn, 2);
    }

    struct TruncateFirstCrash;
    impl crate::disk::DiskFaults for TruncateFirstCrash {
        fn truncate_tail(&self, _d: &str, _f: &str, seq: u64) -> bool {
            seq == 0
        }
    }

    fn torn_commit_disk() -> VDisk {
        let d = VDisk::with_faults("d", std::sync::Arc::new(TruncateFirstCrash));
        let wal = Wal::new(d.clone(), "wal");
        committed_txn(&wal, 1, "T", vec![row(1)]);
        d.crash(); // tears the trailing Commit record mid-payload
        d
    }

    #[test]
    fn policies_diverge_on_torn_trailing_commit() {
        let d = torn_commit_disk();
        let forward = Wal::new(d.clone(), "wal")
            .replay(RecoveryPolicy::ReplayForward)
            .unwrap();
        assert!(matches!(forward.tail, TailState::Torn(Some(2))));
        assert!(forward.honoured_torn_commit);
        assert_eq!(forward.ops.len(), 1, "txn rolled forward");
        assert_eq!(forward.tail_txn, Some(1));

        let shadow = Wal::new(d, "wal")
            .replay(RecoveryPolicy::ShadowDiscard)
            .unwrap();
        assert!(!shadow.honoured_torn_commit);
        assert!(shadow.ops.is_empty(), "txn discarded");
        assert_eq!(shadow.discarded, 1);
        assert_eq!(shadow.tail_txn, Some(1));
        assert_eq!(shadow.valid_end, forward.valid_end);
    }

    #[test]
    fn torn_data_record_is_discarded_by_both_policies() {
        let d = VDisk::with_faults("d", std::sync::Arc::new(TruncateFirstCrash));
        let wal = Wal::new(d.clone(), "wal");
        wal.append(&WalRecord::Begin { txn: 1 });
        wal.append(&WalRecord::Insert {
            table: "T".into(),
            rows: vec![row(9)],
        });
        wal.sync(); // durable mid-transaction, then torn at crash
        d.crash();
        for policy in [RecoveryPolicy::ReplayForward, RecoveryPolicy::ShadowDiscard] {
            let r = Wal::new(d.clone(), "wal").replay(policy).unwrap();
            assert!(matches!(r.tail, TailState::Torn(Some(KIND_INSERT))));
            assert!(r.ops.is_empty());
            assert!(!r.honoured_torn_commit);
        }
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let d = disk();
        let wal = Wal::new(d.clone(), "wal");
        committed_txn(&wal, 1, "T", vec![row(1)]);
        committed_txn(&wal, 2, "T", vec![row(2)]);
        // Flip a byte in the middle of the log.
        let mut bytes = d.read("wal", 0, d.len("wal") as usize);
        bytes[20] ^= 0xFF;
        d.truncate("wal", 0);
        d.write_at("wal", 0, &bytes);
        d.fsync("wal");
        assert!(matches!(
            wal.replay(RecoveryPolicy::ReplayForward),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn oversize_declared_length_is_corruption_not_a_torn_tail() {
        let d = disk();
        let wal = Wal::new(d.clone(), "wal");
        committed_txn(&wal, 1, "T", vec![row(1)]);
        // Hand-corrupt the tail: a frame header declaring a payload far
        // beyond both the remaining file size and any honest record, with
        // a few garbage payload bytes behind it. A reader that trusts the
        // header would attempt a gigabyte allocation; replay must fail
        // cleanly instead of reporting innocuous crash damage.
        let mut frame = Vec::new();
        frame.extend_from_slice(&0x4000_0000u32.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        frame.extend_from_slice(b"junk");
        d.append("wal", &frame);
        d.fsync("wal");
        for policy in [RecoveryPolicy::ReplayForward, RecoveryPolicy::ShadowDiscard] {
            assert!(
                matches!(wal.replay(policy), Err(StoreError::Corrupt(_))),
                "{policy:?} must reject the oversize length header"
            );
        }
    }

    #[test]
    fn truncated_tail_under_the_cap_stays_torn() {
        // The guard must not reclassify ordinary crash damage: a record
        // whose (honest) declared length just runs past the end of the
        // file is still a torn tail, for both policies.
        let d = torn_commit_disk();
        for policy in [RecoveryPolicy::ReplayForward, RecoveryPolicy::ShadowDiscard] {
            let r = Wal::new(d.clone(), "wal").replay(policy).unwrap();
            assert!(matches!(r.tail, TailState::Torn(_)));
        }
    }

    #[test]
    fn truncate_then_append_restores_clean_framing() {
        let d = torn_commit_disk();
        let wal = Wal::new(d, "wal");
        let r = wal.replay(RecoveryPolicy::ShadowDiscard).unwrap();
        wal.truncate(r.valid_end);
        committed_txn(&wal, r.next_txn, "T", vec![row(3)]);
        let again = wal.replay(RecoveryPolicy::ShadowDiscard).unwrap();
        assert_eq!(again.tail, TailState::Clean);
        assert_eq!(again.committed, 1);
    }
}
