//! A fixed-size buffer pool with deterministic clock eviction.
//!
//! Frames cache [`Page`]s of one heap file. Lookups pin the frame for the
//! duration of the visitor closure; eviction sweeps a clock hand over the
//! frames, skipping pinned ones and clearing reference bits, and flushes
//! dirty victims back to the [`VDisk`] before reuse. Everything is
//! deterministic: same access sequence, same hit/miss/eviction trace.

use std::collections::BTreeMap;

use crate::disk::VDisk;
use crate::page::{Page, PAGE_SIZE};
use crate::{Result, StoreError};

/// Default number of frames a pool holds.
pub const DEFAULT_FRAMES: usize = 64;

#[derive(Debug)]
struct Frame {
    page_no: u64,
    page: Page,
    dirty: bool,
    pinned: bool,
    referenced: bool,
    occupied: bool,
}

impl Frame {
    fn empty() -> Self {
        Self {
            page_no: 0,
            page: Page::new(),
            dirty: false,
            pinned: false,
            referenced: false,
            occupied: false,
        }
    }
}

/// Cache statistics, for benchmarks and eviction-determinism tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups served from a resident frame.
    pub hits: u64,
    /// Lookups that read the page from disk.
    pub misses: u64,
    /// Frames recycled by the clock hand.
    pub evictions: u64,
    /// Dirty pages written back to disk.
    pub writebacks: u64,
}

/// A fixed-size page cache over one [`VDisk`] file.
#[derive(Debug)]
pub struct BufferPool {
    file: String,
    frames: Vec<Frame>,
    map: BTreeMap<u64, usize>,
    hand: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool of `capacity` frames caching `file`.
    #[must_use]
    pub fn new(file: impl Into<String>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            file: file.into(),
            frames: (0..capacity).map(|_| Frame::empty()).collect(),
            map: BTreeMap::new(),
            hand: 0,
            stats: PoolStats::default(),
        }
    }

    /// Cache statistics so far.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Runs `f` over page `page_no`, reading it from `disk` on a miss. The
    /// frame is pinned while `f` runs.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the on-disk page fails validation (the
    /// torn-page detection path).
    pub fn with_page<T>(
        &mut self,
        disk: &VDisk,
        page_no: u64,
        f: impl FnOnce(&Page) -> T,
    ) -> Result<T> {
        let idx = self.acquire(disk, page_no)?;
        let out = match self.frames.get_mut(idx) {
            Some(frame) => {
                frame.pinned = true;
                let out = f(&frame.page);
                frame.pinned = false;
                out
            }
            None => return Err(StoreError::Corrupt("frame index out of range".into())),
        };
        Ok(out)
    }

    /// Like [`BufferPool::with_page`] but mutable; marks the frame dirty.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the on-disk page fails validation.
    pub fn with_page_mut<T>(
        &mut self,
        disk: &VDisk,
        page_no: u64,
        f: impl FnOnce(&mut Page) -> T,
    ) -> Result<T> {
        let idx = self.acquire(disk, page_no)?;
        let out = match self.frames.get_mut(idx) {
            Some(frame) => {
                frame.pinned = true;
                frame.dirty = true;
                let out = f(&mut frame.page);
                frame.pinned = false;
                out
            }
            None => return Err(StoreError::Corrupt("frame index out of range".into())),
        };
        Ok(out)
    }

    /// Installs a fresh empty page for `page_no` without reading disk (the
    /// page is being created and has no on-disk image yet).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if evicting a victim frame fails.
    pub fn create_page(&mut self, disk: &VDisk, page_no: u64) -> Result<()> {
        if let Some(&idx) = self.map.get(&page_no) {
            if let Some(frame) = self.frames.get_mut(idx) {
                frame.page = Page::new();
                frame.dirty = true;
                frame.referenced = true;
            }
            return Ok(());
        }
        let idx = self.victim(disk)?;
        if let Some(frame) = self.frames.get_mut(idx) {
            if frame.occupied {
                self.map.remove(&frame.page_no);
            }
            *frame = Frame::empty();
            frame.page_no = page_no;
            frame.dirty = true;
            frame.referenced = true;
            frame.occupied = true;
        }
        self.map.insert(page_no, idx);
        Ok(())
    }

    /// Writes every dirty frame back to `disk` (unsynced; callers fsync).
    pub fn flush_all(&mut self, disk: &VDisk) {
        for frame in &mut self.frames {
            if frame.occupied && frame.dirty {
                disk.write_at(
                    &self.file,
                    frame.page_no * PAGE_SIZE as u64,
                    frame.page.seal(),
                );
                frame.dirty = false;
                self.stats.writebacks += 1;
            }
        }
    }

    /// Drops every frame without writing back — the crash/rollback path.
    pub fn clear(&mut self) {
        for frame in &mut self.frames {
            *frame = Frame::empty();
        }
        self.map.clear();
        self.hand = 0;
    }

    fn acquire(&mut self, disk: &VDisk, page_no: u64) -> Result<usize> {
        if let Some(&idx) = self.map.get(&page_no) {
            if let Some(frame) = self.frames.get_mut(idx) {
                frame.referenced = true;
            }
            self.stats.hits += 1;
            return Ok(idx);
        }
        self.stats.misses += 1;
        let bytes = disk.read(&self.file, page_no * PAGE_SIZE as u64, PAGE_SIZE);
        let page = Page::from_bytes(bytes)
            .map_err(|e| StoreError::Corrupt(format!("page {page_no} of {}: {e}", self.file)))?;
        let idx = self.victim(disk)?;
        if let Some(frame) = self.frames.get_mut(idx) {
            if frame.occupied {
                self.map.remove(&frame.page_no);
            }
            frame.page_no = page_no;
            frame.page = page;
            frame.dirty = false;
            frame.pinned = false;
            frame.referenced = true;
            frame.occupied = true;
        }
        self.map.insert(page_no, idx);
        Ok(idx)
    }

    /// Clock sweep: advance the hand, skip pinned frames, clear reference
    /// bits, take the first unreferenced unpinned frame. Flushes a dirty
    /// victim before handing it out.
    fn victim(&mut self, disk: &VDisk) -> Result<usize> {
        // An unoccupied frame is always free (scan in index order so frame
        // fill order is deterministic).
        if let Some(idx) = self.frames.iter().position(|f| !f.occupied) {
            return Ok(idx);
        }
        // Two full sweeps guarantee a victim unless every frame is pinned,
        // which cannot happen: pins only live inside a visitor closure.
        let n = self.frames.len();
        for _ in 0..2 * n {
            let idx = self.hand;
            self.hand = (self.hand + 1) % n;
            let Some(frame) = self.frames.get_mut(idx) else {
                continue;
            };
            if frame.pinned {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            if frame.dirty {
                disk.write_at(
                    &self.file,
                    frame.page_no * PAGE_SIZE as u64,
                    frame.page.seal(),
                );
                frame.dirty = false;
                self.stats.writebacks += 1;
            }
            self.stats.evictions += 1;
            return Ok(idx);
        }
        Err(StoreError::Corrupt(
            "buffer pool exhausted: all frames pinned".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_disk(pages: u64) -> VDisk {
        let disk = VDisk::new("pool-test");
        for no in 0..pages {
            let mut p = Page::new();
            p.insert(format!("page-{no}").as_bytes());
            disk.write_at("heap", no * PAGE_SIZE as u64, p.seal());
        }
        disk.fsync("heap");
        disk
    }

    #[test]
    fn hit_after_miss() {
        let disk = seeded_disk(2);
        let mut pool = BufferPool::new("heap", 4);
        let t = pool
            .with_page(&disk, 1, |p| p.tuple(0).map(<[u8]>::to_vec))
            .unwrap()
            .unwrap();
        assert_eq!(t, b"page-1");
        pool.with_page(&disk, 1, |_| ()).unwrap();
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn eviction_is_deterministic_and_bounded() {
        let disk = seeded_disk(8);
        let run = || {
            let mut pool = BufferPool::new("heap", 2);
            for no in [0u64, 1, 2, 3, 0, 1, 2, 3] {
                pool.with_page(&disk, no, |_| ()).unwrap();
            }
            pool.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same access trace, same stats");
        assert!(a.evictions >= 4);
        assert_eq!(a.hits + a.misses, 8);
    }

    #[test]
    fn dirty_pages_write_back_on_eviction_and_flush() {
        let disk = seeded_disk(3);
        let mut pool = BufferPool::new("heap", 1);
        pool.with_page_mut(&disk, 0, |p| {
            p.insert(b"extra");
        })
        .unwrap();
        // Touch two other pages through the single frame: page 0 must be
        // written back by the clock.
        pool.with_page(&disk, 1, |_| ()).unwrap();
        pool.with_page(&disk, 2, |_| ()).unwrap();
        assert!(pool.stats().writebacks >= 1);
        disk.fsync("heap");
        // Re-read page 0 from disk through a fresh pool.
        let mut fresh = BufferPool::new("heap", 1);
        let n = fresh.with_page(&disk, 0, Page::slot_count).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn create_page_skips_disk_read() {
        let disk = VDisk::new("pool-test");
        let mut pool = BufferPool::new("heap", 2);
        pool.create_page(&disk, 0).unwrap();
        pool.with_page_mut(&disk, 0, |p| {
            p.insert(b"fresh");
        })
        .unwrap();
        pool.flush_all(&disk);
        disk.fsync("heap");
        let bytes = disk.read("heap", 0, PAGE_SIZE);
        let p = Page::from_bytes(bytes).unwrap();
        assert_eq!(p.tuple(0).unwrap(), b"fresh");
    }

    #[test]
    fn corrupt_page_read_is_an_error() {
        let disk = VDisk::new("pool-test");
        disk.write_at("heap", 0, &vec![0xAAu8; PAGE_SIZE]);
        disk.fsync("heap");
        let mut pool = BufferPool::new("heap", 2);
        assert!(matches!(
            pool.with_page(&disk, 0, |_| ()),
            Err(StoreError::Corrupt(_))
        ));
    }
}
