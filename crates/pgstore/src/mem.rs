//! The in-memory storage engine: MiniPg's original row vectors behind the
//! [`Storage`] trait.
//!
//! Rows live in insertion-order `Vec<R>`s with a lazily-built primary-key
//! index (`BTreeMap<key bytes, Vec<row index>>`), exactly the structure the
//! executor used before the storage split. Nothing survives a restart —
//! the behaviour the recovery chaos suite contrasts against the paged
//! engine. Transactions take lazy per-table snapshots: the first mutation
//! of a table inside a transaction clones it, and rollback restores the
//! clones.

use std::collections::BTreeMap;

use crate::{fnv1a_extend, Result, Storage, StoreError, TupleCodec};

struct MemTable<R> {
    meta: Vec<u8>,
    rows: Vec<R>,
    heap_bytes: u64,
    index: Option<BTreeMap<Vec<u8>, Vec<usize>>>,
}

impl<R: Clone> Clone for MemTable<R> {
    fn clone(&self) -> Self {
        Self {
            meta: self.meta.clone(),
            rows: self.rows.clone(),
            heap_bytes: self.heap_bytes,
            index: self.index.clone(),
        }
    }
}

/// The in-memory engine. `C` supplies key extraction and heap accounting;
/// rows are stored as-is, so scans are clone-only.
pub struct MemStore<R, C> {
    codec: C,
    tables: BTreeMap<String, MemTable<R>>,
    /// `Some` while a transaction is open; maps table name to its
    /// pre-transaction state (`None` = table did not exist).
    undo: Option<BTreeMap<String, Option<MemTable<R>>>>,
}

impl<R: Clone, C: TupleCodec<R>> MemStore<R, C> {
    /// An empty store using `codec`.
    #[must_use]
    pub fn new(codec: C) -> Self {
        Self {
            codec,
            tables: BTreeMap::new(),
            undo: None,
        }
    }

    fn table(&self, table: &str) -> Result<&MemTable<R>> {
        self.tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.into()))
    }

    /// Records `table`'s pre-transaction state the first time it is
    /// mutated inside an open transaction.
    fn snapshot(&mut self, table: &str) {
        if let Some(undo) = &mut self.undo {
            if !undo.contains_key(table) {
                undo.insert(table.to_string(), self.tables.get(table).cloned());
            }
        }
    }
}

impl<R: Clone + Send, C: TupleCodec<R>> Storage<R> for MemStore<R, C> {
    fn engine(&self) -> &'static str {
        "memory"
    }

    fn create_table(&mut self, table: &str, meta: &[u8]) -> Result<()> {
        if self.tables.contains_key(table) {
            return Err(StoreError::TableExists(table.into()));
        }
        self.snapshot(table);
        self.tables.insert(
            table.to_string(),
            MemTable {
                meta: meta.to_vec(),
                rows: Vec::new(),
                heap_bytes: 0,
                index: None,
            },
        );
        Ok(())
    }

    fn drop_table(&mut self, table: &str) -> Result<()> {
        if !self.tables.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.into()));
        }
        self.snapshot(table);
        self.tables.remove(table);
        Ok(())
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    fn table_meta(&self, table: &str) -> Option<Vec<u8>> {
        self.tables.get(table).map(|t| t.meta.clone())
    }

    fn row_count(&self, table: &str) -> Result<u64> {
        Ok(self.table(table)?.rows.len() as u64)
    }

    fn scan(&self, table: &str, visit: &mut dyn FnMut(R)) -> Result<()> {
        for row in &self.table(table)?.rows {
            visit(row.clone());
        }
        Ok(())
    }

    fn ensure_index(&mut self, table: &str) -> Result<()> {
        let codec = &self.codec;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.into()))?;
        if t.index.is_none() {
            let mut index: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
            for (i, row) in t.rows.iter().enumerate() {
                index.entry(codec.key(row)).or_default().push(i);
            }
            t.index = Some(index);
        }
        Ok(())
    }

    fn has_index(&self, table: &str) -> bool {
        self.tables.get(table).is_some_and(|t| t.index.is_some())
    }

    fn lookup(&self, table: &str, key: &[u8], visit: &mut dyn FnMut(R)) -> Result<u64> {
        let t = self.table(table)?;
        if let Some(index) = &t.index {
            let candidates: &[usize] = index.get(key).map_or(&[], Vec::as_slice);
            for &i in candidates {
                if let Some(row) = t.rows.get(i) {
                    visit(row.clone());
                }
            }
            return Ok(candidates.len() as u64);
        }
        // No index: filtered scan — same candidate set, same order.
        let mut candidates = 0u64;
        for row in &t.rows {
            if self.codec.key(row) == key {
                candidates += 1;
                visit(row.clone());
            }
        }
        Ok(candidates)
    }

    fn insert(&mut self, table: &str, rows: Vec<R>) -> Result<()> {
        if !self.tables.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.into()));
        }
        self.snapshot(table);
        let codec = &self.codec;
        let Some(t) = self.tables.get_mut(table) else {
            return Err(StoreError::NoSuchTable(table.into()));
        };
        for row in rows {
            t.heap_bytes += codec.heap_bytes(&row);
            if let Some(index) = &mut t.index {
                index.entry(codec.key(&row)).or_default().push(t.rows.len());
            }
            t.rows.push(row);
        }
        Ok(())
    }

    fn rewrite(&mut self, table: &str, rows: Vec<R>) -> Result<()> {
        if !self.tables.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.into()));
        }
        self.snapshot(table);
        let codec = &self.codec;
        let Some(t) = self.tables.get_mut(table) else {
            return Err(StoreError::NoSuchTable(table.into()));
        };
        t.heap_bytes = rows.iter().map(|r| codec.heap_bytes(r)).sum();
        t.rows = rows;
        t.index = None;
        Ok(())
    }

    fn begin(&mut self) -> Result<()> {
        if self.undo.is_some() {
            return Err(StoreError::TransactionOpen);
        }
        self.undo = Some(BTreeMap::new());
        Ok(())
    }

    fn commit(&mut self) -> Result<()> {
        if self.undo.take().is_none() {
            return Err(StoreError::NoTransaction);
        }
        Ok(())
    }

    fn rollback(&mut self) -> Result<()> {
        let Some(undo) = self.undo.take() else {
            return Err(StoreError::NoTransaction);
        };
        for (table, prior) in undo {
            match prior {
                Some(t) => {
                    self.tables.insert(table, t);
                }
                None => {
                    self.tables.remove(&table);
                }
            }
        }
        Ok(())
    }

    fn in_txn(&self) -> bool {
        self.undo.is_some()
    }

    fn bytes(&self) -> u64 {
        self.tables.values().map(|t| t.heap_bytes).sum()
    }

    fn state_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut buf = Vec::new();
        for (name, t) in &self.tables {
            h = fnv1a_extend(h, name.as_bytes());
            h = fnv1a_extend(h, &t.meta);
            for row in &t.rows {
                buf.clear();
                self.codec.encode(row, &mut buf);
                h = fnv1a_extend(h, &buf);
            }
        }
        h
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A toy codec over `(u64, String)` rows.
    pub(crate) struct PairCodec;

    impl TupleCodec<(u64, String)> for PairCodec {
        fn encode(&self, row: &(u64, String), out: &mut Vec<u8>) {
            out.extend_from_slice(&row.0.to_le_bytes());
            out.extend_from_slice(row.1.as_bytes());
        }

        fn decode(&self, bytes: &[u8]) -> Result<(u64, String)> {
            let head = bytes
                .get(..8)
                .ok_or_else(|| StoreError::Corrupt("pair row too short".into()))?;
            let mut buf = [0u8; 8];
            buf.copy_from_slice(head);
            let tail = bytes.get(8..).unwrap_or(&[]);
            let text = String::from_utf8(tail.to_vec())
                .map_err(|_| StoreError::Corrupt("pair row not UTF-8".into()))?;
            Ok((u64::from_le_bytes(buf), text))
        }

        fn key(&self, row: &(u64, String)) -> Vec<u8> {
            row.0.to_be_bytes().to_vec()
        }

        fn heap_bytes(&self, row: &(u64, String)) -> u64 {
            24 + 8 + 16 + row.1.len() as u64
        }
    }

    fn store() -> MemStore<(u64, String), PairCodec> {
        let mut s = MemStore::new(PairCodec);
        s.create_table("T", b"meta").unwrap();
        s
    }

    #[test]
    fn scan_preserves_insertion_order() {
        let mut s = store();
        s.insert("T", vec![(2, "b".into()), (1, "a".into()), (2, "c".into())])
            .unwrap();
        let mut seen = Vec::new();
        s.scan("T", &mut |r| seen.push(r)).unwrap();
        assert_eq!(
            seen,
            vec![(2, "b".into()), (1, "a".into()), (2, "c".into())]
        );
    }

    #[test]
    fn lookup_matches_with_and_without_index() {
        let mut s = store();
        s.insert("T", vec![(2, "b".into()), (1, "a".into()), (2, "c".into())])
            .unwrap();
        let key = 2u64.to_be_bytes();
        let mut unindexed = Vec::new();
        let n0 = s.lookup("T", &key, &mut |r| unindexed.push(r)).unwrap();
        s.ensure_index("T").unwrap();
        assert!(s.has_index("T"));
        let mut indexed = Vec::new();
        let n1 = s.lookup("T", &key, &mut |r| indexed.push(r)).unwrap();
        assert_eq!(unindexed, indexed);
        assert_eq!(n0, n1);
        assert_eq!(n0, 2);
    }

    #[test]
    fn rollback_restores_rows_and_dropped_tables() {
        let mut s = store();
        s.insert("T", vec![(1, "keep".into())]).unwrap();
        let digest = s.state_digest();
        s.begin().unwrap();
        s.insert("T", vec![(2, "gone".into())]).unwrap();
        s.drop_table("T").unwrap();
        s.create_table("U", b"").unwrap();
        s.rollback().unwrap();
        assert_eq!(s.state_digest(), digest);
        assert_eq!(s.table_names(), vec!["T".to_string()]);
    }

    #[test]
    fn commit_keeps_changes() {
        let mut s = store();
        s.begin().unwrap();
        s.insert("T", vec![(1, "kept".into())]).unwrap();
        s.commit().unwrap();
        assert_eq!(s.row_count("T").unwrap(), 1);
        assert!(!s.in_txn());
        assert!(matches!(s.commit(), Err(StoreError::NoTransaction)));
    }

    #[test]
    fn bytes_metering_tracks_rows() {
        let mut s = store();
        assert_eq!(s.bytes(), 0);
        s.insert("T", vec![(1, "ab".into())]).unwrap();
        assert_eq!(s.bytes(), 24 + 8 + 16 + 2);
        s.rewrite("T", Vec::new()).unwrap();
        assert_eq!(s.bytes(), 0);
    }
}
