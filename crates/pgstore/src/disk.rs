//! A simulated durable medium with crash semantics and fault hooks.
//!
//! A [`VDisk`] is the storage analogue of the workspace's `SimNet`: an
//! in-process stand-in that preserves the *semantics* that matter — the
//! gap between written and durable. Every write lands in a volatile cache
//! (what the running process reads back); only [`VDisk::fsync`] moves it
//! to the durable image; [`VDisk::crash`] discards the cache and leaves
//! exactly the durable bytes, which is what a respawned instance recovers
//! from. Handles are cheap clones sharing state, so a [`VDisk`] passed to
//! a Supervisor restart factory survives its container.
//!
//! The three storage fault families of the chaos suite enter through the
//! [`DiskFaults`] hook, drawn deterministically per `(disk, file,
//! operation sequence)`:
//!
//! * **Torn page** — an fsynced write persists only its leading half; the
//!   cache still shows the full write, so the damage is visible only
//!   after a crash (caught by the page checksum).
//! * **Lost fsync** — the fsync reports success but hardens nothing; a
//!   subsequent crash drops the writes it claimed to persist.
//! * **Truncated WAL tail** — the crash itself tears the last fsynced
//!   append mid-record, leaving its length prefix and first payload byte
//!   (the record-kind tag) — the corner the two recovery policies
//!   disagree on.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Deterministic storage-fault oracle, consulted once per operation with a
/// per-`(disk, file)` sequence number. The default implementation injects
/// nothing; `rddr-pgsim` adapts the seeded `rddr-net` fault plan to this.
pub trait DiskFaults: Send + Sync {
    /// Whether the `seq`-th page write to `file` is torn at fsync time.
    fn torn_page(&self, disk: &str, file: &str, seq: u64) -> bool {
        let _ = (disk, file, seq);
        false
    }

    /// Whether the `seq`-th fsync of `file` silently hardens nothing.
    fn lost_fsync(&self, disk: &str, file: &str, seq: u64) -> bool {
        let _ = (disk, file, seq);
        false
    }

    /// Whether the `seq`-th crash of the disk tears `file`'s last durable
    /// append mid-record.
    fn truncate_tail(&self, disk: &str, file: &str, seq: u64) -> bool {
        let _ = (disk, file, seq);
        false
    }
}

/// A [`DiskFaults`] that never injects anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl DiskFaults for NoFaults {}

/// One pending (written but not fsynced) extent.
#[derive(Debug, Clone)]
struct PendingWrite {
    off: usize,
    len: usize,
    torn: bool,
    is_append: bool,
}

#[derive(Debug, Default)]
struct FileState {
    durable: Vec<u8>,
    cache: Vec<u8>,
    pending: Vec<PendingWrite>,
    /// Offset and length of the last *durable* append — the record the
    /// truncated-tail fault tears at crash time.
    last_append: Option<(usize, usize)>,
    write_seq: u64,
    fsync_seq: u64,
}

#[derive(Default)]
struct DiskState {
    files: BTreeMap<String, FileState>,
    crash_seq: u64,
    crashes: u64,
    fsyncs: u64,
    lost_fsyncs: u64,
    torn_writes: u64,
    truncated_tails: u64,
}

/// Counter snapshot of a disk's fault history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Crashes simulated.
    pub crashes: u64,
    /// Fsyncs requested (including lost ones).
    pub fsyncs: u64,
    /// Fsyncs that silently hardened nothing.
    pub lost_fsyncs: u64,
    /// Writes persisted torn.
    pub torn_writes: u64,
    /// WAL tails truncated at crash.
    pub truncated_tails: u64,
}

/// How many bytes of a torn tail survive: the 12-byte record header plus
/// the first payload byte (the kind tag) — a tear at the first sector
/// boundary that leaves the record's intent readable but unverifiable.
pub const TORN_TAIL_KEEP: usize = 13;

/// A simulated disk. Clones share state.
#[derive(Clone)]
pub struct VDisk {
    name: String,
    faults: Arc<dyn DiskFaults>,
    state: Arc<Mutex<DiskState>>,
}

impl std::fmt::Debug for VDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VDisk")
            .field("name", &self.name)
            .field("files", &self.state.lock().files.len())
            .finish()
    }
}

impl VDisk {
    /// A fault-free disk named `name` (the fault-plan target key).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_faults(name, Arc::new(NoFaults))
    }

    /// A disk whose operations consult `faults`.
    #[must_use]
    pub fn with_faults(name: impl Into<String>, faults: Arc<dyn DiskFaults>) -> Self {
        Self {
            name: name.into(),
            faults,
            state: Arc::new(Mutex::new(DiskState::default())),
        }
    }

    /// The disk's name (fault-plan target key).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current length of `file` as the running process sees it.
    #[must_use]
    pub fn len(&self, file: &str) -> u64 {
        self.state
            .lock()
            .files
            .get(file)
            .map_or(0, |f| f.cache.len() as u64)
    }

    /// Whether the disk holds no files at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.state.lock().files.is_empty()
    }

    /// Reads up to `len` bytes of `file` at `off` from the cache view
    /// (shorter at end-of-file; empty for a missing file).
    #[must_use]
    pub fn read(&self, file: &str, off: u64, len: usize) -> Vec<u8> {
        let state = self.state.lock();
        let Some(f) = state.files.get(file) else {
            return Vec::new();
        };
        let start = (off as usize).min(f.cache.len());
        let end = start.saturating_add(len).min(f.cache.len());
        f.cache
            .get(start..end)
            .map_or_else(Vec::new, <[u8]>::to_vec)
    }

    /// Writes `bytes` to `file` at `off`, extending it if needed. The
    /// write is cached, not durable, until [`VDisk::fsync`].
    pub fn write_at(&self, file: &str, off: u64, bytes: &[u8]) {
        self.write_inner(file, off as usize, bytes, false);
    }

    /// Appends `bytes` to `file`, returning the offset written at.
    pub fn append(&self, file: &str, bytes: &[u8]) -> u64 {
        let off = {
            let mut state = self.state.lock();
            state.files.entry(file.to_string()).or_default().cache.len()
        };
        self.write_inner(file, off, bytes, true);
        off as u64
    }

    fn write_inner(&self, file: &str, off: usize, bytes: &[u8], is_append: bool) {
        // The fault adjudicator may consult the shared fault plan (its own
        // lock); take the sequence number first so the state lock is fully
        // released before calling out.
        let seq = {
            let mut state = self.state.lock();
            let f = state.files.entry(file.to_string()).or_default();
            let seq = f.write_seq;
            f.write_seq += 1;
            seq
        };
        let torn = !is_append && self.faults.torn_page(&self.name, file, seq);
        let mut state = self.state.lock();
        if torn {
            state.torn_writes += 1;
        }
        let Some(f) = state.files.get_mut(file) else {
            return;
        };
        let end = off + bytes.len();
        if f.cache.len() < end {
            f.cache.resize(end, 0);
        }
        if let Some(dst) = f.cache.get_mut(off..end) {
            dst.copy_from_slice(bytes);
        }
        f.pending.push(PendingWrite {
            off,
            len: bytes.len(),
            torn,
            is_append,
        });
    }

    /// Hardens `file`'s pending writes into the durable image — unless the
    /// lost-fsync fault fires, in which case it reports success while
    /// hardening nothing (the writes stay pending and die with the next
    /// crash). Torn writes persist only their leading half.
    pub fn fsync(&self, file: &str) {
        let lost = {
            let mut state = self.state.lock();
            state.fsyncs += 1;
            let f = state.files.entry(file.to_string()).or_default();
            let seq = f.fsync_seq;
            f.fsync_seq += 1;
            drop(state);
            // `state` was dropped above: the fault-plan lock is consulted
            // unnested. rddr-analyze: allow(lock-order)
            self.faults.lost_fsync(&self.name, file, seq)
        };
        let mut state = self.state.lock();
        if lost {
            state.lost_fsyncs += 1;
            return;
        }
        let Some(f) = state.files.get_mut(file) else {
            return;
        };
        for w in std::mem::take(&mut f.pending) {
            let end = w.off + w.len;
            if f.durable.len() < end {
                f.durable.resize(end, 0);
            }
            let keep = if w.torn { w.len / 2 } else { w.len };
            let src: Vec<u8> = f
                .cache
                .get(w.off..w.off + keep)
                .map_or_else(Vec::new, <[u8]>::to_vec);
            if let Some(dst) = f.durable.get_mut(w.off..w.off + src.len()) {
                dst.copy_from_slice(&src);
            }
            if w.torn {
                if let Some(rest) = f.durable.get_mut(w.off + keep..end) {
                    rest.fill(0);
                }
            }
            if w.is_append {
                f.last_append = Some((w.off, w.len));
            }
        }
    }

    /// Simulates a crash: every file's pending writes are discarded and
    /// the cache view is reset to the durable image. Files for which the
    /// truncated-tail fault fires lose the tail of their last durable
    /// append past [`TORN_TAIL_KEEP`] bytes.
    pub fn crash(&self) {
        let (seq, names) = {
            let mut state = self.state.lock();
            let seq = state.crash_seq;
            state.crash_seq += 1;
            state.crashes += 1;
            (seq, state.files.keys().cloned().collect::<Vec<_>>())
        };
        let draws: Vec<(String, bool)> = names
            .into_iter()
            .map(|n| {
                let hit = self.faults.truncate_tail(&self.name, &n, seq);
                (n, hit)
            })
            .collect();
        let mut state = self.state.lock();
        for (name, truncate) in draws {
            let mut truncated = false;
            if let Some(f) = state.files.get_mut(&name) {
                f.pending.clear();
                if truncate {
                    if let Some((off, len)) = f.last_append {
                        let keep = off + TORN_TAIL_KEEP.min(len);
                        if keep < f.durable.len() {
                            f.durable.truncate(keep);
                            f.last_append = None;
                            truncated = true;
                        }
                    }
                }
                f.cache = f.durable.clone();
            }
            if truncated {
                state.truncated_tails += 1;
            }
        }
    }

    /// Truncates `file` to `len` bytes in both the cache and durable
    /// images (recovery uses this to clear a torn WAL tail before
    /// appending fresh records).
    pub fn truncate(&self, file: &str, len: u64) {
        let mut state = self.state.lock();
        if let Some(f) = state.files.get_mut(file) {
            f.cache.truncate(len as usize);
            f.durable.truncate(len as usize);
            f.pending.retain(|w| w.off + w.len <= len as usize);
            if f.last_append.is_some_and(|(off, l)| off + l > len as usize) {
                f.last_append = None;
            }
        }
    }

    /// Removes `file` entirely (recovery rebuilds the heap from scratch).
    pub fn remove(&self, file: &str) {
        self.state.lock().files.remove(file);
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        let state = self.state.lock();
        DiskStats {
            crashes: state.crashes,
            fsyncs: state.fsyncs,
            lost_fsyncs: state.lost_fsyncs,
            torn_writes: state.torn_writes,
            truncated_tails: state.truncated_tails,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_visible_but_not_durable_until_fsync() {
        let disk = VDisk::new("d0");
        disk.write_at("f", 0, b"hello");
        assert_eq!(disk.read("f", 0, 5), b"hello");
        disk.crash();
        assert_eq!(disk.read("f", 0, 5), b"");
        disk.write_at("f", 0, b"hello");
        disk.fsync("f");
        disk.crash();
        assert_eq!(disk.read("f", 0, 5), b"hello");
    }

    #[test]
    fn append_returns_sequential_offsets() {
        let disk = VDisk::new("d0");
        assert_eq!(disk.append("log", b"abc"), 0);
        assert_eq!(disk.append("log", b"defg"), 3);
        assert_eq!(disk.len("log"), 7);
        assert_eq!(disk.read("log", 3, 4), b"defg");
    }

    struct OneLostFsync;
    impl DiskFaults for OneLostFsync {
        fn lost_fsync(&self, _d: &str, _f: &str, seq: u64) -> bool {
            seq == 0
        }
    }

    #[test]
    fn lost_fsync_reports_success_but_crash_discards() {
        let disk = VDisk::with_faults("d0", Arc::new(OneLostFsync));
        disk.append("log", b"txn");
        disk.fsync("log"); // lost
        assert_eq!(disk.read("log", 0, 3), b"txn"); // cache still shows it
        disk.crash();
        assert_eq!(disk.len("log"), 0);
        assert_eq!(disk.stats().lost_fsyncs, 1);
        // The next fsync works.
        disk.append("log", b"txn");
        disk.fsync("log");
        disk.crash();
        assert_eq!(disk.len("log"), 3);
    }

    struct TornFirstWrite;
    impl DiskFaults for TornFirstWrite {
        fn torn_page(&self, _d: &str, _f: &str, seq: u64) -> bool {
            seq == 0
        }
    }

    #[test]
    fn torn_write_halves_survive_crash_only() {
        let disk = VDisk::with_faults("d0", Arc::new(TornFirstWrite));
        disk.write_at("heap", 0, &[0xAA; 8]);
        disk.fsync("heap");
        // Cache view is whole...
        assert_eq!(disk.read("heap", 0, 8), vec![0xAA; 8]);
        disk.crash();
        // ...durable view is torn: first half kept, rest zeroed.
        assert_eq!(
            disk.read("heap", 0, 8),
            vec![0xAA, 0xAA, 0xAA, 0xAA, 0, 0, 0, 0]
        );
        assert_eq!(disk.stats().torn_writes, 1);
    }

    struct TruncateFirstCrash;
    impl DiskFaults for TruncateFirstCrash {
        fn truncate_tail(&self, _d: &str, file: &str, seq: u64) -> bool {
            file == "wal" && seq == 0
        }
    }

    #[test]
    fn crash_truncates_last_durable_append_mid_record() {
        let disk = VDisk::with_faults("d0", Arc::new(TruncateFirstCrash));
        let record = vec![7u8; 40];
        disk.append("wal", &record);
        disk.fsync("wal");
        disk.append("wal", &record); // pending, dies with the crash anyway
        disk.crash();
        assert_eq!(disk.len("wal"), TORN_TAIL_KEEP as u64);
        assert_eq!(disk.stats().truncated_tails, 1);
        // Second crash: no fault, nothing further lost.
        disk.crash();
        assert_eq!(disk.len("wal"), TORN_TAIL_KEEP as u64);
    }

    #[test]
    fn truncate_clears_tail_everywhere() {
        let disk = VDisk::new("d0");
        disk.append("wal", b"0123456789");
        disk.fsync("wal");
        disk.truncate("wal", 4);
        assert_eq!(disk.read("wal", 0, 10), b"0123");
        disk.crash();
        assert_eq!(disk.read("wal", 0, 10), b"0123");
    }

    #[test]
    fn clones_share_state() {
        let disk = VDisk::new("d0");
        let other = disk.clone();
        disk.append("f", b"x");
        assert_eq!(other.len("f"), 1);
    }
}
