//! The paged storage engine: slotted heap pages behind a buffer pool, a
//! write-ahead log for durability, and a B+Tree primary-key index.
//!
//! Each table owns a chain of heap pages (`first → … → last`, linked via
//! the page header's `next` field). INSERT appends tuples to the chain
//! tail; UPDATE/DELETE rewrite the whole chain (old pages return to a free
//! list), mirroring the executor's rewrite-the-vector semantics so the two
//! engines stay wire-identical.
//!
//! Durability is WAL-first: every mutation appends a logical record, and
//! commit appends a `Commit` record and fsyncs — the only fsync on the
//! write path. Heap pages are flushed lazily (eviction, commit) and the
//! heap file is *rebuilt from the WAL* on open, so a torn heap page can
//! never survive recovery; the heap exists to bound memory, not to be the
//! source of truth. [`PagedStore::open`] replays the log under the
//! instance's [`RecoveryPolicy`] and reports [`RecoveryStats`], which the
//! chaos suite asserts on.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::btree::{BTree, TupleId};
use crate::disk::VDisk;
use crate::page::{Page, PAGE_SIZE};
use crate::pool::{BufferPool, PoolStats, DEFAULT_FRAMES};
use crate::wal::{RecoveryPolicy, TailState, Wal, WalRecord};
use crate::{fnv1a_extend, Result, Storage, StoreError, TupleCodec};

/// Heap file name on the instance's [`VDisk`].
pub const HEAP_FILE: &str = "heap";
/// WAL file name on the instance's [`VDisk`].
pub const WAL_FILE: &str = "wal";

/// What [`PagedStore::open`] found and did during WAL replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Transactions rolled forward.
    pub committed_txns: u64,
    /// Transactions discarded for lack of a verifiable commit.
    pub discarded_txns: u64,
    /// Whether the log ended in a torn record.
    pub torn_tail: bool,
    /// Whether the policy honoured a torn trailing commit record
    /// (ReplayForward's divergence corner).
    pub honoured_torn_commit: bool,
    /// Bytes of torn tail truncated to restore clean framing.
    pub truncated_bytes: u64,
}

#[derive(Debug)]
struct PagedTable {
    meta: Vec<u8>,
    /// First page of the heap chain (0 = empty table).
    first: u64,
    /// Last page of the chain (0 = empty table).
    last: u64,
    /// Pages in chain order (so scans never chase `next` through the pool).
    pages: Vec<u64>,
    rows: u64,
    heap_bytes: u64,
    index: Option<BTree>,
}

impl PagedTable {
    fn new(meta: Vec<u8>) -> Self {
        Self {
            meta,
            first: 0,
            last: 0,
            pages: Vec::new(),
            rows: 0,
            heap_bytes: 0,
            index: None,
        }
    }
}

/// Undo record for rollback: the table's full logical content before the
/// transaction first touched it (`None` = did not exist).
type Undo<R> = BTreeMap<String, Option<(Vec<u8>, Vec<R>)>>;

/// The paged engine. Generic over the host row type `R`; the codec maps
/// rows to heap tuples and index keys.
pub struct PagedStore<R, C> {
    codec: C,
    disk: VDisk,
    wal: Wal,
    policy: RecoveryPolicy,
    pool: RefCell<BufferPool>,
    tables: BTreeMap<String, PagedTable>,
    /// Recycled page numbers, LIFO (deterministic reuse order).
    free_pages: Vec<u64>,
    next_page: u64,
    next_txn: u64,
    /// Open explicit transaction, if any.
    txn: Option<OpenTxn<R>>,
    recovery: RecoveryStats,
}

struct OpenTxn<R> {
    id: u64,
    undo: Undo<R>,
}

impl<R: Clone, C: TupleCodec<R>> PagedStore<R, C> {
    /// Opens the store on `disk`, replaying any existing WAL under
    /// `policy`. The heap file is rebuilt from the log, so this is both
    /// cold start and crash recovery.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on interior WAL corruption (torn tails are
    /// handled per policy, not errors).
    pub fn open(disk: VDisk, codec: C, policy: RecoveryPolicy) -> Result<Self> {
        Self::open_with_frames(disk, codec, policy, DEFAULT_FRAMES)
    }

    /// [`PagedStore::open`] with an explicit buffer-pool capacity.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on interior WAL corruption.
    pub fn open_with_frames(
        disk: VDisk,
        codec: C,
        policy: RecoveryPolicy,
        frames: usize,
    ) -> Result<Self> {
        let wal = Wal::new(disk.clone(), WAL_FILE);
        let replay = wal.replay(policy)?;
        // The heap is rebuilt from the log: discard whatever the crash left.
        disk.remove(HEAP_FILE);
        let mut store = Self {
            codec,
            disk: disk.clone(),
            wal,
            policy,
            pool: RefCell::new(BufferPool::new(HEAP_FILE, frames)),
            tables: BTreeMap::new(),
            free_pages: Vec::new(),
            next_page: 1,
            next_txn: replay.next_txn,
            txn: None,
            recovery: RecoveryStats {
                committed_txns: replay.committed,
                discarded_txns: replay.discarded,
                torn_tail: !matches!(replay.tail, TailState::Clean),
                honoured_torn_commit: replay.honoured_torn_commit,
                truncated_bytes: store_len_delta(&disk, replay.valid_end),
            },
        };
        let honoured = replay
            .honoured_torn_commit
            .then_some(replay.tail_txn)
            .flatten();
        if store.recovery.torn_tail {
            // Clear the torn tail so future appends restore clean framing.
            store.wal.truncate(replay.valid_end);
            if let Some(txn) = honoured {
                // ReplayForward honoured the torn commit: re-log it cleanly
                // so the *next* recovery reaches the same state.
                store.wal.append(&WalRecord::Commit { txn });
            }
            store.wal.sync();
        }
        for op in replay.ops {
            store.apply(op)?;
        }
        store.flush_heap();
        Ok(store)
    }

    /// Stats from the replay that [`PagedStore::open`] performed.
    #[must_use]
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Buffer-pool statistics.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.borrow().stats()
    }

    /// The recovery policy this instance runs.
    #[must_use]
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// The underlying disk (for tests and fault orchestration).
    #[must_use]
    pub fn disk(&self) -> &VDisk {
        &self.disk
    }

    /// Applies a replayed logical record to the heap without re-logging.
    fn apply(&mut self, op: WalRecord) -> Result<()> {
        match op {
            WalRecord::CreateTable { table, meta } => {
                self.tables.insert(table, PagedTable::new(meta));
                Ok(())
            }
            WalRecord::DropTable { table } => {
                self.release_table(&table);
                Ok(())
            }
            WalRecord::Insert { table, rows } => {
                let decoded = rows
                    .iter()
                    .map(|b| self.codec.decode(b))
                    .collect::<Result<Vec<R>>>()?;
                self.heap_insert(&table, decoded)
            }
            WalRecord::Rewrite { table, rows } => {
                let decoded = rows
                    .iter()
                    .map(|b| self.codec.decode(b))
                    .collect::<Result<Vec<R>>>()?;
                self.heap_rewrite(&table, decoded)
            }
            WalRecord::Begin { .. } | WalRecord::Commit { .. } => Ok(()),
        }
    }

    /// Allocates a page number (recycled first) and installs a fresh page.
    fn alloc_page(&mut self) -> Result<u64> {
        let no = match self.free_pages.pop() {
            Some(no) => no,
            None => {
                let no = self.next_page;
                self.next_page += 1;
                no
            }
        };
        self.pool.borrow_mut().create_page(&self.disk, no)?;
        Ok(no)
    }

    /// Returns a table's pages to the free list and forgets it.
    fn release_table(&mut self, table: &str) {
        if let Some(t) = self.tables.remove(table) {
            // LIFO, most recently allocated first: reuse order stays
            // deterministic across engines and runs.
            for &p in t.pages.iter().rev() {
                self.free_pages.push(p);
            }
        }
    }

    /// Appends rows to the table's heap chain, maintaining the index.
    fn heap_insert(&mut self, table: &str, rows: Vec<R>) -> Result<()> {
        if !self.tables.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.into()));
        }
        let mut buf = Vec::new();
        for row in rows {
            buf.clear();
            self.codec.encode(&row, &mut buf);
            if buf.len() > Page::max_tuple() {
                return Err(StoreError::TupleTooLarge {
                    bytes: buf.len(),
                    max: Page::max_tuple(),
                });
            }
            let heap = self.codec.heap_bytes(&row);
            let key = self.codec.key(&row);
            // Try the chain tail; grow the chain when full.
            let last = self.tables.get(table).map_or(0, |t| t.last);
            let mut target = last;
            let mut slot = None;
            if target != 0 {
                slot = self
                    .pool
                    .borrow_mut()
                    .with_page_mut(&self.disk, target, |p| p.insert(&buf))?;
            }
            if slot.is_none() {
                let fresh = self.alloc_page()?;
                if last != 0 {
                    self.pool
                        .borrow_mut()
                        .with_page_mut(&self.disk, last, |p| p.set_next(fresh))?;
                }
                slot = self
                    .pool
                    .borrow_mut()
                    .with_page_mut(&self.disk, fresh, |p| p.insert(&buf))?;
                if let Some(t) = self.tables.get_mut(table) {
                    if t.first == 0 {
                        t.first = fresh;
                    }
                    t.last = fresh;
                    t.pages.push(fresh);
                }
                target = fresh;
            }
            let Some(slot) = slot else {
                return Err(StoreError::Corrupt(format!(
                    "tuple of {} bytes rejected by a fresh page",
                    buf.len()
                )));
            };
            if let Some(t) = self.tables.get_mut(table) {
                t.rows += 1;
                t.heap_bytes += heap;
                if let Some(index) = &mut t.index {
                    index.insert(&key, TupleId { page: target, slot });
                }
            }
        }
        Ok(())
    }

    /// Replaces the table's chain wholesale; the index is dropped.
    fn heap_rewrite(&mut self, table: &str, rows: Vec<R>) -> Result<()> {
        let meta = self
            .tables
            .get(table)
            .map(|t| t.meta.clone())
            .ok_or_else(|| StoreError::NoSuchTable(table.into()))?;
        self.release_table(table);
        self.tables.insert(table.into(), PagedTable::new(meta));
        self.heap_insert(table, rows)
    }

    /// Reads the table's full content in insertion order.
    fn read_rows(&self, table: &str) -> Result<Vec<R>> {
        let mut rows = Vec::new();
        self.scan_visit(table, &mut |r| rows.push(r))?;
        Ok(rows)
    }

    fn scan_visit(&self, table: &str, visit: &mut dyn FnMut(R)) -> Result<()> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.into()))?;
        let mut pool = self.pool.borrow_mut();
        for &page_no in &t.pages {
            let tuples = pool.with_page(&self.disk, page_no, |p| {
                let mut out = Vec::with_capacity(usize::from(p.slot_count()));
                for slot in 0..p.slot_count() {
                    out.push(p.tuple(slot).map(<[u8]>::to_vec));
                }
                out
            })?;
            for tuple in tuples {
                visit(self.codec.decode(&tuple?)?);
            }
        }
        Ok(())
    }

    /// Records `table`'s pre-transaction content on first touch.
    fn snapshot(&mut self, table: &str) -> Result<()> {
        let Some(txn) = &self.txn else {
            return Ok(());
        };
        if txn.undo.contains_key(table) {
            return Ok(());
        }
        let prior = match self.tables.get(table) {
            Some(t) => Some((t.meta.clone(), self.read_rows(table)?)),
            None => None,
        };
        if let Some(txn) = &mut self.txn {
            txn.undo.insert(table.to_string(), prior);
        }
        Ok(())
    }

    /// Flushes dirty heap pages (unsynced; commit syncs only the WAL — the
    /// heap is rebuilt from the log after a crash).
    fn flush_heap(&self) {
        self.pool.borrow_mut().flush_all(&self.disk);
    }
}

fn store_len_delta(disk: &VDisk, valid_end: u64) -> u64 {
    disk.len(WAL_FILE).saturating_sub(valid_end)
}

impl<R: Clone + Send, C: TupleCodec<R> + Send> Storage<R> for PagedStore<R, C> {
    fn engine(&self) -> &'static str {
        "paged"
    }

    fn create_table(&mut self, table: &str, meta: &[u8]) -> Result<()> {
        if self.tables.contains_key(table) {
            return Err(StoreError::TableExists(table.into()));
        }
        self.snapshot(table)?;
        self.wal.append(&WalRecord::CreateTable {
            table: table.into(),
            meta: meta.to_vec(),
        });
        self.tables
            .insert(table.into(), PagedTable::new(meta.to_vec()));
        Ok(())
    }

    fn drop_table(&mut self, table: &str) -> Result<()> {
        if !self.tables.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.into()));
        }
        self.snapshot(table)?;
        self.wal.append(&WalRecord::DropTable {
            table: table.into(),
        });
        self.release_table(table);
        Ok(())
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    fn table_meta(&self, table: &str) -> Option<Vec<u8>> {
        self.tables.get(table).map(|t| t.meta.clone())
    }

    fn row_count(&self, table: &str) -> Result<u64> {
        self.tables
            .get(table)
            .map(|t| t.rows)
            .ok_or_else(|| StoreError::NoSuchTable(table.into()))
    }

    fn scan(&self, table: &str, visit: &mut dyn FnMut(R)) -> Result<()> {
        self.scan_visit(table, visit)
    }

    fn ensure_index(&mut self, table: &str) -> Result<()> {
        if self
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.into()))?
            .index
            .is_some()
        {
            return Ok(());
        }
        // Build from a heap walk: key -> TupleId per tuple, chain order.
        let mut index = BTree::new();
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.into()))?;
        let pages = t.pages.clone();
        {
            let mut pool = self.pool.borrow_mut();
            for &page_no in &pages {
                let tuples = pool.with_page(&self.disk, page_no, |p| {
                    let mut out = Vec::with_capacity(usize::from(p.slot_count()));
                    for slot in 0..p.slot_count() {
                        out.push((slot, p.tuple(slot).map(<[u8]>::to_vec)));
                    }
                    out
                })?;
                for (slot, tuple) in tuples {
                    let row = self.codec.decode(&tuple?)?;
                    index.insert(
                        &self.codec.key(&row),
                        TupleId {
                            page: page_no,
                            slot,
                        },
                    );
                }
            }
        }
        if let Some(t) = self.tables.get_mut(table) {
            t.index = Some(index);
        }
        Ok(())
    }

    fn has_index(&self, table: &str) -> bool {
        self.tables.get(table).is_some_and(|t| t.index.is_some())
    }

    fn lookup(&self, table: &str, key: &[u8], visit: &mut dyn FnMut(R)) -> Result<u64> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.into()))?;
        if let Some(index) = &t.index {
            let candidates: Vec<TupleId> = index.get(key).to_vec();
            let mut pool = self.pool.borrow_mut();
            for tid in &candidates {
                let tuple = pool.with_page(&self.disk, tid.page, |p| {
                    p.tuple(tid.slot).map(<[u8]>::to_vec)
                })??;
                visit(self.codec.decode(&tuple)?);
            }
            return Ok(candidates.len() as u64);
        }
        // No index: filtered heap scan — identical candidate set.
        let mut candidates = 0u64;
        self.scan_visit(table, &mut |row| {
            if self.codec.key(&row) == key {
                candidates += 1;
                visit(row);
            }
        })?;
        Ok(candidates)
    }

    fn insert(&mut self, table: &str, rows: Vec<R>) -> Result<()> {
        if !self.tables.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.into()));
        }
        self.snapshot(table)?;
        let mut encoded = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut buf = Vec::new();
            self.codec.encode(row, &mut buf);
            if buf.len() > Page::max_tuple() {
                return Err(StoreError::TupleTooLarge {
                    bytes: buf.len(),
                    max: Page::max_tuple(),
                });
            }
            encoded.push(buf);
        }
        self.wal.append(&WalRecord::Insert {
            table: table.into(),
            rows: encoded,
        });
        self.heap_insert(table, rows)
    }

    fn rewrite(&mut self, table: &str, rows: Vec<R>) -> Result<()> {
        if !self.tables.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.into()));
        }
        self.snapshot(table)?;
        let mut encoded = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut buf = Vec::new();
            self.codec.encode(row, &mut buf);
            if buf.len() > Page::max_tuple() {
                return Err(StoreError::TupleTooLarge {
                    bytes: buf.len(),
                    max: Page::max_tuple(),
                });
            }
            encoded.push(buf);
        }
        self.wal.append(&WalRecord::Rewrite {
            table: table.into(),
            rows: encoded,
        });
        self.heap_rewrite(table, rows)
    }

    fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(StoreError::TransactionOpen);
        }
        let id = self.next_txn;
        self.next_txn += 1;
        self.wal.append(&WalRecord::Begin { txn: id });
        self.txn = Some(OpenTxn {
            id,
            undo: BTreeMap::new(),
        });
        Ok(())
    }

    fn commit(&mut self) -> Result<()> {
        let Some(txn) = self.txn.take() else {
            return Err(StoreError::NoTransaction);
        };
        self.wal.append(&WalRecord::Commit { txn: txn.id });
        self.wal.sync();
        self.flush_heap();
        Ok(())
    }

    fn rollback(&mut self) -> Result<()> {
        let Some(txn) = self.txn.take() else {
            return Err(StoreError::NoTransaction);
        };
        // Undo the heap in memory (no WAL records: the transaction's
        // records were never committed, so recovery already discards them).
        for (table, prior) in txn.undo {
            self.release_table(&table);
            if let Some((meta, rows)) = prior {
                self.tables.insert(table.clone(), PagedTable::new(meta));
                self.heap_insert(&table, rows)?;
            }
        }
        // The log still holds the dead transaction's unsynced records; a
        // clean truncate keeps framing tidy for the next append. Records
        // may already be durable (mid-txn eviction never syncs, but an
        // earlier commit's fsync can harden them); recovery handles both,
        // so only trim the unhardened cache tail.
        Ok(())
    }

    fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    fn bytes(&self) -> u64 {
        let live: u64 = self.tables.values().map(|t| t.pages.len() as u64).sum();
        live * PAGE_SIZE as u64
    }

    fn state_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut buf = Vec::new();
        for (name, t) in &self.tables {
            h = fnv1a_extend(h, name.as_bytes());
            h = fnv1a_extend(h, &t.meta);
            let mut rows = Vec::new();
            if self.scan_visit(name, &mut |r| rows.push(r)).is_err() {
                // Digest of unreadable state: poison deterministically.
                h = fnv1a_extend(h, b"<corrupt>");
                continue;
            }
            for row in &rows {
                buf.clear();
                self.codec.encode(row, &mut buf);
                h = fnv1a_extend(h, &buf);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskFaults;
    use crate::mem::tests::PairCodec;
    use crate::mem::MemStore;
    use std::sync::Arc;

    type Row = (u64, String);

    fn open(disk: &VDisk, policy: RecoveryPolicy) -> PagedStore<Row, PairCodec> {
        PagedStore::open(disk.clone(), PairCodec, policy).unwrap()
    }

    fn rows(n: u64) -> Vec<Row> {
        (0..n).map(|i| (i % 7, format!("row-{i:04}"))).collect()
    }

    #[test]
    fn paged_matches_memory_digest() {
        let disk = VDisk::new("d");
        let mut paged = open(&disk, RecoveryPolicy::ReplayForward);
        let mut mem = MemStore::new(PairCodec);
        for s in [&mut paged as &mut dyn Storage<Row>, &mut mem] {
            s.create_table("T", b"meta").unwrap();
            s.begin().unwrap();
            s.insert("T", rows(300)).unwrap();
            s.commit().unwrap();
            s.begin().unwrap();
            s.rewrite("T", rows(150)).unwrap();
            s.insert("T", vec![(99, "tail".into())]).unwrap();
            s.commit().unwrap();
        }
        assert_eq!(paged.state_digest(), mem.state_digest());
        assert_eq!(paged.row_count("T").unwrap(), mem.row_count("T").unwrap());
        // Scan order identical.
        let mut a = Vec::new();
        let mut b = Vec::new();
        paged.scan("T", &mut |r| a.push(r)).unwrap();
        mem.scan("T", &mut |r| b.push(r)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lookup_candidates_match_memory_engine() {
        let disk = VDisk::new("d");
        let mut paged = open(&disk, RecoveryPolicy::ReplayForward);
        let mut mem = MemStore::new(PairCodec);
        for s in [&mut paged as &mut dyn Storage<Row>, &mut mem] {
            s.create_table("T", b"").unwrap();
            s.begin().unwrap();
            s.insert("T", rows(200)).unwrap();
            s.commit().unwrap();
            s.ensure_index("T").unwrap();
        }
        for key in 0u64..8 {
            let k = key.to_be_bytes();
            let mut a = Vec::new();
            let mut b = Vec::new();
            let na = paged.lookup("T", &k, &mut |r| a.push(r)).unwrap();
            let nb = mem.lookup("T", &k, &mut |r| b.push(r)).unwrap();
            assert_eq!(a, b, "candidate rows for key {key}");
            assert_eq!(na, nb, "candidate count for key {key}");
        }
    }

    #[test]
    fn restart_replays_committed_state() {
        let disk = VDisk::new("d");
        let digest = {
            let mut s = open(&disk, RecoveryPolicy::ReplayForward);
            s.create_table("T", b"meta").unwrap();
            s.begin().unwrap();
            s.insert("T", rows(500)).unwrap();
            s.commit().unwrap();
            s.state_digest()
        };
        disk.crash();
        let s = open(&disk, RecoveryPolicy::ReplayForward);
        assert_eq!(s.state_digest(), digest);
        // One explicit txn; the standalone CREATE replays as-is.
        assert_eq!(s.recovery_stats().committed_txns, 1);
        assert_eq!(s.table_meta("T").unwrap(), b"meta");
    }

    #[test]
    fn uncommitted_transaction_dies_with_the_crash() {
        let disk = VDisk::new("d");
        let digest = {
            let mut s = open(&disk, RecoveryPolicy::ReplayForward);
            s.create_table("T", b"").unwrap();
            s.begin().unwrap();
            s.insert("T", rows(10)).unwrap();
            s.commit().unwrap();
            let committed = s.state_digest();
            s.begin().unwrap();
            s.insert("T", vec![(999, "phantom".into())]).unwrap();
            committed
        };
        disk.crash();
        for policy in [RecoveryPolicy::ReplayForward, RecoveryPolicy::ShadowDiscard] {
            let s = open(&disk, policy);
            assert_eq!(s.state_digest(), digest, "{policy:?}");
        }
    }

    #[test]
    fn rollback_restores_pre_transaction_state() {
        let disk = VDisk::new("d");
        let mut s = open(&disk, RecoveryPolicy::ReplayForward);
        s.create_table("T", b"").unwrap();
        s.begin().unwrap();
        s.insert("T", rows(50)).unwrap();
        s.commit().unwrap();
        let digest = s.state_digest();
        s.begin().unwrap();
        s.rewrite("T", rows(3)).unwrap();
        s.drop_table("T").unwrap();
        s.create_table("U", b"").unwrap();
        s.rollback().unwrap();
        assert_eq!(s.state_digest(), digest);
        assert_eq!(s.table_names(), vec!["T".to_string()]);
    }

    struct TruncateFirstCrash;
    impl DiskFaults for TruncateFirstCrash {
        fn truncate_tail(&self, _d: &str, _f: &str, seq: u64) -> bool {
            seq == 0
        }
    }

    /// The divergence recipe: commit a transaction, then crash with the
    /// tail-truncation fault armed so the durable log ends mid-Commit.
    fn torn_commit_disk() -> (VDisk, u64, u64) {
        let disk = VDisk::with_faults("d", Arc::new(TruncateFirstCrash));
        let (with_marker, without_marker) = {
            let mut s = open(&disk, RecoveryPolicy::ReplayForward);
            s.create_table("T", b"").unwrap();
            s.begin().unwrap();
            s.insert("T", rows(10)).unwrap();
            s.commit().unwrap();
            let without = s.state_digest();
            s.begin().unwrap();
            s.insert("T", vec![(42, "marker".into())]).unwrap();
            s.commit().unwrap(); // this Commit record gets torn at crash
            (s.state_digest(), without)
        };
        disk.crash();
        (disk, with_marker, without_marker)
    }

    #[test]
    fn recovery_policies_diverge_on_torn_commit() {
        // Two independent, deterministically-identical disks: recovery
        // repairs the log, so the policies must not share one.
        let (disk_fwd, with_marker, without_marker) = torn_commit_disk();
        let forward = open(&disk_fwd, RecoveryPolicy::ReplayForward);
        assert!(forward.recovery_stats().honoured_torn_commit);
        assert_eq!(forward.state_digest(), with_marker);

        let (disk_shadow, _, _) = torn_commit_disk();
        let shadow = open(&disk_shadow, RecoveryPolicy::ShadowDiscard);
        assert!(!shadow.recovery_stats().honoured_torn_commit);
        assert!(shadow.recovery_stats().torn_tail);
        assert_eq!(shadow.state_digest(), without_marker);
        assert_ne!(with_marker, without_marker);
    }

    #[test]
    fn replay_forward_recovery_is_stable_across_restarts() {
        let (disk, with_marker, _) = torn_commit_disk();
        let first = open(&disk, RecoveryPolicy::ReplayForward);
        assert_eq!(first.state_digest(), with_marker);
        drop(first);
        // Second recovery sees the re-logged clean Commit: same state, no
        // torn tail this time.
        disk.crash();
        let second = open(&disk, RecoveryPolicy::ReplayForward);
        assert_eq!(second.state_digest(), with_marker);
        assert!(!second.recovery_stats().torn_tail);
    }

    #[test]
    fn oversize_tuple_fails_on_paged_only() {
        let disk = VDisk::new("d");
        let mut paged = open(&disk, RecoveryPolicy::ReplayForward);
        let mut mem = MemStore::new(PairCodec);
        let big = vec![(1u64, "x".repeat(Page::max_tuple() + 100))];
        paged.create_table("T", b"").unwrap();
        mem.create_table("T", b"").unwrap();
        assert!(matches!(
            paged.insert("T", big.clone()),
            Err(StoreError::TupleTooLarge { .. })
        ));
        assert!(mem.insert("T", big).is_ok());
    }

    #[test]
    fn buffer_pool_pressure_does_not_change_results() {
        let disk = VDisk::new("d");
        let mut tiny =
            PagedStore::open_with_frames(disk.clone(), PairCodec, RecoveryPolicy::ReplayForward, 2)
                .unwrap();
        tiny.create_table("T", b"").unwrap();
        tiny.begin().unwrap();
        tiny.insert("T", rows(2_000)).unwrap();
        tiny.commit().unwrap();
        let digest = tiny.state_digest();
        assert!(tiny.pool_stats().evictions > 0, "pool actually thrashed");

        let disk2 = VDisk::new("d2");
        let mut roomy =
            PagedStore::open_with_frames(disk2, PairCodec, RecoveryPolicy::ReplayForward, 1_024)
                .unwrap();
        roomy.create_table("T", b"").unwrap();
        roomy.begin().unwrap();
        roomy.insert("T", rows(2_000)).unwrap();
        roomy.commit().unwrap();
        assert_eq!(roomy.state_digest(), digest);
    }

    #[test]
    fn same_seed_replay_is_byte_identical() {
        let run = || {
            let disk = VDisk::new("d");
            let mut s = open(&disk, RecoveryPolicy::ReplayForward);
            s.create_table("T", b"m").unwrap();
            s.begin().unwrap();
            s.insert("T", rows(100)).unwrap();
            s.commit().unwrap();
            disk.crash();
            let s = open(&disk, RecoveryPolicy::ReplayForward);
            (
                s.state_digest(),
                disk.read(WAL_FILE, 0, disk.len(WAL_FILE) as usize),
            )
        };
        let (d1, wal1) = run();
        let (d2, wal2) = run();
        assert_eq!(d1, d2);
        assert_eq!(
            wal1, wal2,
            "WAL images byte-identical across same-seed runs"
        );
    }
}
