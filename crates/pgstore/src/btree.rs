//! An in-memory B+Tree mapping primary-key bytes to heap tuple locations.
//!
//! Nodes live in an arena (`Vec<Node>`) and reference each other by index,
//! sidestepping ownership cycles. Duplicate keys append to the existing
//! key's posting list, preserving insertion order — the executor's
//! point-lookup candidate order must match the in-memory engine's
//! `BTreeMap<String, Vec<usize>>` exactly.
//!
//! The tree is rebuilt from a heap scan after recovery and dropped on
//! table rewrite, mirroring MiniPg's historical lazily-built index.

/// Where a tuple lives in the heap: page number + slot within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleId {
    /// Heap page number.
    pub page: u64,
    /// Slot within the page.
    pub slot: u16,
}

/// Maximum keys per node before it splits.
const ORDER: usize = 32;

#[derive(Debug)]
enum Node {
    Leaf {
        keys: Vec<Vec<u8>>,
        postings: Vec<Vec<TupleId>>,
    },
    Internal {
        /// `keys[i]` is the smallest key reachable via `children[i + 1]`.
        keys: Vec<Vec<u8>>,
        children: Vec<usize>,
    },
}

/// A B+Tree from key bytes to posting lists of [`TupleId`]s.
#[derive(Debug)]
pub struct BTree {
    arena: Vec<Node>,
    root: usize,
    keys: u64,
    entries: u64,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// An empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self {
            arena: vec![Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
            }],
            root: 0,
            keys: 0,
            entries: 0,
        }
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn key_count(&self) -> u64 {
        self.keys
    }

    /// Number of (key, tuple) entries, duplicates included.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entries
    }

    /// Height of the tree (1 = a lone leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut at = self.root;
        while let Some(Node::Internal { children, .. }) = self.arena.get(at) {
            h += 1;
            match children.first() {
                Some(&c) => at = c,
                None => break,
            }
        }
        h
    }

    /// The posting list for `key`, in insertion order (empty if absent).
    #[must_use]
    pub fn get(&self, key: &[u8]) -> &[TupleId] {
        let mut at = self.root;
        loop {
            match self.arena.get(at) {
                Some(Node::Internal { keys, children }) => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    match children.get(idx) {
                        Some(&c) => at = c,
                        None => return &[],
                    }
                }
                Some(Node::Leaf { keys, postings }) => {
                    return match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(i) => postings.get(i).map_or(&[], Vec::as_slice),
                        Err(_) => &[],
                    };
                }
                None => return &[],
            }
        }
    }

    /// Inserts `(key, tid)`; duplicates append to the posting list.
    pub fn insert(&mut self, key: &[u8], tid: TupleId) {
        self.entries += 1;
        if let Some((mid_key, right)) = self.insert_at(self.root, key, tid) {
            // Root split: grow the tree by one level.
            let new_root = self.arena.len();
            self.arena.push(Node::Internal {
                keys: vec![mid_key],
                children: vec![self.root, right],
            });
            self.root = new_root;
        }
    }

    /// Recursive insert; returns `Some((separator, new_node))` when the
    /// child at `at` split.
    fn insert_at(&mut self, at: usize, key: &[u8], tid: TupleId) -> Option<(Vec<u8>, usize)> {
        let child = match self.arena.get(at) {
            Some(Node::Internal { keys, children }) => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                children.get(idx).copied()
            }
            _ => None,
        };
        if let Some(child) = child {
            let split = self.insert_at(child, key, tid)?;
            let (mid_key, right) = split;
            if let Some(Node::Internal { keys, children }) = self.arena.get_mut(at) {
                let idx = keys.partition_point(|k| k.as_slice() <= mid_key.as_slice());
                keys.insert(idx, mid_key);
                children.insert(idx + 1, right);
                if keys.len() > ORDER {
                    return Some(self.split_internal(at));
                }
            }
            return None;
        }
        // Leaf.
        if let Some(Node::Leaf { keys, postings }) = self.arena.get_mut(at) {
            match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                Ok(i) => {
                    if let Some(list) = postings.get_mut(i) {
                        list.push(tid);
                    }
                }
                Err(i) => {
                    keys.insert(i, key.to_vec());
                    postings.insert(i, vec![tid]);
                    self.keys += 1;
                }
            }
            if keys.len() > ORDER {
                return Some(self.split_leaf(at));
            }
        }
        None
    }

    fn split_leaf(&mut self, at: usize) -> (Vec<u8>, usize) {
        let (mid_key, right_keys, right_postings) = match self.arena.get_mut(at) {
            Some(Node::Leaf { keys, postings }) => {
                let mid = keys.len() / 2;
                let right_keys: Vec<_> = keys.drain(mid..).collect();
                let right_postings: Vec<_> = postings.drain(mid..).collect();
                let mid_key = right_keys.first().cloned().unwrap_or_default();
                (mid_key, right_keys, right_postings)
            }
            _ => (Vec::new(), Vec::new(), Vec::new()),
        };
        let right = self.arena.len();
        self.arena.push(Node::Leaf {
            keys: right_keys,
            postings: right_postings,
        });
        (mid_key, right)
    }

    fn split_internal(&mut self, at: usize) -> (Vec<u8>, usize) {
        let (mid_key, right_keys, right_children) = match self.arena.get_mut(at) {
            Some(Node::Internal { keys, children }) => {
                let mid = keys.len() / 2;
                let mut right_keys: Vec<_> = keys.drain(mid..).collect();
                let right_children: Vec<_> = children.drain(mid + 1..).collect();
                // The separator moves up rather than staying in either half.
                let mid_key = if right_keys.is_empty() {
                    Vec::new()
                } else {
                    right_keys.remove(0)
                };
                (mid_key, right_keys, right_children)
            }
            _ => (Vec::new(), Vec::new(), Vec::new()),
        };
        let right = self.arena.len();
        self.arena.push(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        (mid_key, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u64) -> TupleId {
        TupleId {
            page: n / 16,
            slot: (n % 16) as u16,
        }
    }

    #[test]
    fn get_on_empty_is_empty() {
        let t = BTree::new();
        assert!(t.get(b"anything").is_empty());
    }

    #[test]
    fn duplicates_preserve_insertion_order() {
        let mut t = BTree::new();
        t.insert(b"k", tid(3));
        t.insert(b"k", tid(1));
        t.insert(b"k", tid(2));
        assert_eq!(t.get(b"k"), &[tid(3), tid(1), tid(2)]);
        assert_eq!(t.key_count(), 1);
        assert_eq!(t.entry_count(), 3);
    }

    #[test]
    fn many_keys_split_and_stay_findable() {
        let mut t = BTree::new();
        let n = 4_000u64;
        // Insert in a scrambled but deterministic order.
        for i in 0..n {
            let k = (i.wrapping_mul(2_654_435_761)) % n;
            t.insert(format!("key-{k:08}").as_bytes(), tid(k));
        }
        assert!(t.height() > 2, "tree split into multiple levels");
        for k in 0..n {
            let got = t.get(format!("key-{k:08}").as_bytes());
            assert!(got.contains(&tid(k)), "key-{k:08} lost after splits");
        }
        assert!(t.get(b"key-99999999").is_empty());
    }

    #[test]
    fn sequential_and_reverse_insertion_agree() {
        let build = |order: &[u64]| {
            let mut t = BTree::new();
            for &k in order {
                t.insert(&k.to_be_bytes(), tid(k));
            }
            t
        };
        let fwd: Vec<u64> = (0..500).collect();
        let rev: Vec<u64> = (0..500).rev().collect();
        let a = build(&fwd);
        let b = build(&rev);
        for k in 0..500u64 {
            assert_eq!(a.get(&k.to_be_bytes()), b.get(&k.to_be_bytes()));
        }
        assert_eq!(a.key_count(), b.key_count());
    }
}
