//! Slotted heap pages.
//!
//! Layout (little-endian, [`PAGE_SIZE`] bytes):
//!
//! ```text
//! 0..8    checksum   FNV-1a of bytes 8..PAGE_SIZE, stamped at seal time
//! 8..16   next page  number of the next page in the table's chain (0 = end)
//! 16..18  slot count
//! 18..20  free offset — start of the tuple data region (grows downward)
//! 20..    slot directory: per slot, offset u16 + length u16 (grows upward)
//! ...     tuple bytes, packed from the end of the page
//! ```
//!
//! Tuples are append-only within a page; a table's UPDATE/DELETE rewrites
//! its whole chain. The checksum is what detects a torn page: a write that
//! persisted only its leading sectors fails verification on the next
//! read-from-disk, surfacing as [`StoreError::Corrupt`].

use crate::{fnv1a, Result, StoreError};

/// Size of one heap page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Header bytes before the slot directory.
const HEADER: usize = 20;

/// Bytes one slot-directory entry occupies.
const SLOT_ENTRY: usize = 4;

/// One in-memory heap page.
#[derive(Debug, Clone)]
pub struct Page {
    bytes: Vec<u8>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh, empty page.
    #[must_use]
    pub fn new() -> Self {
        let mut page = Self {
            bytes: vec![0u8; PAGE_SIZE],
        };
        page.put_u16(18, PAGE_SIZE as u16);
        page
    }

    /// Largest tuple a page can hold.
    #[must_use]
    pub fn max_tuple() -> usize {
        PAGE_SIZE - HEADER - SLOT_ENTRY
    }

    /// Validates length and checksum of bytes read back from disk.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on a short read or checksum mismatch — the
    /// torn-page detection path.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "short page read: {} bytes",
                bytes.len()
            )));
        }
        let page = Self { bytes };
        let stored = page.read_u64(0);
        let actual = fnv1a(page.bytes.get(8..).unwrap_or(&[]));
        if stored != actual {
            return Err(StoreError::Corrupt(format!(
                "page checksum mismatch: stored {stored:#x}, computed {actual:#x}"
            )));
        }
        Ok(page)
    }

    /// Stamps the checksum and returns the full page image for writing.
    pub fn seal(&mut self) -> &[u8] {
        let sum = fnv1a(self.bytes.get(8..).unwrap_or(&[]));
        self.put_u64(0, sum);
        &self.bytes
    }

    /// The next page in the chain (0 = end of chain).
    #[must_use]
    pub fn next(&self) -> u64 {
        self.read_u64(8)
    }

    /// Links the chain to `page_no`.
    pub fn set_next(&mut self, page_no: u64) {
        self.put_u64(8, page_no);
    }

    /// Number of tuples stored.
    #[must_use]
    pub fn slot_count(&self) -> u16 {
        self.read_u16(16)
    }

    /// Bytes still available for one more tuple (including its slot entry).
    #[must_use]
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + usize::from(self.slot_count()) * SLOT_ENTRY;
        let free_off = usize::from(self.read_u16(18));
        free_off.saturating_sub(dir_end).saturating_sub(SLOT_ENTRY)
    }

    /// Appends a tuple, returning its slot number, or `None` if the page
    /// is full.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<u16> {
        if tuple.len() > Self::max_tuple() || self.free_space() < tuple.len() {
            return None;
        }
        let slot = self.slot_count();
        let free_off = usize::from(self.read_u16(18));
        let new_off = free_off - tuple.len();
        if let Some(dst) = self.bytes.get_mut(new_off..free_off) {
            dst.copy_from_slice(tuple);
        }
        let entry = HEADER + usize::from(slot) * SLOT_ENTRY;
        self.put_u16(entry, new_off as u16);
        self.put_u16(entry + 2, tuple.len() as u16);
        self.put_u16(16, slot + 1);
        self.put_u16(18, new_off as u16);
        Some(slot)
    }

    /// The tuple bytes in `slot`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if the slot or its extent is out of range.
    pub fn tuple(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.slot_count() {
            return Err(StoreError::Corrupt(format!(
                "slot {slot} out of range ({} slots)",
                self.slot_count()
            )));
        }
        let entry = HEADER + usize::from(slot) * SLOT_ENTRY;
        let off = usize::from(self.read_u16(entry));
        let len = usize::from(self.read_u16(entry + 2));
        self.bytes
            .get(off..off + len)
            .ok_or_else(|| StoreError::Corrupt(format!("slot {slot} extent {off}+{len} invalid")))
    }

    fn read_u16(&self, off: usize) -> u16 {
        match self.bytes.get(off..off + 2) {
            Some([a, b]) => u16::from_le_bytes([*a, *b]),
            _ => 0,
        }
    }

    fn put_u16(&mut self, off: usize, v: u16) {
        if let Some(dst) = self.bytes.get_mut(off..off + 2) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
    }

    fn read_u64(&self, off: usize) -> u64 {
        let mut buf = [0u8; 8];
        match self.bytes.get(off..off + 8) {
            Some(src) => {
                buf.copy_from_slice(src);
                u64::from_le_bytes(buf)
            }
            None => 0,
        }
    }

    fn put_u64(&mut self, off: usize, v: u64) {
        if let Some(dst) = self.bytes.get_mut(off..off + 8) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back_in_order() {
        let mut p = Page::new();
        assert_eq!(p.insert(b"alpha"), Some(0));
        assert_eq!(p.insert(b"beta"), Some(1));
        assert_eq!(p.insert(b""), Some(2));
        assert_eq!(p.tuple(0).unwrap(), b"alpha");
        assert_eq!(p.tuple(1).unwrap(), b"beta");
        assert_eq!(p.tuple(2).unwrap(), b"");
        assert!(p.tuple(3).is_err());
    }

    #[test]
    fn page_fills_up_and_rejects_overflow() {
        let mut p = Page::new();
        let tuple = vec![0xABu8; 100];
        let mut n = 0;
        while p.insert(&tuple).is_some() {
            n += 1;
        }
        // 4096 - 20 header, 104 bytes per tuple+slot.
        assert_eq!(n, (PAGE_SIZE - HEADER) / 104);
        assert!(p.free_space() < 104);
        // Smaller tuples still fit afterwards if space remains.
        let spare = p.free_space();
        if spare > 0 {
            assert!(p.insert(&vec![1u8; spare]).is_some());
        }
    }

    #[test]
    fn oversize_tuple_is_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; Page::max_tuple() + 1]).is_none());
        assert!(p.insert(&vec![0u8; Page::max_tuple()]).is_some());
    }

    #[test]
    fn seal_round_trips_through_bytes() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        p.set_next(42);
        let image = p.seal().to_vec();
        let back = Page::from_bytes(image).unwrap();
        assert_eq!(back.tuple(0).unwrap(), b"persist me");
        assert_eq!(back.next(), 42);
    }

    #[test]
    fn torn_page_fails_checksum() {
        let mut p = Page::new();
        p.insert(b"full tuple data").unwrap();
        let mut image = p.seal().to_vec();
        // Tear: keep the first half, zero the rest (what a torn sector
        // write leaves on the platter).
        for b in &mut image[PAGE_SIZE / 2..] {
            *b = 0;
        }
        assert!(matches!(
            Page::from_bytes(image),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn short_read_is_corrupt() {
        assert!(matches!(
            Page::from_bytes(vec![0u8; 17]),
            Err(StoreError::Corrupt(_))
        ));
    }
}
