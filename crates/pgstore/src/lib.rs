//! A paged storage engine for MiniPg, built so that *recovery itself* is a
//! divergence surface RDDR can vote on.
//!
//! The paper's evaluation treats its N-versioned databases as opaque; this
//! crate opens the box. It provides two interchangeable backends behind one
//! [`Storage`] trait:
//!
//! * [`MemStore`] — the original in-memory engine: rows in insertion-order
//!   vectors with a lazily-built primary-key index. Restart loses
//!   everything (the pre-PR behaviour the orchestra Supervisor exposed).
//! * [`PagedStore`] — slotted heap pages ([`page`]) over a fixed-size
//!   buffer pool with deterministic clock eviction ([`pool`]), a
//!   write-ahead log with commit records ([`wal`]), and a B+Tree
//!   primary-key index ([`btree`]), all on a simulated crash-faulty disk
//!   ([`disk::VDisk`]). Restart replays the WAL, so a respawned instance
//!   rejoins with its committed state — and *how* it treats a torn log
//!   tail is a [`RecoveryPolicy`] that diverse versions may disagree on.
//!
//! Both engines promise byte-identical observable behaviour for the same
//! statement stream (scan order, point-lookup candidate order, row
//! contents); the pgsim proptest suite enforces this. The deliberate
//! divergence corners are:
//!
//! * **Torn WAL tail ending in a commit record** — [`RecoveryPolicy::ReplayForward`]
//!   trusts the readable commit kind byte and applies the transaction;
//!   [`RecoveryPolicy::ShadowDiscard`] discards any transaction whose
//!   commit record does not verify. Same bytes, two honest recoveries,
//!   different states — exactly the rarely-exercised corner where
//!   independently-written engines disagree.
//! * **Oversize tuples** — a row larger than a heap page fails on the
//!   paged engine only ([`StoreError::TupleTooLarge`]).
//!
//! The crate is dependency-free (the `parking_lot` shim is the workspace's
//! mandated lock type) and fully deterministic: no wall-clock, no hash
//! maps, no randomness. Fault injection enters only through the
//! [`disk::DiskFaults`] hook, which `rddr-pgsim` adapts to the seeded
//! `rddr-net` fault plan.

pub mod btree;
pub mod disk;
pub mod mem;
pub mod page;
pub mod paged;
pub mod pool;
pub mod wal;

pub use btree::{BTree, TupleId};
pub use disk::{DiskFaults, NoFaults, VDisk};
pub use mem::MemStore;
pub use page::{Page, PAGE_SIZE};
pub use paged::{PagedStore, RecoveryStats};
pub use pool::BufferPool;
pub use wal::{RecoveryPolicy, Wal, WalRecord};

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named table does not exist in the store.
    NoSuchTable(String),
    /// The named table already exists in the store.
    TableExists(String),
    /// An encoded tuple exceeds the heap page capacity (paged engine only —
    /// a deliberate diff-reaching corner between the backends).
    TupleTooLarge {
        /// Encoded tuple size.
        bytes: usize,
        /// Largest tuple a heap page can hold.
        max: usize,
    },
    /// On-disk state failed validation (checksum mismatch, bad framing).
    Corrupt(String),
    /// `commit`/`rollback` without an open transaction.
    NoTransaction,
    /// `begin` while a transaction is already open.
    TransactionOpen,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchTable(t) => write!(f, "no such table {t}"),
            StoreError::TableExists(t) => write!(f, "table {t} already exists"),
            StoreError::TupleTooLarge { bytes, max } => {
                write!(f, "tuple of {bytes} bytes exceeds page capacity {max}")
            }
            StoreError::Corrupt(why) => write!(f, "corrupt storage: {why}"),
            StoreError::NoTransaction => write!(f, "no transaction in progress"),
            StoreError::TransactionOpen => write!(f, "a transaction is already in progress"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// How rows of the host's tuple type map to bytes, keys and accounting.
///
/// The storage engines are generic over the tuple type `R` so the
/// in-memory engine pays no encode cost; the codec supplies the paged
/// engine's serialization, the primary-key bytes both engines index by,
/// and the simulated heap accounting the memory meter charges.
pub trait TupleCodec<R>: Send {
    /// Serializes a row (paged heap + WAL representation).
    fn encode(&self, row: &R, out: &mut Vec<u8>);
    /// Deserializes a row.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] when the bytes are not a valid row.
    fn decode(&self, bytes: &[u8]) -> Result<R>;
    /// The primary-key bytes for the index (the first column's grouping
    /// key, in the host's semantics).
    fn key(&self, row: &R) -> Vec<u8>;
    /// Simulated heap bytes the row occupies (for memory metering).
    fn heap_bytes(&self, row: &R) -> u64;
}

/// The storage backend contract MiniPg's executor runs against.
///
/// Both engines preserve insertion order in [`Storage::scan`] and per-key
/// candidate order in [`Storage::lookup`], so swapping backends is
/// wire-invisible. Transactions are serialized (one open at a time, as the
/// executor holds the database lock); `begin`/`commit`/`rollback` back the
/// SQL transaction verbs, and the executor wraps each standalone mutation
/// in an implicit transaction so every change reaches the WAL with a
/// commit record.
pub trait Storage<R>: Send {
    /// Short engine name (`"memory"` / `"paged"`), for banners and reports.
    fn engine(&self) -> &'static str;

    /// Creates a table. `meta` is an opaque catalog blob (column
    /// definitions, owner) that recovery hands back via
    /// [`Storage::table_meta`] so the executor can rebuild its catalog.
    ///
    /// # Errors
    ///
    /// [`StoreError::TableExists`] if the table already exists.
    fn create_table(&mut self, table: &str, meta: &[u8]) -> Result<()>;

    /// Drops a table and its rows.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchTable`] if the table does not exist.
    fn drop_table(&mut self, table: &str) -> Result<()>;

    /// Names of all tables, sorted.
    fn table_names(&self) -> Vec<String>;

    /// The catalog blob the table was created with, if it exists.
    fn table_meta(&self, table: &str) -> Option<Vec<u8>>;

    /// Number of stored rows.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchTable`] if the table does not exist.
    fn row_count(&self, table: &str) -> Result<u64>;

    /// Visits every row in insertion order.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchTable`] / [`StoreError::Corrupt`].
    fn scan(&self, table: &str, visit: &mut dyn FnMut(R)) -> Result<()>;

    /// Builds the primary-key index if it is not already present.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchTable`] / [`StoreError::Corrupt`].
    fn ensure_index(&mut self, table: &str) -> Result<()>;

    /// Whether the primary-key index is currently built.
    fn has_index(&self, table: &str) -> bool;

    /// Visits the rows whose primary key matches `key`, in insertion
    /// order, returning how many candidates were visited (the executor's
    /// scan-cost charge). Falls back to a filtered scan when no index is
    /// built — the candidate set (and therefore the charge) is identical.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchTable`] / [`StoreError::Corrupt`].
    fn lookup(&self, table: &str, key: &[u8], visit: &mut dyn FnMut(R)) -> Result<u64>;

    /// Appends rows in order, maintaining the index if built.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchTable`] / [`StoreError::TupleTooLarge`].
    fn insert(&mut self, table: &str, rows: Vec<R>) -> Result<()>;

    /// Replaces the table's rows wholesale (UPDATE/DELETE), dropping the
    /// index (it is rebuilt lazily, mirroring the executor's historical
    /// invalidate-on-write behaviour).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchTable`] / [`StoreError::TupleTooLarge`].
    fn rewrite(&mut self, table: &str, rows: Vec<R>) -> Result<()>;

    /// Opens a transaction.
    ///
    /// # Errors
    ///
    /// [`StoreError::TransactionOpen`] if one is already open.
    fn begin(&mut self) -> Result<()>;

    /// Commits the open transaction (paged: appends the commit record and
    /// fsyncs the WAL — the durability point).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoTransaction`] if none is open.
    fn commit(&mut self) -> Result<()>;

    /// Rolls the open transaction back, restoring pre-transaction state.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoTransaction`] if none is open.
    fn rollback(&mut self) -> Result<()>;

    /// Whether a transaction is open.
    fn in_txn(&self) -> bool;

    /// Simulated resident bytes (memory metering): logical heap bytes for
    /// the in-memory engine, live heap pages for the paged engine.
    fn bytes(&self) -> u64;

    /// Deterministic digest of the full logical state (tables, rows, in
    /// order) — the replay-equivalence probe for recovery tests.
    fn state_digest(&self) -> u64;
}

/// FNV-1a over a byte slice; the crate's checksum/digest primitive.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extends an FNV-1a digest with more bytes (for incremental digests).
#[must_use]
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
