//! A lock-free log-bucketed histogram.
//!
//! Values are `u64` (the workspace records latencies in microseconds).
//! Buckets are laid out HDR-style: values below [`SUB_BUCKETS`] get an exact
//! bucket each; above that, each power-of-two octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets, bounding the relative width of every
//! bucket — and therefore the relative error of any quantile estimate — to
//! `1 / SUB_BUCKETS` (6.25%).
//!
//! Recording is a single relaxed atomic increment, so one histogram can be
//! shared across every proxy worker thread without contention; histograms
//! from independent registries can be merged bucket-wise.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave. Must be a power of two.
pub const SUB_BUCKETS: usize = 16;
const SUB_SHIFT: u32 = SUB_BUCKETS.trailing_zeros();
/// Octaves above the exact region: msb 4..=63 inclusive.
const OCTAVES: usize = 64 - SUB_SHIFT as usize;
/// Total bucket count: the exact region plus the log region.
pub const BUCKETS: usize = SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// Maps a value to its bucket index.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = (msb - SUB_SHIFT) as usize;
    let sub = ((value >> (msb - SUB_SHIFT)) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + octave * SUB_BUCKETS + sub
}

/// Upper bound (inclusive) of the values that land in `index`.
fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let octave = ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let base = 1u64 << (octave + SUB_SHIFT);
    let width = base >> SUB_SHIFT;
    // Highest value of this sub-bucket: start of the next one, minus one.
    // Subtract first: the top bucket's next-start is 2^64 and would overflow.
    (base - 1) + (sub + 1) * width
}

/// A mergeable, thread-safe latency/size histogram with quantile queries.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (the workspace-wide unit).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) as the upper bound of the
    /// bucket holding the rank-`ceil(q·n)` observation. The estimate is
    /// exact for values below [`SUB_BUCKETS`] and within `1/SUB_BUCKETS`
    /// relative error otherwise. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Never report beyond the observed maximum (the top bucket's
                // upper bound can overshoot it).
                return bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Resets all counts to zero.
    pub fn reset(&self) {
        for bucket in self.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.count(), SUB_BUCKETS as u64);
    }

    #[test]
    fn bucket_index_round_trips_with_bounds() {
        for &v in &[0u64, 1, 15, 16, 17, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let hi = bucket_upper_bound(i);
            assert!(v <= hi, "value {v} above upper bound {hi} of its bucket");
            if i > 0 {
                let prev_hi = bucket_upper_bound(i - 1);
                assert!(v > prev_hi, "value {v} should be past bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn quantile_bounded_relative_error() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..10_000).map(|i| i * 37 + 5).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for &q in &[0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "estimate {est} below exact {exact} at q={q}");
            let rel = (est - exact) as f64 / exact as f64;
            assert!(
                rel <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
                "q={q}: rel err {rel}"
            );
        }
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(0.99), 1_000_003);
        assert_eq!(h.max(), 1_000_003);
    }

    #[test]
    fn merge_adds_counts() {
        let (a, b) = (Histogram::new(), Histogram::new());
        a.record(10);
        b.record(1_000);
        b.record(2_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 3_010);
        assert_eq!(a.max(), 2_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
    }
}
