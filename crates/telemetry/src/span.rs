//! Per-exchange spans.
//!
//! A [`Span`] is created when the incoming proxy accepts an exchange and
//! follows the request through the engine to the backend and back. Events
//! record a label plus a monotonic offset from the span's start, so the
//! timeline attached to a divergence audit record shows exactly where time
//! went (fan-out, per-instance reads, diff, respond).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// One timestamped moment inside a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// What happened (e.g. `"fanout"`, `"instance0:response"`, `"diff"`).
    pub label: String,
    /// Monotonic offset from the span's start.
    pub offset: Duration,
}

/// A request-scoped timeline with a process-unique id.
///
/// Spans are cheap (one `Instant` + a mutexed event vec) and shareable:
/// reader threads clone an `Arc<Span>` and push events concurrently.
#[derive(Debug)]
pub struct Span {
    id: u64,
    label: String,
    start: Instant,
    events: Mutex<Vec<SpanEvent>>,
}

impl Span {
    /// Starts a new span; ids are unique within the process.
    pub fn start(label: impl Into<String>) -> Span {
        Span {
            id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            label: label.into(),
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The process-unique span id (doubles as the exchange id in audit
    /// records and `X-RDDR-Exchange` style diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The label given at construction.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Records an event at the current monotonic offset.
    pub fn event(&self, label: impl Into<String>) {
        let offset = self.start.elapsed();
        self.events.lock().push(SpanEvent {
            label: label.into(),
            offset,
        });
    }

    /// Time since the span started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// A copy of the events recorded so far, in insertion order.
    pub fn timeline(&self) -> Vec<SpanEvent> {
        self.events.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ids_are_unique() {
        let a = Span::start("a");
        let b = Span::start("b");
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn events_keep_order_and_monotonic_offsets() {
        let span = Span::start("exchange");
        span.event("fanout");
        span.event("diff");
        span.event("respond");
        let timeline = span.timeline();
        assert_eq!(
            timeline
                .iter()
                .map(|e| e.label.as_str())
                .collect::<Vec<_>>(),
            ["fanout", "diff", "respond"]
        );
        assert!(timeline.windows(2).all(|w| w[0].offset <= w[1].offset));
    }

    #[test]
    fn concurrent_events_all_land() {
        let span = Arc::new(Span::start("shared"));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let span = span.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        span.event(format!("t{t}:{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(span.timeline().len(), 400);
    }
}
