//! Bounded divergence audit log.
//!
//! Every severed connection leaves a [`DivergenceRecord`]: which instance
//! disagreed, where in the response, the throttle signature of the offending
//! request, and the span timeline of the exchange. The log is a fixed-size
//! ring — old incidents fall off the back — so a noisy deployment cannot grow
//! memory without bound.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::span::SpanEvent;

/// One audited divergence incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceRecord {
    /// The span/exchange id the incident happened in.
    pub exchange_id: u64,
    /// The protected service (incoming proxy listen address, typically).
    pub service: String,
    /// Index of the instance the majority voted against, when identifiable.
    pub offending_instance: Option<usize>,
    /// Human-readable throttle signature of the offending request.
    pub signature: String,
    /// Segment indices where responses differed.
    pub diff_positions: Vec<usize>,
    /// Short description (diff labels, excerpts).
    pub detail: String,
    /// Whether the divergence was structural (token shape) or content-level.
    pub structural: bool,
    /// The exchange's span timeline at the moment of severing.
    pub timeline: Vec<SpanEvent>,
}

/// A thread-safe bounded ring of [`DivergenceRecord`]s.
#[derive(Debug)]
pub struct AuditLog {
    capacity: usize,
    dropped: Mutex<u64>,
    entries: Mutex<VecDeque<DivergenceRecord>>,
}

impl AuditLog {
    /// Creates a log retaining at most `capacity` records.
    pub fn new(capacity: usize) -> AuditLog {
        assert!(capacity > 0, "audit log capacity must be positive");
        AuditLog {
            capacity,
            dropped: Mutex::new(0),
            entries: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn record(&self, record: DivergenceRecord) {
        let mut entries = self.entries.lock();
        if entries.len() == self.capacity {
            entries.pop_front();
            *self.dropped.lock() += 1;
        }
        entries.push_back(record);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many records have been evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }

    /// Copies the retained records, oldest first.
    pub fn recent(&self) -> Vec<DivergenceRecord> {
        self.entries.lock().iter().cloned().collect()
    }

    /// Renders the retained records as a JSON document:
    /// `{"dropped": n, "divergences": [...]}`.
    ///
    /// The writer is local to this crate: `rddr-protocols` sits above
    /// `rddr-core` which depends on this crate, so reusing its `JsonValue`
    /// would create a cycle.
    pub fn to_json(&self) -> String {
        let records = self.recent();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"dropped\":{},\"divergences\":[",
            self.dropped()
        ));
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"exchange_id\":{},\"service\":{},\"offending_instance\":{},\
                 \"signature\":{},\"diff_positions\":[{}],\"detail\":{},\
                 \"structural\":{},\"timeline\":[{}]}}",
                r.exchange_id,
                json_string(&r.service),
                r.offending_instance
                    .map_or_else(|| "null".to_string(), |i| i.to_string()),
                json_string(&r.signature),
                r.diff_positions
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                json_string(&r.detail),
                r.structural,
                r.timeline
                    .iter()
                    .map(|e| format!(
                        "{{\"label\":{},\"offset_us\":{}}}",
                        json_string(&e.label),
                        e.offset.as_micros()
                    ))
                    .collect::<Vec<_>>()
                    .join(","),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the retained records as JSON, *excluding* replay-unstable
    /// fields: the process-global `exchange_id` and the wall-clock span
    /// `timeline` are omitted. Two runs that diverge identically — the same
    /// fault schedule replayed, or the same schedule over a different
    /// transport — therefore produce byte-identical output, which chaos
    /// tests compare directly. [`AuditLog::to_json`] remains the full
    /// operator surface.
    pub fn stable_json(&self) -> String {
        let records = self.recent();
        let mut out = String::from("{\"divergences\":[");
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"service\":{},\"offending_instance\":{},\"signature\":{},\
                 \"diff_positions\":[{}],\"detail\":{},\"structural\":{}}}",
                json_string(&r.service),
                r.offending_instance
                    .map_or_else(|| "null".to_string(), |i| i.to_string()),
                json_string(&r.signature),
                r.diff_positions
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                json_string(&r.detail),
                r.structural,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample(id: u64) -> DivergenceRecord {
        DivergenceRecord {
            exchange_id: id,
            service: "rddr:5432".into(),
            offending_instance: Some(1),
            signature: "SELECT \"x\"\n".into(),
            diff_positions: vec![0, 3],
            detail: "row count mismatch".into(),
            structural: false,
            timeline: vec![SpanEvent {
                label: "diff".into(),
                offset: Duration::from_micros(42),
            }],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = AuditLog::new(2);
        for id in 0..5 {
            log.record(sample(id));
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].exchange_id, 3);
        assert_eq!(recent[1].exchange_id, 4);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn json_escapes_and_structures() {
        let log = AuditLog::new(4);
        log.record(sample(7));
        let json = log.to_json();
        assert!(json.contains("\"exchange_id\":7"));
        assert!(json.contains("\"offending_instance\":1"));
        assert!(json.contains("\\\"x\\\"\\n"), "escape failure: {json}");
        assert!(json.contains("\"diff_positions\":[0,3]"));
        assert!(json.contains("\"offset_us\":42"));
    }

    #[test]
    fn stable_json_omits_replay_unstable_fields() {
        let log_a = AuditLog::new(4);
        let log_b = AuditLog::new(4);
        // Different exchange ids and timelines, same divergence content.
        let mut a = sample(7);
        let mut b = sample(99);
        b.timeline = vec![SpanEvent {
            label: "diff".into(),
            offset: Duration::from_micros(12345),
        }];
        a.timeline.push(SpanEvent {
            label: "respond".into(),
            offset: Duration::from_micros(50),
        });
        log_a.record(a);
        log_b.record(b);
        assert_eq!(log_a.stable_json(), log_b.stable_json());
        assert!(!log_a.stable_json().contains("exchange_id"));
        assert!(!log_a.stable_json().contains("offset_us"));
        assert!(log_a.stable_json().contains("\"offending_instance\":1"));
    }

    #[test]
    fn empty_log_is_valid_json_shape() {
        let log = AuditLog::new(1);
        assert!(log.is_empty());
        assert_eq!(log.to_json(), "{\"dropped\":0,\"divergences\":[]}");
    }
}
