//! Dependency-free observability for the RDDR reproduction.
//!
//! The paper's argument for N-versioning rests on measured overhead (Figs
//! 4–6) and on the operator being able to see *why* a connection was severed.
//! This crate provides both halves without any external dependency:
//!
//! * [`Registry`] — lock-sharded named [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s (p50/p95/p99/max with bounded relative
//!   error), mergeable across threads.
//! * [`Span`] — per-exchange timelines carrying a process-unique request id
//!   from the incoming proxy through the engine to the outgoing proxy.
//! * [`AuditLog`] — a bounded ring of [`DivergenceRecord`]s: offending
//!   instance, throttle signature, diff positions, span timeline.
//! * [`AdminServer`] — `/healthz`, `/metrics` (Prometheus text), and
//!   `/divergences` (JSON) served over any [`rddr_net::Network`] fabric.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use rddr_net::{Network, SimNet, ServiceAddr, Stream};
//! use rddr_telemetry::{AdminServer, AuditLog, Registry};
//!
//! # fn main() -> Result<(), rddr_net::NetError> {
//! let registry = Arc::new(Registry::new());
//! registry.counter("rddr_exchanges_total").inc();
//! registry.histogram("rddr_exchange_latency_us").record(180);
//!
//! let net: Arc<dyn Network> = Arc::new(SimNet::new());
//! let server = AdminServer::serve(
//!     net.clone(),
//!     &ServiceAddr::new("admin", 9100),
//!     registry,
//!     Arc::new(AuditLog::new(64)),
//! )?;
//!
//! let mut conn = net.dial(server.addr())?;
//! conn.write_all(b"GET /metrics HTTP/1.1\r\n\r\n")?;
//! let mut buf = [0u8; 4096];
//! let n = conn.read(&mut buf)?;
//! assert!(String::from_utf8_lossy(&buf[..n]).contains("rddr_exchanges_total 1"));
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

mod admin;
mod audit;
mod histogram;
mod registry;
mod span;

pub use admin::AdminServer;
pub use audit::{AuditLog, DivergenceRecord};
pub use histogram::{Histogram, BUCKETS, SUB_BUCKETS};
pub use registry::{Counter, Gauge, Registry};
pub use span::{Span, SpanEvent};
