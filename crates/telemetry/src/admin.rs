//! Minimal admin/observability endpoint.
//!
//! Serves three HTTP/1.1 GET routes over any [`rddr_net::Network`] fabric —
//! in-memory [`rddr_net::SimNet`], real [`rddr_net::TcpNet`], or the toy
//! secure channel — because it only touches the `Listener`/`Stream` traits:
//!
//! * `/healthz` — liveness probe. Plain `ok` when no proxy is running
//!   degraded; `degraded depth=N` (still `200 OK` — the process is alive)
//!   when N instances across the registry's `*_degraded_depth` gauges are
//!   currently ejected.
//! * `/metrics` — the registry in Prometheus text exposition format.
//! * `/divergences` — the audit log as JSON.
//!
//! The server is deliberately tiny: one accept-loop thread, one short-lived
//! handler thread per connection, `Connection: close` semantics. It is an
//! operator surface, not a production HTTP stack.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rddr_net::{BoxStream, Network, Result, ServiceAddr, Stream};

use crate::audit::AuditLog;
use crate::registry::Registry;

/// Handle to a running admin endpoint. Dropping it without calling
/// [`AdminServer::shutdown`] leaves the accept thread running detached.
pub struct AdminServer {
    addr: ServiceAddr,
    net: Arc<dyn Network>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` on `net` and starts serving `registry` and `audit`.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve(
        net: Arc<dyn Network>,
        addr: &ServiceAddr,
        registry: Arc<Registry>,
        audit: Arc<AuditLog>,
    ) -> Result<AdminServer> {
        let mut listener = net.listen(addr)?;
        let bound = listener.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rddr-admin-{bound}"))
            .spawn(move || loop {
                let conn = match listener.accept() {
                    Ok(conn) => conn,
                    Err(_) => return,
                };
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                let registry = registry.clone();
                let audit = audit.clone();
                std::thread::spawn(move || handle_connection(conn, &registry, &audit));
            })
            .map_err(rddr_net::NetError::from)?;
        Ok(AdminServer {
            addr: bound,
            net,
            stop,
            handle: Some(handle),
        })
    }

    /// The address actually bound (port resolved if `addr` used port 0).
    pub fn addr(&self) -> &ServiceAddr {
        &self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unbind wakes SimNet accept loops; the self-dial wakes fabrics whose
        // unbind is a no-op (plain TCP).
        self.net.unbind_addr(&self.addr);
        let _ = self.net.dial(&self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Reads one request head and answers one of the three routes.
fn handle_connection(mut conn: BoxStream, registry: &Registry, audit: &AuditLog) {
    conn.set_read_timeout(Some(Duration::from_secs(5)));
    let path = match read_request_path(&mut conn) {
        Some(path) => path,
        None => return,
    };
    let (status, content_type, body) = match path.as_str() {
        "/healthz" => {
            let depth = registry.sum_gauges("_degraded_depth");
            let body = if depth > 0 {
                format!("degraded depth={depth}\n")
            } else {
                "ok\n".to_string()
            };
            ("200 OK", "text/plain; charset=utf-8", body)
        }
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_prometheus(),
        ),
        "/divergences" => ("200 OK", "application/json", audit.to_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = conn.write_all(response.as_bytes());
    conn.shutdown();
}

/// Reads up to the end of the request head and returns the GET path.
fn read_request_path(conn: &mut BoxStream) -> Option<String> {
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8192 {
            return None;
        }
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                let Some(read) = chunk.get(..n) else { break };
                head.extend_from_slice(read);
            }
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Ignore any query string; routes take no parameters.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rddr_net::SimNet;

    fn get(net: &dyn Network, addr: &ServiceAddr, path: &str) -> String {
        let mut conn = net.dial(addr).unwrap();
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match conn.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
            }
        }
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn serves_all_three_routes_over_simnet() {
        let net: Arc<dyn Network> = Arc::new(SimNet::new());
        let registry = Arc::new(Registry::new());
        registry.counter("rddr_exchanges_total").add(3);
        let audit = Arc::new(AuditLog::new(8));
        let server = AdminServer::serve(
            net.clone(),
            &ServiceAddr::new("admin", 9100),
            registry,
            audit,
        )
        .unwrap();
        let health = get(net.as_ref(), server.addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.ends_with("ok\n"));
        let metrics = get(net.as_ref(), server.addr(), "/metrics");
        assert!(metrics.contains("rddr_exchanges_total 3"), "{metrics}");
        let div = get(net.as_ref(), server.addr(), "/divergences");
        assert!(div.contains("\"divergences\":[]"), "{div}");
        let missing = get(net.as_ref(), server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.shutdown();
    }

    #[test]
    fn healthz_reports_degraded_depth() {
        let net: Arc<dyn Network> = Arc::new(SimNet::new());
        let registry = Arc::new(Registry::new());
        registry.gauge("pg_in_degraded_depth").set(2);
        let server = AdminServer::serve(
            net.clone(),
            &ServiceAddr::new("admin", 9102),
            registry.clone(),
            Arc::new(AuditLog::new(1)),
        )
        .unwrap();
        let health = get(net.as_ref(), server.addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.ends_with("degraded depth=2\n"), "{health}");
        // Recovery: gauge back to zero flips the body back to plain ok.
        registry.gauge("pg_in_degraded_depth").set(0);
        let health = get(net.as_ref(), server.addr(), "/healthz");
        assert!(health.ends_with("ok\n"), "{health}");
        server.shutdown();
    }

    #[test]
    fn shutdown_releases_the_address() {
        let net: Arc<dyn Network> = Arc::new(SimNet::new());
        let addr = ServiceAddr::new("admin", 9101);
        let server = AdminServer::serve(
            net.clone(),
            &addr,
            Arc::new(Registry::new()),
            Arc::new(AuditLog::new(1)),
        )
        .unwrap();
        server.shutdown();
        // Address is free again: a second server can bind it.
        let again = AdminServer::serve(
            net.clone(),
            &addr,
            Arc::new(Registry::new()),
            Arc::new(AuditLog::new(1)),
        )
        .unwrap();
        again.shutdown();
    }
}
