//! A lock-sharded registry of named metrics.
//!
//! The registry owns the name → metric mapping; callers hold `Arc` handles to
//! the metrics themselves, so the hot path (incrementing a counter, recording
//! a latency) never touches the registry locks — those are taken only at
//! registration and when rendering `/metrics`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::Histogram;

/// A monotonically increasing metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A metric that can move in both directions (e.g. resident memory).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

const SHARDS: usize = 16;

/// Named metrics, sharded by name hash to keep registration cheap even when
/// many sessions register per-instance metrics concurrently.
pub struct Registry {
    shards: [Mutex<HashMap<String, Metric>>; SHARDS],
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        let [first, ..] = &self.shards;
        self.shards
            .get((hash % SHARDS as u64) as usize)
            .unwrap_or(first)
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// If `name` is already registered as a *different* metric kind, a fresh
    /// detached counter is returned: the caller can use it normally but it
    /// is not rendered at `/metrics`. A kind conflict is an observability
    /// bug, not a reason to panic a proxy session thread mid-exchange.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut shard = self.shard(name).lock();
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => Arc::new(Counter::default()),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// Kind conflicts yield a detached gauge (see [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut shard = self.shard(name).lock();
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Arc::new(Gauge::default()),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// Kind conflicts yield a detached histogram (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut shard = self.shard(name).lock();
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Sums the current values of every gauge whose name ends with `suffix`
    /// — e.g. `"_degraded_depth"` across all proxies sharing this registry,
    /// the health probe's view of degraded-mode operation.
    pub fn sum_gauges(&self, suffix: &str) -> i64 {
        let mut total = 0i64;
        for shard in &self.shards {
            for (name, metric) in shard.lock().iter() {
                if let Metric::Gauge(g) = metric {
                    if name.ends_with(suffix) {
                        total += g.get();
                    }
                }
            }
        }
        total
    }

    /// Renders every metric in Prometheus text exposition format, sorted by
    /// name so output is stable. Histograms render as summaries with
    /// `quantile` labels plus `_sum`/`_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut entries: Vec<(String, String)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (name, metric) in shard.iter() {
                let mut block = String::new();
                match metric {
                    Metric::Counter(c) => {
                        block.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                    }
                    Metric::Gauge(g) => {
                        block.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                    }
                    Metric::Histogram(h) => {
                        block.push_str(&format!("# TYPE {name} summary\n"));
                        for (label, q) in
                            [("0.5", 0.5), ("0.9", 0.9), ("0.95", 0.95), ("0.99", 0.99)]
                        {
                            block.push_str(&format!(
                                "{name}{{quantile=\"{label}\"}} {}\n",
                                h.quantile(q)
                            ));
                        }
                        block.push_str(&format!("{name}{{quantile=\"1\"}} {}\n", h.max()));
                        block.push_str(&format!("{name}_sum {}\n", h.sum()));
                        block.push_str(&format!("{name}_count {}\n", h.count()));
                    }
                }
                entries.push((name.clone(), block));
            }
        }
        entries.sort();
        let mut out = String::new();
        for (_, block) in entries {
            out.push_str(&block);
        }
        out
    }

    /// Merges every histogram of `other` into the same-named histogram here
    /// and adds counter values; used to fold per-thread registries into a
    /// process-wide one.
    pub fn absorb(&self, other: &Registry) {
        for shard in &other.shards {
            let shard = shard.lock();
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => self.counter(name).add(c.get()),
                    Metric::Gauge(g) => self.gauge(name).set(g.get()),
                    Metric::Histogram(h) => self.histogram(name).merge_from(h),
                }
            }
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let count: usize = self.shards.iter().map(|s| s.lock().len()).sum();
        f.debug_struct("Registry").field("metrics", &count).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("rddr_exchanges_total");
        let b = reg.counter("rddr_exchanges_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("rddr_mem_bytes");
        g.set(100);
        g.add(-40);
        assert_eq!(g.get(), 60);
    }

    #[test]
    fn kind_conflicts_yield_detached_metrics() {
        let reg = Registry::new();
        reg.counter("rddr_thing").add(2);
        // Misregistering the same name as a gauge must not panic: the caller
        // gets a usable but detached gauge, and the original counter keeps
        // its identity in the rendered output.
        let detached = reg.gauge("rddr_thing");
        detached.set(9);
        assert_eq!(detached.get(), 9);
        assert_eq!(reg.counter("rddr_thing").get(), 2);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE rddr_thing counter"));
        assert!(!text.contains("# TYPE rddr_thing gauge"));
    }

    #[test]
    fn sum_gauges_filters_by_suffix() {
        let reg = Registry::new();
        reg.gauge("svc_in_degraded_depth").set(2);
        reg.gauge("svc_out_degraded_depth").set(1);
        reg.gauge("svc_mem_bytes").set(400);
        reg.counter("svc_degraded_depth_total").add(7); // wrong kind: ignored
        assert_eq!(reg.sum_gauges("_degraded_depth"), 3);
        assert_eq!(reg.sum_gauges("_nope"), 0);
    }

    #[test]
    fn prometheus_output_is_sorted_and_typed() {
        let reg = Registry::new();
        reg.counter("zzz_total").inc();
        reg.gauge("aaa_bytes").set(5);
        let h = reg.histogram("mid_latency_us");
        h.record(100);
        let text = reg.render_prometheus();
        let a = text.find("aaa_bytes").unwrap();
        let m = text.find("mid_latency_us").unwrap();
        let z = text.find("zzz_total").unwrap();
        assert!(a < m && m < z, "not sorted: {text}");
        assert!(text.contains("# TYPE aaa_bytes gauge"));
        assert!(text.contains("# TYPE zzz_total counter"));
        assert!(text.contains("# TYPE mid_latency_us summary"));
        assert!(text.contains("mid_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("mid_latency_us_count 1"));
    }

    #[test]
    fn absorb_folds_thread_local_registries() {
        let global = Registry::new();
        let local = Registry::new();
        local.counter("n_total").add(4);
        local.histogram("lat_us").record(50);
        global.counter("n_total").add(1);
        global.absorb(&local);
        assert_eq!(global.counter("n_total").get(), 5);
        assert_eq!(global.histogram("lat_us").count(), 1);
    }
}
