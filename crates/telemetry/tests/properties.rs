//! Property and concurrency tests for the telemetry primitives: histogram
//! quantile accuracy against exact order statistics, merge equivalence, and
//! multi-thread registry aggregation.

use proptest::prelude::*;
use rddr_telemetry::{Histogram, Registry, SUB_BUCKETS};

/// The rank-`ceil(q·n)` order statistic — the same convention
/// [`Histogram::quantile`] estimates.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[rank as usize - 1]
}

proptest! {
    /// The histogram's quantile never undershoots the exact order statistic
    /// and overshoots by at most one bucket's width (`1/SUB_BUCKETS`
    /// relative error, exact below `SUB_BUCKETS`).
    #[test]
    fn quantile_within_one_bucket_of_exact(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..300),
        q_pct in 1u64..=100,
    ) {
        let q = q_pct as f64 / 100.0;
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values;
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let approx = hist.quantile(q);
        prop_assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
        let slack = exact / SUB_BUCKETS as u64 + 1;
        prop_assert!(
            approx <= exact + slack,
            "q={q}: approx {approx} > exact {exact} + slack {slack}"
        );
    }

    /// Merging two histograms is equivalent to recording the concatenation.
    #[test]
    fn merge_equals_concatenation(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let ha = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        let hb = Histogram::new();
        for &v in &b {
            hb.record(v);
        }
        ha.merge_from(&hb);

        let combined = Histogram::new();
        for &v in a.iter().chain(&b) {
            combined.record(v);
        }
        prop_assert_eq!(ha.count(), combined.count());
        prop_assert_eq!(ha.sum(), combined.sum());
        prop_assert_eq!(ha.max(), combined.max());
        for q in [0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile(q), combined.quantile(q));
        }
    }
}

/// Eight threads hammer one shared registry; totals must be lossless and a
/// per-thread private registry absorbed at the end must add in exactly.
#[test]
fn registry_merges_across_threads() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;

    let shared = std::sync::Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = std::sync::Arc::clone(&shared);
            std::thread::spawn(move || {
                let counter = shared.counter("events_total");
                let hist = shared.histogram("latency_us");
                // A private registry merged in afterward, as a session
                // thread that batches locally would do.
                let private = Registry::new();
                let local = private.counter("events_total");
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t * PER_THREAD + i);
                    local.inc();
                }
                shared.absorb(&private);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(
        shared.counter("events_total").get(),
        2 * THREADS * PER_THREAD
    );
    let hist = shared.histogram("latency_us");
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    assert_eq!(hist.quantile(1.0), THREADS * PER_THREAD - 1);
    let page = shared.render_prometheus();
    assert!(page.contains("events_total 80000"), "metrics:\n{page}");
}
