//! MiniPg and MiniCockroach: SQL database simulators for the RDDR evaluation.
//!
//! The paper's evaluation leans on PostgreSQL throughout: the diverse-
//! implementation case study pairs Postgres with CockroachDB (§V-C2), the
//! version-diversity case studies exploit CVE-2017-7484 and CVE-2019-10130
//! (§V-C2, §V-F2), the DVWA SQL-injection scenario uses an external
//! database through the outgoing proxy (§V-B), and the performance study
//! runs TPC-H and pgbench against 3-versioned Postgres (§V-G).
//!
//! This crate rebuilds that substrate from scratch:
//!
//! * [`Database`] — an in-memory SQL engine: DDL/DML, multi-table joins,
//!   aggregates, `ORDER BY`/`LIMIT`, subqueries, users and privileges,
//!   row-level security, user-defined functions and operators, `EXPLAIN`.
//! * [`PgVersion`]-gated bugs reproducing both CVEs' leak channels (a
//!   planner that runs user-defined operators over rows the caller may not
//!   see, emitting `NOTICE`s).
//! * [`PgServer`] — an [`rddr_orchestra::Service`] speaking the PostgreSQL
//!   v3 wire format of `rddr_protocols::pg`, charging simulated CPU and
//!   memory to its container.
//! * [`CockroachFlavor`] — the same engine constrained the way CockroachDB
//!   differs: no user-defined functions/operators, serializable-only
//!   isolation, its own version banner (§V-C2).
//! * [`tpch`] and [`pgbench`] — workload generators and query sets for the
//!   paper's Figure 4 and Figures 5–6 respectively.
//!
//! # Examples
//!
//! ```
//! use rddr_pgsim::{Database, PgVersion};
//!
//! # fn main() -> Result<(), rddr_pgsim::SqlError> {
//! let mut db = Database::new(PgVersion::parse("10.7")?);
//! let mut session = db.session("app");
//! db.execute(&mut session, "CREATE TABLE t (id INT, name TEXT)")?;
//! db.execute(&mut session, "INSERT INTO t VALUES (1, 'ada'), (2, 'grace')")?;
//! let result = db.execute(&mut session, "SELECT name FROM t WHERE id = 2")?;
//! assert_eq!(result.rows[0][0].to_string(), "grace");
//! # Ok(())
//! # }
//! ```

mod ast;
mod db;
mod eval;
mod exec;
mod lexer;
mod parser;
pub mod pgbench;
mod server;
pub mod storage;
pub mod tpch;
mod value;
mod version;

pub use db::{CockroachFlavor, Database, DbFlavor, QueryResult, Session, SqlError};
pub use rddr_pgstore::{RecoveryPolicy, RecoveryStats, VDisk};
pub use server::{query_message, startup_message, PgClient, PgResponse, PgServer, PgServerConfig};
pub use storage::{open_storage, PlanDiskFaults, StorageEngine, ValueCodec};
pub use value::{SqlType, Value};
pub use version::PgVersion;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SqlError>;
