//! The PostgreSQL wire-format server: a [`Service`] that fronts a
//! [`Database`] on the cluster network, charging simulated CPU and memory
//! to its container.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;
use parking_lot::Mutex;
use rddr_net::{BoxStream, Stream};
use rddr_orchestra::{Service, ServiceCtx};
use rddr_protocols::pg::PgMessage;

use crate::db::{Database, SqlError};

/// Cost model for simulated query execution.
#[derive(Debug, Clone, Copy)]
pub struct PgServerConfig {
    /// Fixed CPU cost charged per statement.
    pub base_cost: Duration,
    /// CPU cost charged per row scanned.
    pub cost_per_row: Duration,
}

impl Default for PgServerConfig {
    fn default() -> Self {
        Self {
            base_cost: Duration::from_micros(50),
            cost_per_row: Duration::from_micros(2),
        }
    }
}

/// A database server speaking the PostgreSQL v3 wire format.
///
/// Multiple connections share the database; each connection authenticates
/// with the user named in its startup message. CPU time is charged to the
/// container through the cluster's [`rddr_orchestra::CpuGovernor`], and the
/// container's memory meter tracks the database's simulated row storage —
/// this is what makes a 3-versioned deployment cost ≈3× memory in Figures
/// 4 and 6 of the paper.
pub struct PgServer {
    db: Arc<Mutex<Database>>,
    config: PgServerConfig,
    mem_charged: AtomicU64,
    backend_counter: AtomicU64,
}

impl std::fmt::Debug for PgServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PgServer")
            .field("config", &self.config)
            .finish()
    }
}

impl PgServer {
    /// Wraps a database with the default cost model.
    pub fn new(db: Database) -> Self {
        Self::with_config(db, PgServerConfig::default())
    }

    /// Wraps a database with an explicit cost model.
    pub fn with_config(db: Database, config: PgServerConfig) -> Self {
        Self {
            db: Arc::new(Mutex::new(db)),
            config,
            mem_charged: AtomicU64::new(0),
            backend_counter: AtomicU64::new(1),
        }
    }

    /// Shared handle to the underlying database (for seeding workloads).
    pub fn database(&self) -> Arc<Mutex<Database>> {
        Arc::clone(&self.db)
    }

    /// Brings the container's memory meter in line with the database's
    /// current simulated storage.
    fn sync_memory(&self, ctx: &ServiceCtx) {
        let current = self.db.lock().storage_bytes();
        let charged = self.mem_charged.swap(current, Ordering::Relaxed);
        match current.cmp(&charged) {
            std::cmp::Ordering::Greater => ctx.alloc(current - charged),
            std::cmp::Ordering::Less => ctx.free(charged - current),
            std::cmp::Ordering::Equal => {}
        }
    }
}

/// Extracts the `user` parameter from a startup-message payload
/// (`version(i32)` then NUL-separated key/value pairs).
fn startup_user(payload: &[u8]) -> String {
    let mut parts = payload.get(4..).unwrap_or(&[]).split(|&b| b == 0);
    while let Some(key) = parts.next() {
        if key.is_empty() {
            break;
        }
        let value = parts.next().unwrap_or(&[]);
        if key == b"user" {
            return String::from_utf8_lossy(value).into_owned();
        }
    }
    "app".to_string()
}

fn msg(tag: u8, payload: Vec<u8>) -> Vec<u8> {
    PgMessage { tag, payload }.encode()
}

impl Service for PgServer {
    fn name(&self) -> &str {
        "pg-server"
    }

    fn handle(&self, mut conn: BoxStream, ctx: &ServiceCtx) {
        let mut buf = BytesMut::new();
        let mut chunk = [0u8; 16 * 1024];

        // ---- startup handshake --------------------------------------------
        let startup = loop {
            match PgMessage::decode(&buf, true) {
                Ok(Some((m, used))) => {
                    let _ = buf.split_to(used);
                    break m;
                }
                Ok(None) => match conn.read(&mut chunk) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                },
                Err(_) => return,
            }
        };
        let user = startup_user(&startup.payload);
        let mut session = self.db.lock().session(&user);
        self.sync_memory(ctx);

        let mut greeting = msg(b'R', 0i32.to_be_bytes().to_vec()); // AuthenticationOk
        let banner = self.db.lock().version_banner();
        let mut ps = b"server_version\0".to_vec();
        ps.extend_from_slice(banner.as_bytes());
        ps.push(0);
        greeting.extend(msg(b'S', ps));
        // BackendKeyData: pid + secret are instance-specific (non-critical
        // on the wire, excluded from diffing by the protocol module).
        let backend = self.backend_counter.fetch_add(1, Ordering::Relaxed);
        let mut key = (backend as i32).to_be_bytes().to_vec();
        key.extend(0x5ec2e7i32.to_be_bytes());
        greeting.extend(msg(b'K', key));
        greeting.extend(msg(b'Z', b"I".to_vec()));
        if conn.write_all(&greeting).is_err() {
            return;
        }

        // ---- query loop ----------------------------------------------------
        loop {
            let message = loop {
                match PgMessage::decode(&buf, false) {
                    Ok(Some((m, used))) => {
                        let _ = buf.split_to(used);
                        break m;
                    }
                    Ok(None) => match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    },
                    Err(_) => return,
                }
            };
            match message.tag {
                b'Q' => {
                    let sql = String::from_utf8_lossy(
                        message.payload.split(|&b| b == 0).next().unwrap_or(&[]),
                    )
                    .into_owned();
                    let result = self.db.lock().execute(&mut session, &sql);
                    let mut out = Vec::new();
                    match result {
                        Ok(r) => {
                            ctx.compute(
                                self.config.base_cost + self.config.cost_per_row * r.scanned as u32,
                            );
                            for notice in &r.notices {
                                out.extend(msg(b'N', notice.clone().into_bytes()));
                            }
                            if !r.columns.is_empty() {
                                out.extend(msg(b'T', r.columns.join("\u{1f}").into_bytes()));
                                for row in &r.rows {
                                    let line: Vec<String> =
                                        row.iter().map(|v| v.to_string()).collect();
                                    out.extend(msg(b'D', line.join("\u{1f}").into_bytes()));
                                }
                            }
                            out.extend(msg(b'C', r.tag.into_bytes()));
                        }
                        Err(e) => {
                            ctx.compute(self.config.base_cost);
                            let code = match e {
                                SqlError::PermissionDenied(_) => "42501",
                                SqlError::Unsupported(_) => "0A000",
                                SqlError::Parse(_) => "42601",
                                SqlError::Exec(_) => "XX000",
                            };
                            out.extend(msg(b'E', format!("ERROR: {code} {e}").into_bytes()));
                        }
                    }
                    out.extend(msg(b'Z', b"I".to_vec()));
                    self.sync_memory(ctx);
                    if conn.write_all(&out).is_err() {
                        return;
                    }
                }
                b'X' => return,
                _ => {
                    let mut out = msg(
                        b'E',
                        b"ERROR: 0A000 extended protocol not supported".to_vec(),
                    );
                    out.extend(msg(b'Z', b"I".to_vec()));
                    if conn.write_all(&out).is_err() {
                        return;
                    }
                }
            }
        }
    }
}

/// Builds a simple-query wire message (`Q`) for clients.
pub fn query_message(sql: &str) -> Vec<u8> {
    let mut payload = sql.as_bytes().to_vec();
    payload.push(0);
    msg(b'Q', payload)
}

/// Builds a startup wire message for clients.
pub fn startup_message(user: &str) -> Vec<u8> {
    let mut payload = 196608i32.to_be_bytes().to_vec();
    payload.extend_from_slice(b"user\0");
    payload.extend_from_slice(user.as_bytes());
    payload.push(0);
    payload.push(0);
    let mut out = ((payload.len() as i32 + 4).to_be_bytes()).to_vec();
    out.extend(payload);
    out
}

/// A minimal blocking PostgreSQL wire client for tests, benchmarks and the
/// simulated applications (DVWA, GitLab).
pub struct PgClient {
    conn: BoxStream,
    buf: BytesMut,
}

impl std::fmt::Debug for PgClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PgClient").finish()
    }
}

/// One decoded query outcome seen by a [`PgClient`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PgResponse {
    /// Column names (from `RowDescription`).
    pub columns: Vec<String>,
    /// Rows as text fields.
    pub rows: Vec<Vec<String>>,
    /// `NOTICE` lines.
    pub notices: Vec<String>,
    /// Error text, if the query failed.
    pub error: Option<String>,
    /// Command tag.
    pub tag: String,
}

impl PgClient {
    /// Connects and performs the startup handshake.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::Exec`] if the server closes during the handshake.
    pub fn connect(mut conn: BoxStream, user: &str) -> Result<Self, SqlError> {
        conn.write_all(&startup_message(user))
            .map_err(|e| SqlError::Exec(format!("startup write failed: {e}")))?;
        let mut client = Self {
            conn,
            buf: BytesMut::new(),
        };
        client.read_until_ready()?;
        Ok(client)
    }

    /// Executes one simple query and collects the full response cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::Exec`] if the connection drops mid-cycle (which
    /// is how an RDDR intervention manifests to the client).
    pub fn query(&mut self, sql: &str) -> Result<PgResponse, SqlError> {
        self.conn
            .write_all(&query_message(sql))
            .map_err(|e| SqlError::Exec(format!("query write failed: {e}")))?;
        self.read_until_ready()
    }

    fn read_until_ready(&mut self) -> Result<PgResponse, SqlError> {
        let mut response = PgResponse::default();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match PgMessage::decode(&self.buf, false).map_err(|e| SqlError::Exec(e.to_string()))? {
                Some((m, used)) => {
                    let _ = self.buf.split_to(used);
                    let text = String::from_utf8_lossy(&m.payload).into_owned();
                    match m.tag {
                        b'T' => {
                            response.columns = text.split('\u{1f}').map(str::to_string).collect()
                        }
                        b'D' => response
                            .rows
                            .push(text.split('\u{1f}').map(str::to_string).collect()),
                        b'N' => response.notices.push(text),
                        b'E' => response.error = Some(text),
                        b'C' => response.tag = text,
                        b'Z' => return Ok(response),
                        _ => {}
                    }
                }
                None => match self.conn.read(&mut chunk) {
                    Ok(0) | Err(_) => return Err(SqlError::Exec("connection severed".into())),
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_user_parses() {
        let m = startup_message("mallory");
        let (decoded, _) = PgMessage::decode(&m, true).unwrap().unwrap();
        assert_eq!(startup_user(&decoded.payload), "mallory");
    }

    #[test]
    fn startup_user_defaults_to_app() {
        assert_eq!(startup_user(&196608i32.to_be_bytes()), "app");
    }

    #[test]
    fn query_message_is_nul_terminated() {
        let m = query_message("SELECT 1");
        let (decoded, _) = PgMessage::decode(&m, false).unwrap().unwrap();
        assert_eq!(decoded.tag, b'Q');
        assert_eq!(decoded.payload.last(), Some(&0));
    }
}
