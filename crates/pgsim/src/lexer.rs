use std::fmt;

use crate::db::SqlError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (unquoted identifiers are upper-cased for
    /// case-insensitive matching, mirroring SQL folding).
    Word(String),
    /// A quoted string literal (single quotes, `''` escaping).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// An operator or punctuation symbol (e.g. `=`, `<=`, `>>>`, `(`).
    Sym(String),
}

impl Token {
    /// The word payload if this is a `Word`.
    pub fn word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }

    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// Whether this token is the given symbol.
    pub fn is_sym(&self, sym: &str) -> bool {
        matches!(self, Token::Sym(s) if s == sym)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => f.write_str(w),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Sym(s) => f.write_str(s),
        }
    }
}

const OPERATOR_CHARS: &[u8] = b"+-*/<>=~!@#%^&|`?";

/// Tokenizes a SQL string.
///
/// Supports `--` line comments, `/* */` block comments, dollar-quoted
/// strings (`$$ ... $$`, used by the CVE exploit listings for function
/// bodies), and multi-character user-defined operators such as `>>>`.
///
/// # Errors
///
/// Returns [`SqlError::Parse`] on unterminated strings/comments or stray
/// bytes.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let close = sql[i + 2..]
                    .find("*/")
                    .ok_or_else(|| SqlError::Parse("unterminated block comment".into()))?;
                i += close + 4;
            }
            b'\'' => {
                let (text, consumed) = read_quoted(&sql[i..])?;
                tokens.push(Token::Str(text));
                i += consumed;
            }
            b'$' if bytes.get(i + 1) == Some(&b'$') => {
                let close = sql[i + 2..]
                    .find("$$")
                    .ok_or_else(|| SqlError::Parse("unterminated $$ string".into()))?;
                tokens.push(Token::Str(sql[i + 2..i + 2 + close].to_string()));
                i += close + 4;
            }
            b'"' => {
                // Quoted identifier: preserved case, no folding.
                let close = sql[i + 1..]
                    .find('"')
                    .ok_or_else(|| SqlError::Parse("unterminated quoted identifier".into()))?;
                tokens.push(Token::Word(sql[i + 1..i + 1 + close].to_string()));
                i += close + 2;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !is_float && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                            is_float = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad float literal {text:?}"))
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad integer literal {text:?}"))
                    })?));
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Word(sql[start..i].to_ascii_uppercase()));
            }
            b'(' | b')' | b',' | b';' | b'.' => {
                tokens.push(Token::Sym((b as char).to_string()));
                i += 1;
            }
            _ if OPERATOR_CHARS.contains(&b) => {
                let start = i;
                while i < bytes.len() && OPERATOR_CHARS.contains(&bytes[i]) {
                    // Stop a run before "--" or "/*" so trailing comments lex.
                    if i > start
                        && (bytes[i - 1] == b'-' && bytes[i] == b'-'
                            || bytes[i - 1] == b'/' && bytes[i] == b'*')
                    {
                        i -= 1;
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token::Sym(sql[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Parse(format!(
                    "unexpected byte {:?} at offset {i}",
                    other as char
                )))
            }
        }
    }
    Ok(tokens)
}

fn read_quoted(s: &str) -> Result<(String, usize), SqlError> {
    debug_assert!(s.starts_with('\''));
    let bytes = s.as_bytes();
    let mut out = String::new();
    let mut i = 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(SqlError::Parse("unterminated string literal".into()))
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql).unwrap()
    }

    #[test]
    fn words_fold_to_uppercase() {
        assert_eq!(
            toks("select Name"),
            vec![Token::Word("SELECT".into()), Token::Word("NAME".into()),]
        );
    }

    #[test]
    fn strings_preserve_case_and_escapes() {
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(toks("42 2.75"), vec![Token::Int(42), Token::Float(2.75)]);
    }

    #[test]
    fn custom_operator_lexes_as_one_symbol() {
        let t = toks("col_to_leak >>> 0");
        assert_eq!(t[1], Token::Sym(">>>".into()));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT 1 -- trailing\n+ 2 /* block */ ;"),
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Sym("+".into()),
                Token::Int(2),
                Token::Sym(";".into()),
            ]
        );
    }

    #[test]
    fn dollar_quoted_function_body() {
        let t = toks("AS $$BEGIN RAISE NOTICE 'leak % %', $1, $2; END$$ LANGUAGE plpgsql");
        assert_eq!(t[0], Token::Word("AS".into()));
        assert!(matches!(&t[1], Token::Str(s) if s.contains("RAISE NOTICE")));
        assert_eq!(t[2], Token::Word("LANGUAGE".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn qualified_names_lex_with_dot() {
        let t = toks("lineitem.l_qty");
        assert_eq!(t.len(), 3);
        assert!(t[1].is_sym("."));
    }

    #[test]
    fn comparison_operators() {
        let t = toks("a <= b <> c != d");
        assert_eq!(t[1], Token::Sym("<=".into()));
        assert_eq!(t[3], Token::Sym("<>".into()));
        assert_eq!(t[5], Token::Sym("!=".into()));
    }

    #[test]
    fn operator_run_stops_before_line_comment() {
        let t = toks("1+--c\n2");
        assert_eq!(
            t,
            vec![Token::Int(1), Token::Sym("+".into()), Token::Int(2)]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("'héllo'"), vec![Token::Str("héllo".into())]);
    }
}
