//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::db::SqlError;
use crate::lexer::{tokenize, Token};
use crate::value::{SqlType, Value};

/// Parses one statement (a trailing `;` is permitted).
///
/// # Errors
///
/// Returns [`SqlError::Parse`] on malformed input.
pub fn parse_statement(sql: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if !p.at_end() {
        return Err(SqlError::Parse(format!(
            "trailing tokens after statement: {}",
            p.peek_text()
        )));
    }
    Ok(stmt)
}

/// Splits a multi-statement string on top-level `;` and parses each.
///
/// # Errors
///
/// Returns [`SqlError::Parse`] if any statement is malformed.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>, SqlError> {
    let tokens = tokenize(sql)?;
    let mut statements = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i <= tokens.len() {
        let at_sep = i == tokens.len() || tokens[i].is_sym(";");
        if at_sep {
            if i > start {
                let mut p = Parser {
                    tokens: tokens[start..i].to_vec(),
                    pos: 0,
                };
                statements.push(p.statement()?);
                if !p.at_end() {
                    return Err(SqlError::Parse(format!(
                        "trailing tokens after statement: {}",
                        p.peek_text()
                    )));
                }
            }
            start = i + 1;
        }
        i += 1;
    }
    Ok(statements)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn peek_text(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "<end>".into())
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, what: &str) -> SqlError {
        SqlError::Parse(format!("{what}, found {}", self.peek_text()))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_sym(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), SqlError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{sym}'")))
        }
    }

    fn expect_word(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            Some(Token::Word(w)) => Ok(w),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn expect_str(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            Some(Token::Str(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected string literal"))
            }
        }
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, SqlError> {
        let Some(first) = self.peek() else {
            return Err(SqlError::Parse("empty statement".into()));
        };
        let head = first.word().unwrap_or("").to_string();
        match head.as_str() {
            "SELECT" => Ok(Statement::Select(self.select()?)),
            "EXPLAIN" => {
                self.bump();
                // Optional (COSTS OFF) style option list.
                if self.eat_sym("(") {
                    while !self.eat_sym(")") {
                        if self.bump().is_none() {
                            return Err(self.err("unterminated EXPLAIN options"));
                        }
                    }
                }
                Ok(Statement::Explain(self.select()?))
            }
            "CREATE" => self.create(),
            "DROP" => {
                self.bump();
                self.expect_kw("TABLE")?;
                let name = self.expect_word()?;
                Ok(Statement::DropTable { name })
            }
            "INSERT" => self.insert(),
            "UPDATE" => self.update(),
            "DELETE" => self.delete(),
            "GRANT" => {
                self.bump();
                self.expect_kw("SELECT")?;
                self.expect_kw("ON")?;
                self.eat_kw("TABLE");
                let table = self.expect_word()?;
                self.expect_kw("TO")?;
                let user = self.expect_word()?;
                Ok(Statement::Grant { table, user })
            }
            "ALTER" => {
                self.bump();
                self.expect_kw("TABLE")?;
                let table = self.expect_word()?;
                self.expect_kw("ENABLE")?;
                self.expect_kw("ROW")?;
                self.expect_kw("LEVEL")?;
                self.expect_kw("SECURITY")?;
                Ok(Statement::EnableRls { table })
            }
            "SET" => {
                self.bump();
                let mut key = self.expect_word()?;
                // Multi-word keys: SET client_min_messages, SET default_transaction_isolation
                while self.peek().is_some_and(|t| matches!(t, Token::Word(_)))
                    && !self.peek().is_some_and(|t| t.is_kw("TO"))
                {
                    key.push('_');
                    key.push_str(&self.expect_word()?);
                }
                if !self.eat_kw("TO") && !self.eat_sym("=") {
                    return Err(self.err("expected TO or ="));
                }
                let value = match self.bump() {
                    Some(Token::Word(w)) => w,
                    Some(Token::Str(s)) => s,
                    Some(Token::Int(i)) => i.to_string(),
                    _ => return Err(self.err("expected setting value")),
                };
                Ok(Statement::Set { key, value })
            }
            "SHOW" => {
                self.bump();
                let key = self.expect_word()?;
                Ok(Statement::Show { key })
            }
            "BEGIN" | "COMMIT" | "ROLLBACK" | "END" => {
                self.bump();
                // Swallow modifiers like BEGIN TRANSACTION / BEGIN ISOLATION LEVEL ...
                while self.peek().is_some_and(|t| matches!(t, Token::Word(_))) {
                    self.bump();
                }
                Ok(Statement::Transaction { verb: head })
            }
            _ => Err(self.err("expected a statement keyword")),
        }
    }

    fn create(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let name = self.expect_word()?;
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.expect_word()?;
                let ty_word = self.expect_word()?;
                // Swallow precision like NUMERIC(15, 2).
                if self.eat_sym("(") {
                    while !self.eat_sym(")") {
                        if self.bump().is_none() {
                            return Err(self.err("unterminated type precision"));
                        }
                    }
                }
                // Swallow column constraints we don't enforce.
                while self.eat_kw("PRIMARY")
                    || self.eat_kw("KEY")
                    || self.eat_kw("NOT")
                    || self.eat_kw("NULL")
                    || self.eat_kw("UNIQUE")
                {}
                let ty = SqlType::parse(&ty_word)
                    .ok_or_else(|| SqlError::Parse(format!("unknown type {ty_word}")))?;
                columns.push(ColumnDef { name: col, ty });
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.eat_kw("FUNCTION") {
            let name = self.expect_word()?;
            self.expect_sym("(")?;
            let mut arg_count = 0;
            while !self.eat_sym(")") {
                match self.bump() {
                    Some(Token::Word(_)) => arg_count += 1,
                    Some(Token::Sym(s)) if s == "," => {}
                    _ => return Err(self.err("expected argument type")),
                }
            }
            self.expect_kw("RETURNS")?;
            let _ret = self.expect_word()?;
            self.expect_kw("AS")?;
            let body = self.expect_str()?;
            // Swallow trailing qualifiers: LANGUAGE plpgsql immutable etc.
            while self.peek().is_some_and(|t| matches!(t, Token::Word(_))) {
                self.bump();
            }
            return Ok(Statement::CreateFunction {
                name,
                arg_count,
                body,
            });
        }
        if self.eat_kw("OPERATOR") {
            let symbol = match self.bump() {
                Some(Token::Sym(s)) => s,
                _ => return Err(self.err("expected operator symbol")),
            };
            self.expect_sym("(")?;
            let mut procedure = None;
            let mut restrict = None;
            loop {
                let key = self.expect_word()?;
                self.expect_sym("=")?;
                let value = self.expect_word()?;
                match key.as_str() {
                    "PROCEDURE" | "FUNCTION" => procedure = Some(value),
                    "RESTRICT" => restrict = Some(value),
                    _ => {} // leftarg / rightarg: types are dynamic here
                }
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            let procedure =
                procedure.ok_or_else(|| SqlError::Parse("operator needs procedure=".into()))?;
            return Ok(Statement::CreateOperator {
                symbol,
                procedure,
                restrict,
            });
        }
        if self.eat_kw("USER") || self.eat_kw("ROLE") {
            let name = self.expect_word()?;
            return Ok(Statement::CreateUser { name });
        }
        if self.eat_kw("POLICY") {
            let name = self.expect_word()?;
            self.expect_kw("ON")?;
            let table = self.expect_word()?;
            // Optional FOR SELECT / TO role clauses.
            while !self.peek().is_some_and(|t| t.is_kw("USING")) {
                if self.bump().is_none() {
                    return Err(self.err("expected USING"));
                }
            }
            self.expect_kw("USING")?;
            self.expect_sym("(")?;
            let using = self.expr()?;
            self.expect_sym(")")?;
            return Ok(Statement::CreatePolicy { name, table, using });
        }
        Err(self.err("unsupported CREATE object"))
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.expect_word()?;
        let mut columns = Vec::new();
        if self.eat_sym("(") {
            loop {
                columns.push(self.expect_word()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("UPDATE")?;
        let table = self.expect_word()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_word()?;
            self.expect_sym("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.expect_word()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    // ---- SELECT ----------------------------------------------------------

    fn select(&mut self) -> Result<Select, SqlError> {
        self.expect_kw("SELECT")?;
        let mut select = Select {
            distinct: self.eat_kw("DISTINCT"),
            ..Select::default()
        };
        loop {
            if self.eat_sym("*") {
                select.items.push(SelectItem {
                    expr: None,
                    alias: None,
                });
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.expect_word()?)
                } else if let Some(Token::Word(w)) = self.peek() {
                    // Bare alias, but not a clause keyword.
                    if is_clause_keyword(w) {
                        None
                    } else {
                        let w = w.clone();
                        self.bump();
                        Some(w)
                    }
                } else {
                    None
                };
                select.items.push(SelectItem {
                    expr: Some(expr),
                    alias,
                });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        if self.eat_kw("FROM") {
            loop {
                select.from.push(self.table_ref(false)?);
                loop {
                    if self.eat_kw("LEFT") {
                        self.eat_kw("OUTER");
                        self.expect_kw("JOIN")?;
                        select.from.push(self.table_ref(true)?);
                    } else if self.eat_kw("JOIN") || {
                        if self.eat_kw("INNER") {
                            self.expect_kw("JOIN")?;
                            true
                        } else {
                            false
                        }
                    } {
                        // INNER JOIN … ON cond desugars to a comma join with
                        // the condition folded into WHERE.
                        let mut t = self.table_ref(false)?;
                        self.expect_kw("ON")?;
                        let cond = self.expr()?;
                        t.left_join_on = None;
                        select.from.push(t);
                        select.where_clause = Some(match select.where_clause.take() {
                            Some(w) => Expr::Binary {
                                op: "AND".into(),
                                left: Box::new(w),
                                right: Box::new(cond),
                            },
                            None => cond,
                        });
                    } else {
                        break;
                    }
                }
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("WHERE") {
            let cond = self.expr()?;
            select.where_clause = Some(match select.where_clause.take() {
                Some(w) => Expr::Binary {
                    op: "AND".into(),
                    left: Box::new(w),
                    right: Box::new(cond),
                },
                None => cond,
            });
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                select.group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            select.having = Some(self.expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                select.order_by.push(OrderKey { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => select.limit = Some(n as u64),
                _ => return Err(self.err("expected LIMIT count")),
            }
        }
        Ok(select)
    }

    fn table_ref(&mut self, is_left_join: bool) -> Result<TableRef, SqlError> {
        let mut t = if self.eat_sym("(") {
            let sub = self.select()?;
            self.expect_sym(")")?;
            self.eat_kw("AS"); // optional before the mandatory alias
            let alias = self.expect_word()?;
            TableRef {
                name: alias.clone(),
                alias,
                left_join_on: None,
                subquery: Some(Box::new(sub)),
            }
        } else {
            let name = self.expect_word()?;
            let alias = if self.eat_kw("AS") {
                self.expect_word()?
            } else if let Some(Token::Word(w)) = self.peek() {
                if is_from_keyword(w) {
                    name.clone()
                } else {
                    let w = w.clone();
                    self.bump();
                    w
                }
            } else {
                name.clone()
            };
            TableRef {
                name,
                alias,
                left_join_on: None,
                subquery: None,
            }
        };
        if is_left_join {
            self.expect_kw("ON")?;
            t.left_join_on = Some(self.expr()?);
        }
        Ok(t)
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: "OR".into(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: "AND".into(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.peek().is_some_and(|t| t.is_kw("NOT"))
            && self.peek_at(1).is_some_and(|t| t.is_kw("EXISTS"))
        {
            self.bump();
            self.bump();
            self.expect_sym("(")?;
            let sub = self.select()?;
            self.expect_sym(")")?;
            return Ok(Expr::Exists {
                subquery: Box::new(sub),
                negated: true,
            });
        }
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: "NOT".into(),
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;

        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = if self.peek().is_some_and(|t| t.is_kw("NOT"))
            && self
                .peek_at(1)
                .is_some_and(|t| t.is_kw("BETWEEN") || t.is_kw("IN") || t.is_kw("LIKE"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            let between = Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            };
            return Ok(if negated {
                Expr::Unary {
                    op: "NOT".into(),
                    expr: Box::new(between),
                }
            } else {
                between
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                let sub = self.select()?;
                self.expect_sym(")")?;
                return Ok(Expr::In {
                    expr: Box::new(left),
                    list: Vec::new(),
                    subquery: Some(Box::new(sub)),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::In {
                expr: Box::new(left),
                list,
                subquery: None,
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            let like = Expr::Binary {
                op: "LIKE".into(),
                left: Box::new(left),
                right: Box::new(pattern),
            };
            return Ok(if negated {
                Expr::Unary {
                    op: "NOT".into(),
                    expr: Box::new(like),
                }
            } else {
                like
            });
        }
        // Built-in comparison symbols and user-defined operators.
        if let Some(Token::Sym(s)) = self.peek() {
            let s = s.clone();
            if !matches!(
                s.as_str(),
                "(" | ")" | "," | ";" | "." | "*" | "+" | "-" | "/" | "%"
            ) {
                self.bump();
                let right = self.additive()?;
                return Ok(Expr::Binary {
                    op: s,
                    left: Box::new(left),
                    right: Box::new(right),
                });
            }
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_sym("+") {
                "+"
            } else if self.eat_sym("-") {
                "-"
            } else if self.eat_sym("||") {
                "||"
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op: op.into(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_sym("*") {
                "*"
            } else if self.eat_sym("/") {
                "/"
            } else if self.eat_sym("%") {
                "%"
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::Binary {
                op: op.into(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_sym("-") {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: "-".into(),
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Sym(s)) if s == "(" => {
                self.bump();
                if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                    let sub = self.select()?;
                    self.expect_sym(")")?;
                    Ok(Expr::Subquery(Box::new(sub)))
                } else {
                    let inner = self.expr()?;
                    self.expect_sym(")")?;
                    Ok(inner)
                }
            }
            Some(Token::Word(w)) => self.word_expr(w),
            _ => Err(self.err("expected expression")),
        }
    }

    fn word_expr(&mut self, w: String) -> Result<Expr, SqlError> {
        match w.as_str() {
            "NULL" => {
                self.bump();
                return Ok(Expr::Literal(Value::Null));
            }
            "TRUE" => {
                self.bump();
                return Ok(Expr::Literal(Value::Bool(true)));
            }
            "FALSE" => {
                self.bump();
                return Ok(Expr::Literal(Value::Bool(false)));
            }
            "DATE" => {
                // `date 'YYYY-MM-DD'` literal.
                if let Some(Token::Str(_)) = self.peek_at(1) {
                    self.bump();
                    let s = self.expect_str()?;
                    return Ok(Expr::Literal(Value::Text(s)));
                }
            }
            "CASE" => {
                self.bump();
                let mut arms = Vec::new();
                while self.eat_kw("WHEN") {
                    let cond = self.expr()?;
                    self.expect_kw("THEN")?;
                    let result = self.expr()?;
                    arms.push((cond, result));
                }
                let otherwise = if self.eat_kw("ELSE") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_kw("END")?;
                return Ok(Expr::Case { arms, otherwise });
            }
            "EXISTS" => {
                self.bump();
                self.expect_sym("(")?;
                let sub = self.select()?;
                self.expect_sym(")")?;
                return Ok(Expr::Exists {
                    subquery: Box::new(sub),
                    negated: false,
                });
            }
            "EXTRACT" => {
                self.bump();
                self.expect_sym("(")?;
                let field = self.expect_word()?;
                self.expect_kw("FROM")?;
                let arg = self.expr()?;
                self.expect_sym(")")?;
                return Ok(Expr::Call {
                    name: format!("EXTRACT_{field}"),
                    args: vec![arg],
                });
            }
            "SUBSTRING" => {
                self.bump();
                self.expect_sym("(")?;
                let s = self.expr()?;
                let mut args = vec![s];
                if self.eat_kw("FROM") {
                    args.push(self.expr()?);
                    if self.eat_kw("FOR") {
                        args.push(self.expr()?);
                    }
                } else {
                    while self.eat_sym(",") {
                        args.push(self.expr()?);
                    }
                }
                self.expect_sym(")")?;
                return Ok(Expr::Call {
                    name: "SUBSTRING".into(),
                    args,
                });
            }
            _ => {}
        }

        // Aggregates and function calls: word followed by '('.
        if self.peek_at(1).is_some_and(|t| t.is_sym("(")) {
            self.bump(); // name
            self.bump(); // '('
            if matches!(w.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") {
                if w == "COUNT" && self.eat_sym("*") {
                    self.expect_sym(")")?;
                    return Ok(Expr::Aggregate {
                        name: w,
                        arg: None,
                        distinct: false,
                    });
                }
                let distinct = self.eat_kw("DISTINCT");
                let arg = self.expr()?;
                self.expect_sym(")")?;
                return Ok(Expr::Aggregate {
                    name: w,
                    arg: Some(Box::new(arg)),
                    distinct,
                });
            }
            let mut args = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            return Ok(Expr::Call { name: w, args });
        }

        // Column reference, possibly qualified. Reserved words cannot name
        // columns — this is what rejects `SELECT FROM`.
        if is_reserved(&w) {
            return Err(self.err("expected expression"));
        }
        self.bump();
        if self.eat_sym(".") {
            let column = self.expect_word()?;
            Ok(Expr::Column(ColumnRef {
                table: Some(w),
                column,
            }))
        } else {
            Ok(Expr::Column(ColumnRef {
                table: None,
                column: w,
            }))
        }
    }
}

fn is_reserved(w: &str) -> bool {
    matches!(
        w,
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "BY"
            | "LIMIT"
            | "SELECT"
            | "INSERT"
            | "UPDATE"
            | "DELETE"
            | "JOIN"
            | "ON"
            | "AS"
            | "AND"
            | "OR"
            | "NOT"
            | "THEN"
            | "ELSE"
            | "WHEN"
            | "END"
            | "IN"
            | "IS"
            | "BETWEEN"
            | "LIKE"
            | "DISTINCT"
            | "UNION"
            | "VALUES"
            | "ASC"
            | "DESC"
    )
}

fn is_clause_keyword(w: &str) -> bool {
    matches!(
        w,
        "FROM" | "WHERE" | "GROUP" | "HAVING" | "ORDER" | "LIMIT" | "UNION" | "AS"
    )
}

fn is_from_keyword(w: &str) -> bool {
    matches!(
        w,
        "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "LEFT"
            | "INNER"
            | "JOIN"
            | "ON"
            | "UNION"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT name FROM users WHERE id = 1");
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.from[0].name, "USERS");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn select_star_and_limit() {
        let s = sel("SELECT * FROM t ORDER BY a DESC, b LIMIT 10;");
        assert!(s.items[0].expr.is_none());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = sel("SELECT l_returnflag, SUM(l_quantity) AS sum_qty, COUNT(*) \
             FROM lineitem GROUP BY l_returnflag HAVING SUM(l_quantity) > 100");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(matches!(
            s.items[1].expr,
            Some(Expr::Aggregate { ref name, .. }) if name == "SUM"
        ));
        assert_eq!(s.items[1].alias.as_deref(), Some("SUM_QTY"));
    }

    #[test]
    fn implicit_join_with_aliases() {
        let s = sel("SELECT c.name FROM customer c, orders o WHERE c.id = o.cust_id");
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias, "C");
        assert_eq!(s.from[1].alias, "O");
    }

    #[test]
    fn explicit_inner_join_desugars_to_where() {
        let s = sel("SELECT 1 FROM a JOIN b ON a.x = b.y WHERE a.z > 0");
        assert_eq!(s.from.len(), 2);
        let w = s.where_clause.unwrap();
        assert!(matches!(w, Expr::Binary { ref op, .. } if op == "AND"));
    }

    #[test]
    fn left_join_keeps_condition() {
        let s = sel("SELECT 1 FROM c LEFT OUTER JOIN o ON c.k = o.k");
        assert!(s.from[1].left_join_on.is_some());
    }

    #[test]
    fn custom_operator_parses() {
        let s = sel("SELECT x FROM some_table WHERE col_to_leak >>> 0");
        match s.where_clause.unwrap() {
            Expr::Binary { op, .. } => assert_eq!(op, ">>>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subqueries_in_in_and_exists() {
        let s = sel("SELECT 1 FROM t WHERE a IN (SELECT b FROM u) AND EXISTS (SELECT 1 FROM v)");
        let w = s.where_clause.unwrap();
        assert!(matches!(w, Expr::Binary { ref op, .. } if op == "AND"));
    }

    #[test]
    fn scalar_subquery() {
        let s = sel("SELECT 1 FROM t WHERE a > (SELECT AVG(x) FROM t)");
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => {
                assert!(matches!(*right, Expr::Subquery(_)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_when_expression() {
        let s = sel("SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM t");
        assert!(matches!(s.items[0].expr, Some(Expr::Case { .. })));
    }

    #[test]
    fn between_and_like_and_not() {
        let s =
            sel("SELECT 1 FROM t WHERE a BETWEEN 1 AND 5 AND name LIKE 'A%' AND b NOT IN (1,2)");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn date_literal() {
        let s = sel("SELECT 1 FROM t WHERE d <= date '1998-09-02'");
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => {
                assert_eq!(*right, Expr::Literal(Value::Text("1998-09-02".into())))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_table_with_precision() {
        let stmt =
            parse_statement("CREATE TABLE t (id INT, price NUMERIC(15,2), name VARCHAR(25))")
                .unwrap();
        match stmt {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "T");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1].ty, SqlType::Float);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert { columns, rows, .. } => {
                assert_eq!(columns, vec!["A", "B"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cve_7484_exploit_script_parses() {
        let script = "
            CREATE FUNCTION leak2(integer,integer) RETURNS boolean
            AS $$BEGIN RAISE NOTICE 'leak % %', $1, $2;
            RETURN $1 > $2; END$$
            LANGUAGE plpgsql immutable;
            CREATE OPERATOR >>> (procedure=leak2, leftarg=integer, rightarg=integer,
                                 restrict=scalargtsel);
            SET client_min_messages TO 'notice';
            EXPLAIN (COSTS OFF) SELECT x FROM some_table WHERE col_to_leak >>> 0;
        ";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 4);
        assert!(matches!(
            stmts[0],
            Statement::CreateFunction { arg_count: 2, .. }
        ));
        assert!(
            matches!(stmts[1], Statement::CreateOperator { ref symbol, ref restrict, .. }
                if symbol == ">>>" && restrict.as_deref() == Some("SCALARGTSEL"))
        );
        assert!(matches!(stmts[3], Statement::Explain(_)));
    }

    #[test]
    fn cve_10130_exploit_script_parses() {
        let script = "
            CREATE FUNCTION op_leak(int, int) RETURNS bool
            AS 'BEGIN RAISE NOTICE ''leak %, %'', $1, $2;
            RETURN $1 < $2; END'
            LANGUAGE plpgsql;
            CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int,
                                 restrict=scalarltsel);
            SELECT * FROM some_table WHERE col_to_leak <<< 1000;
        ";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn rls_and_grants_parse() {
        for sql in [
            "ALTER TABLE secrets ENABLE ROW LEVEL SECURITY",
            "CREATE POLICY p ON secrets USING (owner_id = 1)",
            "GRANT SELECT ON secrets TO mallory",
            "CREATE USER mallory",
        ] {
            parse_statement(sql).unwrap();
        }
    }

    #[test]
    fn set_and_show() {
        assert!(matches!(
            parse_statement("SET default_transaction_isolation TO 'serializable'").unwrap(),
            Statement::Set { .. }
        ));
        assert!(matches!(
            parse_statement("SHOW server_version").unwrap(),
            Statement::Show { .. }
        ));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_statement("SELEK 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("INSERT INTO t VALUES").is_err());
    }

    #[test]
    fn select_without_from() {
        let s = sel("SELECT 1 + 2");
        assert!(s.from.is_empty());
    }
}
