use crate::value::{SqlType, Value};

/// A column reference, possibly qualified (`lineitem.l_quantity`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Table name or alias qualifier, upper-cased; `None` when bare.
    pub table: Option<String>,
    /// Column name, upper-cased.
    pub column: String,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(ColumnRef),
    /// Binary operation (built-in or user-defined operator).
    Binary {
        /// Operator symbol or keyword (`=`, `<=`, `AND`, `LIKE`, `>>>`, …).
        op: String,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation (`NOT`, `-`).
    Unary {
        /// Operator (`NOT` or `-`).
        op: String,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (list…)` or `expr [NOT] IN (SELECT …)`.
    In {
        /// Tested expression.
        expr: Box<Expr>,
        /// Explicit list, or `None` when a subquery is used.
        list: Vec<Expr>,
        /// Subquery source, when present.
        subquery: Option<Box<Select>>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT …)`.
    Exists {
        /// The subquery.
        subquery: Box<Select>,
        /// `true` for `NOT EXISTS`.
        negated: bool,
    },
    /// A scalar subquery `(SELECT …)`.
    Subquery(Box<Select>),
    /// `CASE WHEN c THEN v [WHEN …] [ELSE e] END`.
    Case {
        /// `(condition, result)` arms.
        arms: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        otherwise: Option<Box<Expr>>,
    },
    /// Function call (scalar builtins: `SUBSTRING`, `EXTRACT`, `COALESCE`…).
    Call {
        /// Function name, upper-cased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call (`SUM`, `COUNT`, `AVG`, `MIN`, `MAX`).
    Aggregate {
        /// Aggregate name, upper-cased.
        name: String,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// `COUNT(DISTINCT x)`.
        distinct: bool,
    },
    /// Positional function parameter (`$1`) inside a UDF body.
    Param(usize),
}

/// One item in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression, or `None` for bare `*`.
    pub expr: Option<Expr>,
    /// Output column name (`AS alias`), if given.
    pub alias: Option<String>,
}

/// A table source in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name, upper-cased.
    pub name: String,
    /// Alias, upper-cased (defaults to the table name).
    pub alias: String,
    /// `LEFT JOIN … ON` condition attached to this source (`None` for the
    /// first table and comma-joined tables).
    pub left_join_on: Option<Expr>,
    /// A subquery source `(SELECT …) alias`.
    pub subquery: Option<Box<Select>>,
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression (may be an output-column ordinal `1`, `2`, …).
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `DISTINCT`.
    pub distinct: bool,
    /// `FROM` sources (empty for `SELECT 1`).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name, upper-cased.
    pub name: String,
    /// Column type.
    pub ty: SqlType,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …`
    Select(Select),
    /// `EXPLAIN [(COSTS OFF)] SELECT …`
    Explain(Select),
    /// `CREATE TABLE name (cols…)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name [(cols)] VALUES (…), (…)`
    Insert {
        /// Table name.
        table: String,
        /// Explicit column list (empty = all, in definition order).
        columns: Vec<String>,
        /// Row tuples.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE t SET col = expr, … [WHERE …]`
    Update {
        /// Table name.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE …]`
    Delete {
        /// Table name.
        table: String,
        /// Filter.
        where_clause: Option<Expr>,
    },
    /// `CREATE FUNCTION name(argtypes) RETURNS type AS 'body' LANGUAGE …`
    CreateFunction {
        /// Function name.
        name: String,
        /// Number of arguments.
        arg_count: usize,
        /// Raw body text.
        body: String,
    },
    /// `CREATE OPERATOR op (procedure=f, leftarg=…, rightarg=…, restrict=…)`
    CreateOperator {
        /// Operator symbol (e.g. `>>>`).
        symbol: String,
        /// Implementing function name.
        procedure: String,
        /// Restriction-selectivity estimator name, if declared.
        restrict: Option<String>,
    },
    /// `CREATE USER name` / `CREATE ROLE name`
    CreateUser {
        /// User name.
        name: String,
    },
    /// `GRANT SELECT ON t TO user`
    Grant {
        /// Table name.
        table: String,
        /// Grantee.
        user: String,
    },
    /// `ALTER TABLE t ENABLE ROW LEVEL SECURITY`
    EnableRls {
        /// Table name.
        table: String,
    },
    /// `CREATE POLICY p ON t USING (expr)`
    CreatePolicy {
        /// Policy name.
        name: String,
        /// Table name.
        table: String,
        /// Visibility predicate.
        using: Expr,
    },
    /// `SET key TO value` / `SET key = value`
    Set {
        /// Setting name, upper-cased.
        key: String,
        /// Raw value text.
        value: String,
    },
    /// `SHOW key`
    Show {
        /// Setting name, upper-cased.
        key: String,
    },
    /// `BEGIN` / `COMMIT` / `ROLLBACK` (transactions are no-ops in the sim).
    Transaction {
        /// The verb that was used.
        verb: String,
    },
}
