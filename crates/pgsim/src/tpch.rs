//! TPC-H workload for the paper's Figure 4.
//!
//! "We initialized each instance with a TPC-H database … The benchmark
//! specifies a database schema and 22 test queries. … We then executed all
//! the queries (except one that could not be executed in parallel)" (§V-G1).
//!
//! The generator is a deterministic, scaled-down `dbgen`: the row counts
//! keep TPC-H's relative table proportions at 1/1000 of the spec so the
//! whole suite runs in seconds inside the simulator (the paper's absolute
//! numbers are hardware-specific anyway; Figure 4 reports *normalized*
//! values). All 22 queries are expressed in the engine's SQL subset; the
//! harness runs 21 of them to mirror the paper, skipping Q17 whose
//! per-row correlated rescan is the suite's pathological case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::db::{Database, SqlError};

/// Table row counts for a given scale factor (spec counts ÷ 1000).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sizes {
    /// `region` (fixed 5).
    pub region: usize,
    /// `nation` (fixed 25).
    pub nation: usize,
    /// `supplier`.
    pub supplier: usize,
    /// `customer`.
    pub customer: usize,
    /// `part`.
    pub part: usize,
    /// `partsupp`.
    pub partsupp: usize,
    /// `orders`.
    pub orders: usize,
    /// `lineitem` (approximate; ~4 per order).
    pub lineitem: usize,
}

impl Sizes {
    /// Row counts at `sf` (1.0 ≈ 8.7 k rows total).
    pub fn at_scale(sf: f64) -> Sizes {
        let scale = |base: f64| ((base * sf).round() as usize).max(1);
        Sizes {
            region: 5,
            nation: 25,
            supplier: scale(10.0),
            customer: scale(150.0),
            part: scale(200.0),
            partsupp: scale(800.0),
            orders: scale(1500.0),
            lineitem: 0, // derived: ~4 lineitems per order
        }
    }

    /// Total rows across all tables (lineitem estimated at 4×orders).
    pub fn total(&self) -> usize {
        self.region
            + self.nation
            + self.supplier
            + self.customer
            + self.part
            + self.partsupp
            + self.orders
            + self.orders * 4
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "LARGE BRUSHED BRASS",
    "STANDARD POLISHED COPPER",
    "SMALL PLATED BRASS",
    "MEDIUM BURNISHED TIN",
    "PROMO BRUSHED NICKEL",
];
const CONTAINERS: [&str; 4] = ["SM CASE", "MED BOX", "LG CAN", "JUMBO JAR"];
const MODES: [&str; 4] = ["MAIL", "SHIP", "AIR", "TRUCK"];
const PRIORITIES: [&str; 3] = ["1-URGENT", "2-HIGH", "3-MEDIUM"];
const FLAGS: [(&str, &str); 3] = [("R", "F"), ("A", "F"), ("N", "O")];

fn date(rng: &mut StdRng, from_year: i32, to_year: i32) -> String {
    let year = rng.gen_range(from_year..=to_year);
    let month = rng.gen_range(1..=12);
    let day = rng.gen_range(1..=28);
    format!("{year:04}-{month:02}-{day:02}")
}

/// The TPC-H DDL, in the engine's SQL subset.
pub const SCHEMA: &[&str] = &[
    "CREATE TABLE region (r_regionkey INT, r_name TEXT, r_comment TEXT)",
    "CREATE TABLE nation (n_nationkey INT, n_name TEXT, n_regionkey INT, n_comment TEXT)",
    "CREATE TABLE supplier (s_suppkey INT, s_name TEXT, s_address TEXT, s_nationkey INT, \
     s_phone TEXT, s_acctbal FLOAT, s_comment TEXT)",
    "CREATE TABLE customer (c_custkey INT, c_name TEXT, c_address TEXT, c_nationkey INT, \
     c_phone TEXT, c_acctbal FLOAT, c_mktsegment TEXT, c_comment TEXT)",
    "CREATE TABLE part (p_partkey INT, p_name TEXT, p_mfgr TEXT, p_brand TEXT, p_type TEXT, \
     p_size INT, p_container TEXT, p_retailprice FLOAT, p_comment TEXT)",
    "CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_availqty INT, \
     ps_supplycost FLOAT, ps_comment TEXT)",
    "CREATE TABLE orders (o_orderkey INT, o_custkey INT, o_orderstatus TEXT, \
     o_totalprice FLOAT, o_orderdate TEXT, o_orderpriority TEXT, o_clerk TEXT, \
     o_shippriority INT, o_comment TEXT)",
    "CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, l_linenumber INT, \
     l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, \
     l_returnflag TEXT, l_linestatus TEXT, l_shipdate TEXT, l_commitdate TEXT, \
     l_receiptdate TEXT, l_shipmode TEXT, l_comment TEXT)",
];

/// Populates `db` with a deterministic TPC-H dataset at scale factor `sf`.
///
/// # Errors
///
/// Returns [`SqlError`] if DDL or inserts fail (they should not).
pub fn load(db: &mut Database, sf: f64) -> Result<(), SqlError> {
    let mut session = db.session("app");
    let sizes = Sizes::at_scale(sf);
    let mut rng = StdRng::seed_from_u64(0x7bc8_0001);
    for ddl in SCHEMA {
        db.execute(&mut session, ddl)?;
    }
    let mut insert = |db: &mut Database, table: &str, rows: Vec<String>| {
        for chunk in rows.chunks(200) {
            let sql = format!("INSERT INTO {table} VALUES {}", chunk.join(", "));
            db.execute(&mut session, &sql)?;
        }
        Ok::<(), SqlError>(())
    };

    let rows: Vec<String> = (0..sizes.region)
        .map(|i| format!("({i}, '{}', 'region comment')", REGIONS[i]))
        .collect();
    insert(db, "region", rows)?;

    let rows: Vec<String> = (0..sizes.nation)
        .map(|i| {
            let (name, region) = NATIONS[i];
            format!("({i}, '{name}', {region}, 'nation comment')")
        })
        .collect();
    insert(db, "nation", rows)?;

    let rows: Vec<String> = (0..sizes.supplier)
        .map(|i| {
            let nation = rng.gen_range(0..sizes.nation);
            let bal: f64 = rng.gen_range(-999.0..9999.0);
            let complaint = if rng.gen_ratio(1, 10) {
                "Customer Complaints"
            } else {
                "quiet"
            };
            format!(
                "({i}, 'Supplier#{i:09}', 'addr{i}', {nation}, '{:02}-555-{i:04}', \
                 {bal:.2}, '{complaint}')",
                nation + 10
            )
        })
        .collect();
    insert(db, "supplier", rows)?;

    let rows: Vec<String> = (0..sizes.customer)
        .map(|i| {
            let nation = rng.gen_range(0..sizes.nation);
            let seg = SEGMENTS[rng.gen_range(0..SEGMENTS.len())];
            let bal: f64 = rng.gen_range(-999.0..9999.0);
            format!(
                "({i}, 'Customer#{i:09}', 'addr{i}', {nation}, '{:02}-555-{i:04}', \
                 {bal:.2}, '{seg}', 'customer comment')",
                nation + 10
            )
        })
        .collect();
    insert(db, "customer", rows)?;

    let rows: Vec<String> = (0..sizes.part)
        .map(|i| {
            let ty = TYPES[rng.gen_range(0..TYPES.len())];
            let brand = format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6));
            let container = CONTAINERS[rng.gen_range(0..CONTAINERS.len())];
            let size = rng.gen_range(1..51);
            let price = 900.0 + (i % 200) as f64 + rng.gen_range(0.0..100.0);
            format!(
                "({i}, 'part {i} goldenrod', 'Manufacturer#{}', '{brand}', '{ty}', \
                 {size}, '{container}', {price:.2}, 'part comment')",
                rng.gen_range(1..6)
            )
        })
        .collect();
    insert(db, "part", rows)?;

    let rows: Vec<String> = (0..sizes.partsupp)
        .map(|i| {
            let part = i % sizes.part;
            let supp = (i / sizes.part + i) % sizes.supplier;
            let qty = rng.gen_range(1..10000);
            let cost: f64 = rng.gen_range(1.0..1000.0);
            format!("({part}, {supp}, {qty}, {cost:.2}, 'partsupp comment')")
        })
        .collect();
    insert(db, "partsupp", rows)?;

    let mut order_rows = Vec::with_capacity(sizes.orders);
    let mut line_rows = Vec::new();
    for i in 0..sizes.orders {
        let cust = rng.gen_range(0..sizes.customer);
        let odate = date(&mut rng, 1992, 1998);
        let prio = PRIORITIES[rng.gen_range(0..PRIORITIES.len())];
        let status = if odate.as_str() < "1995-06-17" {
            "F"
        } else {
            "O"
        };
        let lines = rng.gen_range(1..=7usize);
        let mut total = 0.0;
        for ln in 0..lines {
            let part = rng.gen_range(0..sizes.part);
            let supp = rng.gen_range(0..sizes.supplier);
            let qty = rng.gen_range(1..=50) as f64;
            let price = qty * rng.gen_range(900.0..2100.0);
            let discount: f64 = rng.gen_range(0.0..0.11);
            let tax: f64 = rng.gen_range(0.0..0.09);
            total += price * (1.0 - discount) * (1.0 + tax);
            let (rf, ls) = FLAGS[rng.gen_range(0..FLAGS.len())];
            let ship = date(&mut rng, 1992, 1998);
            let commit = date(&mut rng, 1992, 1998);
            let receipt = format!("{}-28", &ship[..7]);
            let mode = MODES[rng.gen_range(0..MODES.len())];
            let comment = if rng.gen_ratio(1, 20) {
                "special requests sleep"
            } else {
                "fluffy"
            };
            line_rows.push(format!(
                "({i}, {part}, {supp}, {ln}, {qty}, {price:.2}, {discount:.2}, {tax:.2}, \
                 '{rf}', '{ls}', '{ship}', '{commit}', '{receipt}', '{mode}', '{comment}')"
            ));
        }
        order_rows.push(format!(
            "({i}, {cust}, '{status}', {total:.2}, '{odate}', '{prio}', 'Clerk#{:03}', \
             0, 'order comment')",
            rng.gen_range(0..100)
        ));
    }
    insert(db, "orders", order_rows)?;
    insert(db, "lineitem", line_rows)?;
    Ok(())
}

/// One TPC-H query: number plus SQL text.
#[derive(Debug, Clone, Copy)]
pub struct TpchQuery {
    /// Query number, 1–22.
    pub number: u32,
    /// SQL text in the engine's subset.
    pub sql: &'static str,
}

/// All 22 TPC-H queries, expressed in the engine's SQL subset (dates baked
/// in; `CREATE VIEW` in Q15 rewritten as derived tables).
pub const QUERIES: [TpchQuery; 22] = [
    TpchQuery { number: 1, sql: "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, SUM(l_extendedprice) AS sum_base_price, SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, AVG(l_discount) AS avg_disc, COUNT(*) AS count_order FROM lineitem WHERE l_shipdate <= date '1998-09-02' GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus" },
    TpchQuery { number: 2, sql: "SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr FROM part p, supplier s, partsupp ps, nation n, region r WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey AND p.p_size = 15 AND p.p_type LIKE '%BRASS' AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey AND r.r_name = 'EUROPE' AND ps.ps_supplycost = (SELECT MIN(ps2.ps_supplycost) FROM partsupp ps2, supplier s2, nation n2, region r2 WHERE p.p_partkey = ps2.ps_partkey AND s2.s_suppkey = ps2.ps_suppkey AND s2.s_nationkey = n2.n_nationkey AND n2.n_regionkey = r2.r_regionkey AND r2.r_name = 'EUROPE') ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, p.p_partkey LIMIT 100" },
    TpchQuery { number: 3, sql: "SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, o.o_orderdate, o.o_shippriority FROM customer c, orders o, lineitem l WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey AND o.o_orderdate < date '1995-03-15' AND l.l_shipdate > date '1995-03-15' GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority ORDER BY revenue DESC, o_orderdate LIMIT 10" },
    TpchQuery { number: 4, sql: "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders o WHERE o.o_orderdate >= date '1993-07-01' AND o.o_orderdate < date '1993-10-01' AND EXISTS (SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey AND l.l_commitdate < l.l_receiptdate) GROUP BY o_orderpriority ORDER BY o_orderpriority" },
    TpchQuery { number: 5, sql: "SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue FROM customer c, orders o, lineitem l, supplier s, nation n, region r WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey AND r.r_name = 'ASIA' AND o.o_orderdate >= date '1994-01-01' AND o.o_orderdate < date '1995-01-01' GROUP BY n.n_name ORDER BY revenue DESC" },
    TpchQuery { number: 6, sql: "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem WHERE l_shipdate >= date '1994-01-01' AND l_shipdate < date '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24" },
    TpchQuery { number: 7, sql: "SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, EXTRACT(YEAR FROM l.l_shipdate) AS l_year, l.l_extendedprice * (1 - l.l_discount) AS volume FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2 WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey AND c.c_nationkey = n2.n_nationkey AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) AND l.l_shipdate BETWEEN date '1995-01-01' AND date '1996-12-31') shipping GROUP BY supp_nation, cust_nation, l_year ORDER BY supp_nation, cust_nation, l_year" },
    TpchQuery { number: 8, sql: "SELECT o_year, SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END) / SUM(volume) AS mkt_share FROM (SELECT EXTRACT(YEAR FROM o.o_orderdate) AS o_year, l.l_extendedprice * (1 - l.l_discount) AS volume, n2.n_name AS nation FROM part p, supplier s, lineitem l, orders o, customer c, nation n1, nation n2, region r WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey AND r.r_name = 'AMERICA' AND s.s_nationkey = n2.n_nationkey AND o.o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31' AND p.p_type = 'ECONOMY ANODIZED STEEL') all_nations GROUP BY o_year ORDER BY o_year" },
    TpchQuery { number: 9, sql: "SELECT nation, o_year, SUM(amount) AS sum_profit FROM (SELECT n.n_name AS nation, EXTRACT(YEAR FROM o.o_orderdate) AS o_year, l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity AS amount FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey AND p.p_name LIKE '%goldenrod%') profit GROUP BY nation, o_year ORDER BY nation, o_year DESC" },
    TpchQuery { number: 10, sql: "SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, c.c_acctbal, n.n_name, c.c_address, c.c_phone FROM customer c, orders o, lineitem l, nation n WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey AND o.o_orderdate >= date '1993-10-01' AND o.o_orderdate < date '1994-01-01' AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey GROUP BY c.c_custkey, c.c_name, c.c_acctbal, c.c_phone, n.n_name, c.c_address ORDER BY revenue DESC LIMIT 20" },
    TpchQuery { number: 11, sql: "SELECT ps.ps_partkey, SUM(ps.ps_supplycost * ps.ps_availqty) AS value FROM partsupp ps, supplier s, nation n WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey AND n.n_name = 'GERMANY' GROUP BY ps.ps_partkey HAVING SUM(ps.ps_supplycost * ps.ps_availqty) > (SELECT SUM(ps2.ps_supplycost * ps2.ps_availqty) * 0.01 FROM partsupp ps2, supplier s2, nation n2 WHERE ps2.ps_suppkey = s2.s_suppkey AND s2.s_nationkey = n2.n_nationkey AND n2.n_name = 'GERMANY') ORDER BY value DESC" },
    TpchQuery { number: 12, sql: "SELECT l.l_shipmode, SUM(CASE WHEN o.o_orderpriority = '1-URGENT' OR o.o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, SUM(CASE WHEN o.o_orderpriority <> '1-URGENT' AND o.o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey AND l.l_shipmode IN ('MAIL', 'SHIP') AND l.l_commitdate < l.l_receiptdate AND l.l_shipdate < l.l_commitdate AND l.l_receiptdate >= date '1994-01-01' AND l.l_receiptdate < date '1995-01-01' GROUP BY l.l_shipmode ORDER BY l.l_shipmode" },
    TpchQuery { number: 13, sql: "SELECT c_count, COUNT(*) AS custdist FROM (SELECT c.c_custkey AS c_custkey, COUNT(o.o_orderkey) AS c_count FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_comment NOT LIKE '%special%requests%' GROUP BY c.c_custkey) c_orders GROUP BY c_count ORDER BY custdist DESC, c_count DESC" },
    TpchQuery { number: 14, sql: "SELECT 100.00 * SUM(CASE WHEN p.p_type LIKE 'PROMO%' THEN l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) / SUM(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue FROM lineitem l, part p WHERE l.l_partkey = p.p_partkey AND l.l_shipdate >= date '1995-09-01' AND l.l_shipdate < date '1995-10-01'" },
    TpchQuery { number: 15, sql: "SELECT s.s_suppkey, s.s_name, s.s_address, s.s_phone, r.total_revenue FROM supplier s, (SELECT l_suppkey AS supplier_no, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue FROM lineitem WHERE l_shipdate >= date '1996-01-01' AND l_shipdate < date '1996-04-01' GROUP BY l_suppkey) r WHERE s.s_suppkey = r.supplier_no AND r.total_revenue = (SELECT MAX(r2.total_revenue) FROM (SELECT SUM(l_extendedprice * (1 - l_discount)) AS total_revenue FROM lineitem WHERE l_shipdate >= date '1996-01-01' AND l_shipdate < date '1996-04-01' GROUP BY l_suppkey) r2) ORDER BY s.s_suppkey" },
    TpchQuery { number: 16, sql: "SELECT p.p_brand, p.p_type, p.p_size, COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt FROM partsupp ps, part p WHERE p.p_partkey = ps.ps_partkey AND p.p_brand <> 'Brand#45' AND p.p_type NOT LIKE 'MEDIUM%' AND p.p_size IN (1, 4, 7, 14, 23, 36, 45, 49, 9) AND ps.ps_suppkey NOT IN (SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%') GROUP BY p.p_brand, p.p_type, p.p_size ORDER BY supplier_cnt DESC, p.p_brand, p.p_type, p.p_size" },
    TpchQuery { number: 17, sql: "SELECT SUM(l.l_extendedprice) / 7.0 AS avg_yearly FROM lineitem l, part p WHERE p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#23' AND p.p_container = 'MED BOX' AND l.l_quantity < (SELECT 0.2 * AVG(l2.l_quantity) FROM lineitem l2 WHERE l2.l_partkey = p.p_partkey)" },
    TpchQuery { number: 18, sql: "SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice, SUM(l.l_quantity) AS total_qty FROM customer c, orders o, lineitem l WHERE o.o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING SUM(l_quantity) > 150) AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice ORDER BY o.o_totalprice DESC, o.o_orderdate LIMIT 100" },
    TpchQuery { number: 19, sql: "SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue FROM lineitem l, part p WHERE p.p_partkey = l.l_partkey AND ((p.p_brand = 'Brand#12' AND p.p_container = 'SM CASE' AND l.l_quantity BETWEEN 1 AND 11 AND p.p_size BETWEEN 1 AND 5) OR (p.p_brand = 'Brand#23' AND p.p_container = 'MED BOX' AND l.l_quantity BETWEEN 10 AND 20 AND p.p_size BETWEEN 1 AND 10) OR (p.p_brand = 'Brand#34' AND p.p_container = 'LG CAN' AND l.l_quantity BETWEEN 20 AND 30 AND p.p_size BETWEEN 1 AND 15)) AND l.l_shipmode IN ('AIR', 'TRUCK')" },
    TpchQuery { number: 20, sql: "SELECT s.s_name, s.s_address FROM supplier s, nation n WHERE s.s_suppkey IN (SELECT ps_suppkey FROM partsupp WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'part%') AND ps_availqty > 100) AND s.s_nationkey = n.n_nationkey AND n.n_name = 'CANADA' ORDER BY s.s_name" },
    TpchQuery { number: 21, sql: "SELECT s.s_name, COUNT(*) AS numwait FROM supplier s, lineitem l1, orders o, nation n WHERE s.s_suppkey = l1.l_suppkey AND o.o_orderkey = l1.l_orderkey AND o.o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate AND NOT EXISTS (SELECT 1 FROM lineitem l3 WHERE l3.l_orderkey = l1.l_orderkey AND l3.l_suppkey <> l1.l_suppkey AND l3.l_receiptdate > l3.l_commitdate) AND s.s_nationkey = n.n_nationkey AND n.n_name = 'SAUDI ARABIA' GROUP BY s.s_name ORDER BY numwait DESC, s.s_name LIMIT 100" },
    TpchQuery { number: 22, sql: "SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal FROM (SELECT SUBSTRING(c.c_phone FROM 1 FOR 2) AS cntrycode, c.c_acctbal AS c_acctbal FROM customer c WHERE SUBSTRING(c.c_phone FROM 1 FOR 2) IN ('13', '31', '23', '29', '30', '18', '17') AND c.c_acctbal > (SELECT AVG(c2.c_acctbal) FROM customer c2 WHERE c2.c_acctbal > 0.00) AND NOT EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)) custsale GROUP BY cntrycode ORDER BY cntrycode" },
];

/// The query numbers the Figure 4 harness runs — 21 of 22, mirroring the
/// paper ("all the queries except one").
pub fn benchmark_query_numbers() -> Vec<u32> {
    QUERIES
        .iter()
        .map(|q| q.number)
        .filter(|&n| n != 17)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PgVersion;

    fn loaded(sf: f64) -> Database {
        let mut db = Database::new(PgVersion::parse("10.7").unwrap());
        load(&mut db, sf).unwrap();
        db
    }

    #[test]
    fn load_is_deterministic() {
        let mut a = loaded(0.2);
        let mut b = loaded(0.2);
        let mut sa = a.session("app");
        let mut sb = b.session("app");
        let q = "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem";
        let ra = a.execute(&mut sa, q).unwrap();
        let rb = b.execute(&mut sb, q).unwrap();
        assert_eq!(ra.rows, rb.rows);
    }

    #[test]
    fn sizes_scale_proportionally() {
        let s = Sizes::at_scale(2.0);
        assert_eq!(s.region, 5);
        assert_eq!(s.customer, 300);
        assert_eq!(s.orders, 3000);
        assert!(Sizes::at_scale(0.001).supplier >= 1);
    }

    #[test]
    fn all_22_queries_parse_and_run() {
        let mut db = loaded(0.1);
        let mut session = db.session("app");
        for q in QUERIES {
            let result = db.execute(&mut session, q.sql);
            assert!(result.is_ok(), "Q{} failed: {:?}", q.number, result.err());
        }
    }

    #[test]
    fn q1_aggregates_have_expected_shape() {
        let mut db = loaded(0.2);
        let mut session = db.session("app");
        let r = db.execute(&mut session, QUERIES[0].sql).unwrap();
        assert_eq!(r.columns.len(), 10);
        assert!(!r.rows.is_empty());
        assert!(
            r.rows.len() <= 6,
            "at most |returnflag| x |linestatus| groups"
        );
    }

    #[test]
    fn q6_revenue_is_positive() {
        let mut db = loaded(0.2);
        let mut session = db.session("app");
        let r = db.execute(&mut session, QUERIES[5].sql).unwrap();
        let revenue = r.rows[0][0].as_f64().unwrap_or(0.0);
        assert!(revenue > 0.0, "some 1994 lineitems must match");
    }

    #[test]
    fn benchmark_set_has_21_queries() {
        let set = benchmark_query_numbers();
        assert_eq!(set.len(), 21);
        assert!(!set.contains(&17));
    }
}
