//! Glue between MiniPg and the `rddr-pgstore` storage engines: the value
//! codec, the catalog blob, per-instance engine selection, and the adapter
//! that feeds `rddr-net`'s seeded fault plan into the simulated disk.
//!
//! The executor ([`crate::Database`]) runs against `rddr_pgstore::Storage`
//! and never sees which engine is underneath. [`StorageEngine`] is the
//! per-instance knob — parsed from a spec string like `"memory"` or
//! `"paged:shadow-discard"` (the scenario config's `[storage]` section) —
//! so an RDDR deployment can mix engines, or mix *recovery policies* of
//! the same engine, behind one wire protocol.

use std::sync::Arc;

use rddr_net::{FaultPlan, StorageFault};
use rddr_pgstore::disk::DiskFaults;
use rddr_pgstore::{
    MemStore, PagedStore, RecoveryPolicy, RecoveryStats, Storage, StoreError, TupleCodec, VDisk,
};

use crate::ast::ColumnDef;
use crate::db::SqlError;
use crate::value::{SqlType, Value};

/// The boxed storage type [`crate::Database`] executes against.
pub(crate) type DynStorage = Box<dyn Storage<Vec<Value>> + Send>;

/// Simulated heap bytes one row occupies (per-value payload plus a 24-byte
/// row header) — the figure the memory meter charges.
pub(crate) fn row_bytes(row: &[Value]) -> u64 {
    row.iter()
        .map(|v| match v {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(t) => 16 + t.len() as u64,
        })
        .sum::<u64>()
        + 24 // per-row header
}

/// Maps MiniPg rows (`Vec<Value>`) to tuple bytes, index keys, and heap
/// accounting for the storage engines.
///
/// Encoding (little-endian): value count `u16`, then per value a tag byte —
/// 0 `NULL`, 1 `Int` (+8 bytes), 2 `Float` (+8 bytes bits), 3 `Bool`
/// (+1 byte), 4 `Text` (+len `u32` + bytes).
pub struct ValueCodec;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_TEXT: u8 = 4;

impl TupleCodec<Vec<Value>> for ValueCodec {
    fn encode(&self, row: &Vec<Value>, out: &mut Vec<u8>) {
        out.extend_from_slice(&(row.len() as u16).to_le_bytes());
        for v in row {
            match v {
                Value::Null => out.push(TAG_NULL),
                Value::Int(i) => {
                    out.push(TAG_INT);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    out.push(TAG_FLOAT);
                    out.extend_from_slice(&f.to_bits().to_le_bytes());
                }
                Value::Bool(b) => {
                    out.push(TAG_BOOL);
                    out.push(u8::from(*b));
                }
                Value::Text(t) => {
                    out.push(TAG_TEXT);
                    out.extend_from_slice(&(t.len() as u32).to_le_bytes());
                    out.extend_from_slice(t.as_bytes());
                }
            }
        }
    }

    fn decode(&self, bytes: &[u8]) -> Result<Vec<Value>, StoreError> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], StoreError> {
            let out = bytes
                .get(pos..pos + n)
                .ok_or_else(|| StoreError::Corrupt("row tuple underrun".into()))?;
            pos += n;
            Ok(out)
        };
        let mut u16buf = [0u8; 2];
        u16buf.copy_from_slice(take(2)?);
        let count = u16::from_le_bytes(u16buf) as usize;
        let mut row = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = take(1)?.first().copied().unwrap_or(TAG_NULL);
            row.push(match tag {
                TAG_NULL => Value::Null,
                TAG_INT => {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(take(8)?);
                    Value::Int(i64::from_le_bytes(b))
                }
                TAG_FLOAT => {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(take(8)?);
                    Value::Float(f64::from_bits(u64::from_le_bytes(b)))
                }
                TAG_BOOL => Value::Bool(take(1)?.first().copied().unwrap_or(0) != 0),
                TAG_TEXT => {
                    let mut b = [0u8; 4];
                    b.copy_from_slice(take(4)?);
                    let len = u32::from_le_bytes(b) as usize;
                    let text = String::from_utf8(take(len)?.to_vec())
                        .map_err(|_| StoreError::Corrupt("row text not UTF-8".into()))?;
                    Value::Text(text)
                }
                other => {
                    return Err(StoreError::Corrupt(format!("unknown value tag {other}")));
                }
            });
        }
        Ok(row)
    }

    fn key(&self, row: &Vec<Value>) -> Vec<u8> {
        // The first column's grouping key — identical to the executor's
        // historical `BTreeMap<String, _>` point-lookup index keys.
        row.first()
            .map(|v| v.group_key().into_bytes())
            .unwrap_or_default()
    }

    fn heap_bytes(&self, row: &Vec<Value>) -> u64 {
        row_bytes(row)
    }
}

/// Serializes the catalog blob stored next to each table: owner, then one
/// `NAME\tTYPE` line per column. This is what crash recovery hands back so
/// [`crate::Database`] can rebuild its catalog (RLS state, policies,
/// grants, and UDFs are session/catalog state and deliberately *not*
/// durable — matching how the scenarios re-apply schema policy on boot).
pub(crate) fn encode_table_meta(owner: &str, columns: &[ColumnDef]) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(owner);
    for c in columns {
        out.push('\n');
        out.push_str(&c.name);
        out.push('\t');
        out.push_str(match c.ty {
            SqlType::Int => "INT",
            SqlType::Float => "FLOAT",
            SqlType::Text => "TEXT",
            SqlType::Bool => "BOOL",
        });
    }
    out.into_bytes()
}

/// Parses a catalog blob back into `(owner, columns)`.
pub(crate) fn decode_table_meta(meta: &[u8]) -> Result<(String, Vec<ColumnDef>), SqlError> {
    let text = std::str::from_utf8(meta)
        .map_err(|_| SqlError::Exec("storage: catalog blob not UTF-8".into()))?;
    let mut lines = text.split('\n');
    let owner = lines.next().unwrap_or_default().to_string();
    let mut columns = Vec::new();
    for line in lines {
        let (name, ty) = line
            .split_once('\t')
            .ok_or_else(|| SqlError::Exec(format!("storage: bad catalog column {line:?}")))?;
        let ty = match ty {
            "INT" => SqlType::Int,
            "FLOAT" => SqlType::Float,
            "TEXT" => SqlType::Text,
            "BOOL" => SqlType::Bool,
            other => {
                return Err(SqlError::Exec(format!(
                    "storage: bad catalog type {other:?}"
                )));
            }
        };
        columns.push(ColumnDef {
            name: name.to_string(),
            ty,
        });
    }
    Ok((owner, columns))
}

/// Which storage backend an instance runs — the per-instance diversity
/// knob the scenario config's `[storage]` section selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageEngine {
    /// The original in-memory engine; restart loses everything.
    #[default]
    InMemory,
    /// The paged engine: WAL + heap pages on a simulated disk, recovering
    /// under the given policy after a crash.
    Paged {
        /// How recovery treats a torn WAL tail.
        policy: RecoveryPolicy,
    },
}

impl StorageEngine {
    /// Parses a spec string: `"memory"`, `"paged"` (replay-forward),
    /// `"paged:replay-forward"`, or `"paged:shadow-discard"`.
    ///
    /// # Errors
    ///
    /// [`SqlError::Parse`] on an unknown spec.
    pub fn parse(spec: &str) -> Result<Self, SqlError> {
        let spec = spec.trim();
        match spec.to_ascii_lowercase().as_str() {
            "memory" | "in-memory" | "mem" => Ok(Self::InMemory),
            "paged" => Ok(Self::Paged {
                policy: RecoveryPolicy::ReplayForward,
            }),
            other => match other.strip_prefix("paged:").and_then(RecoveryPolicy::parse) {
                Some(policy) => Ok(Self::Paged { policy }),
                None => Err(SqlError::Parse(format!("unknown storage engine {spec:?}"))),
            },
        }
    }

    /// The canonical spec string.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::InMemory => "memory",
            Self::Paged {
                policy: RecoveryPolicy::ReplayForward,
            } => "paged:replay-forward",
            Self::Paged {
                policy: RecoveryPolicy::ShadowDiscard,
            } => "paged:shadow-discard",
        }
    }
}

impl std::fmt::Display for StorageEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Opens a storage backend per `engine`. The [`VDisk`] carries state across
/// instance restarts (clone it into each respawn); in-memory engines ignore
/// it. Returns the backend plus the recovery stats if a WAL was replayed.
///
/// # Errors
///
/// [`SqlError::Exec`] when WAL replay finds interior corruption.
pub fn open_storage(
    engine: StorageEngine,
    disk: &VDisk,
) -> Result<(DynStorage, Option<RecoveryStats>), SqlError> {
    match engine {
        StorageEngine::InMemory => Ok((Box::new(MemStore::new(ValueCodec)), None)),
        StorageEngine::Paged { policy } => {
            let store = PagedStore::open(disk.clone(), ValueCodec, policy)
                .map_err(|e| SqlError::Exec(format!("storage: {e}")))?;
            let stats = store.recovery_stats();
            Ok((Box::new(store), Some(stats)))
        }
    }
}

/// Adapts `rddr-net`'s seeded [`FaultPlan`] into `rddr-pgstore`'s
/// [`DiskFaults`] hook: one shared fault schedule drives network *and*
/// storage faults, so a chaos seed reproduces both.
#[derive(Clone)]
pub struct PlanDiskFaults {
    plan: FaultPlan,
    target: String,
}

impl PlanDiskFaults {
    /// Draws faults for `target`'s disk from `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan, target: impl Into<String>) -> Self {
        Self {
            plan,
            target: target.into(),
        }
    }

    /// Builds a [`VDisk`] named `target` whose faults come from the plan.
    #[must_use]
    pub fn disk(plan: FaultPlan, target: &str) -> VDisk {
        VDisk::with_faults(target, Arc::new(Self::new(plan, target)))
    }
}

impl DiskFaults for PlanDiskFaults {
    fn torn_page(&self, _disk: &str, file: &str, seq: u64) -> bool {
        self.plan
            .storage_fault(&self.target, file, StorageFault::TornPage, seq)
    }

    fn lost_fsync(&self, _disk: &str, file: &str, seq: u64) -> bool {
        self.plan
            .storage_fault(&self.target, file, StorageFault::LostFsync, seq)
    }

    fn truncate_tail(&self, _disk: &str, file: &str, seq: u64) -> bool {
        self.plan
            .storage_fault(&self.target, file, StorageFault::TruncatedWalTail, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rddr_net::ConnSelector;

    #[test]
    fn codec_round_trips_every_value_kind() {
        let codec = ValueCodec;
        let row = vec![
            Value::Int(-42),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
            Value::Text("naïve ✓".into()),
        ];
        let mut bytes = Vec::new();
        codec.encode(&row, &mut bytes);
        assert_eq!(codec.decode(&bytes).unwrap(), row);
        assert_eq!(codec.heap_bytes(&row), row_bytes(&row));
    }

    #[test]
    fn codec_key_matches_group_key_semantics() {
        let codec = ValueCodec;
        // 2 and 2.0 group together, matching the executor's index keys.
        assert_eq!(
            codec.key(&vec![Value::Int(2)]),
            codec.key(&vec![Value::Float(2.0)])
        );
        assert_ne!(
            codec.key(&vec![Value::Int(2)]),
            codec.key(&vec![Value::Text("2".into())])
        );
        assert!(codec.key(&Vec::new()).is_empty());
    }

    #[test]
    fn corrupt_tuples_error_not_panic() {
        let codec = ValueCodec;
        assert!(codec.decode(&[]).is_err());
        assert!(codec.decode(&[5, 0, 99]).is_err());
        let mut bytes = Vec::new();
        codec.encode(&vec![Value::Text("hello".into())], &mut bytes);
        bytes.truncate(bytes.len() - 2);
        assert!(codec.decode(&bytes).is_err());
    }

    #[test]
    fn table_meta_round_trips() {
        let columns = vec![
            ColumnDef {
                name: "AID".into(),
                ty: SqlType::Int,
            },
            ColumnDef {
                name: "NOTE".into(),
                ty: SqlType::Text,
            },
        ];
        let meta = encode_table_meta("APP", &columns);
        let (owner, back) = decode_table_meta(&meta).unwrap();
        assert_eq!(owner, "APP");
        assert_eq!(back, columns);
    }

    #[test]
    fn engine_specs_parse_and_render() {
        assert_eq!(
            StorageEngine::parse("memory").unwrap(),
            StorageEngine::InMemory
        );
        assert_eq!(
            StorageEngine::parse("paged").unwrap().as_str(),
            "paged:replay-forward"
        );
        assert_eq!(
            StorageEngine::parse("paged:shadow-discard").unwrap(),
            StorageEngine::Paged {
                policy: RecoveryPolicy::ShadowDiscard
            }
        );
        assert!(StorageEngine::parse("floppy").is_err());
        let e = StorageEngine::parse("paged:replay-forward").unwrap();
        assert_eq!(StorageEngine::parse(e.as_str()).unwrap(), e);
    }

    #[test]
    fn plan_faults_reach_the_disk() {
        let plan = FaultPlan::new(99);
        plan.storage_inject(
            "db-2",
            Some("wal"),
            ConnSelector::Nth(0),
            StorageFault::TruncatedWalTail,
        );
        let disk = PlanDiskFaults::disk(plan.clone(), "db-2");
        disk.append("wal", &[0u8; 64]);
        disk.fsync("wal");
        disk.crash();
        // The tail truncation kept only the torn stub of the last append.
        assert_eq!(disk.len("wal"), rddr_pgstore::disk::TORN_TAIL_KEEP as u64);
        assert_eq!(plan.stats().truncated_tails, 1);
        // A different target draws nothing.
        let other = PlanDiskFaults::disk(plan.clone(), "db-1");
        other.append("wal", &[0u8; 64]);
        other.fsync("wal");
        other.crash();
        assert_eq!(other.len("wal"), 64);
    }
}
