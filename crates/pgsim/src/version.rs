use std::fmt;
use std::str::FromStr;

use crate::db::SqlError;

/// A PostgreSQL-style version number with CVE gates.
///
/// Version diversity (§V-D of the paper) hinges on specific fixes:
///
/// * **CVE-2017-7484** — selectivity estimators ran user-defined operator
///   functions without privilege checks. Fixed in 9.2.21 / 9.3.17 / 9.4.12 /
///   9.5.7 / 9.6.3 and all 10+ releases.
/// * **CVE-2019-10130** — the planner pushed non-leakproof user-defined
///   operators below row-level-security filters. Affects 9.5.0–9.5.17,
///   9.6.0–9.6.13, 10.0–10.8, 11.0–11.3; the paper deploys 10.7 (buggy)
///   next to 10.9 (fixed).
///
/// # Examples
///
/// ```
/// use rddr_pgsim::PgVersion;
///
/// let buggy = PgVersion::parse("10.7").unwrap();
/// let fixed = PgVersion::parse("10.9").unwrap();
/// assert!(buggy.leaks_rls_rows());
/// assert!(!fixed.leaks_rls_rows());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PgVersion {
    /// Major version (9, 10, 11, …).
    pub major: u32,
    /// Minor version. For the 9.x series this is the second component
    /// (9.2), with `patch` holding the third.
    pub minor: u32,
    /// Patch level (9.2.**20**); zero for two-component versions.
    pub patch: u32,
}

impl PgVersion {
    /// Parses `"10.7"` or `"9.2.20"`.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::Parse`] on malformed version strings.
    pub fn parse(s: &str) -> Result<Self, SqlError> {
        let mut parts = s.split('.');
        let mut next = |name: &str| -> Result<u32, SqlError> {
            parts
                .next()
                .unwrap_or("0")
                .parse()
                .map_err(|_| SqlError::Parse(format!("bad version {name} in {s:?}")))
        };
        let major = next("major")?;
        let minor = next("minor")?;
        let patch = next("patch")?;
        Ok(Self {
            major,
            minor,
            patch,
        })
    }

    /// CVE-2017-7484 gate: whether the planner leaks table contents through
    /// selectivity estimation without privilege checks.
    pub fn leaks_planner_stats(&self) -> bool {
        match (self.major, self.minor) {
            (9, 2) => self.patch < 21,
            (9, 3) => self.patch < 17,
            (9, 4) => self.patch < 12,
            (9, 5) => self.patch < 7,
            (9, 6) => self.patch < 3,
            _ => false,
        }
    }

    /// CVE-2019-10130 gate: whether non-leakproof user-defined operators are
    /// pushed below row-level-security filters.
    pub fn leaks_rls_rows(&self) -> bool {
        match self.major {
            9 => matches!(self.minor, 5 | 6) && self.patch < if self.minor == 5 { 18 } else { 14 },
            10 => self.minor < 9,
            11 => self.minor < 4,
            _ => false,
        }
    }
}

impl fmt::Display for PgVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.major >= 10 {
            write!(f, "{}.{}", self.major, self.minor)
        } else {
            write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
        }
    }
}

impl FromStr for PgVersion {
    type Err = SqlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        assert_eq!(PgVersion::parse("10.7").unwrap().to_string(), "10.7");
        assert_eq!(PgVersion::parse("9.2.20").unwrap().to_string(), "9.2.20");
    }

    #[test]
    fn cve_7484_gate() {
        assert!(PgVersion::parse("9.2.20").unwrap().leaks_planner_stats());
        assert!(!PgVersion::parse("9.2.21").unwrap().leaks_planner_stats());
        assert!(!PgVersion::parse("10.7").unwrap().leaks_planner_stats());
    }

    #[test]
    fn cve_10130_gate() {
        assert!(PgVersion::parse("10.7").unwrap().leaks_rls_rows());
        assert!(PgVersion::parse("10.8").unwrap().leaks_rls_rows());
        assert!(!PgVersion::parse("10.9").unwrap().leaks_rls_rows());
        assert!(PgVersion::parse("11.3").unwrap().leaks_rls_rows());
        assert!(!PgVersion::parse("11.4").unwrap().leaks_rls_rows());
        assert!(!PgVersion::parse("12.0").unwrap().leaks_rls_rows());
    }

    #[test]
    fn malformed_versions_error() {
        assert!(PgVersion::parse("ten").is_err());
        assert!(PgVersion::parse("10.x").is_err());
    }

    #[test]
    fn versions_order() {
        assert!(PgVersion::parse("10.7").unwrap() < PgVersion::parse("10.9").unwrap());
    }
}
