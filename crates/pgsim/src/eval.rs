//! Expression evaluation.

use std::cell::{Cell, RefCell};

use crate::ast::{ColumnRef, Expr, Select};
use crate::db::{Database, Session, SqlError};
use crate::value::Value;

/// A row environment: flat schema of `(table-alias, column)` pairs plus the
/// current row's values. `parent` links to the outer query's environment for
/// correlated subqueries.
pub(crate) struct Env<'a> {
    pub schema: &'a [(String, String)],
    pub row: &'a [Value],
    pub parent: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    pub fn lookup(&self, col: &ColumnRef) -> Option<Value> {
        for (i, (alias, name)) in self.schema.iter().enumerate() {
            if name == &col.column && col.table.as_ref().is_none_or(|t| t == alias) {
                // The row can be narrower than the schema when an aggregate
                // output row is evaluated against the source-table schema
                // (e.g. `SELECT COUNT(*) .. ORDER BY col`): treat the
                // unmaterialized column as unresolvable rather than panic.
                if let Some(v) = self.row.get(i) {
                    return Some(v.clone());
                }
            }
        }
        self.parent.and_then(|p| p.lookup(col))
    }
}

/// Shared, interior-mutable execution context for one statement.
pub(crate) struct ExecCtx<'a> {
    pub db: &'a Database,
    pub session: &'a Session,
    pub notices: RefCell<Vec<String>>,
    pub scanned: Cell<u64>,
}

impl<'a> ExecCtx<'a> {
    pub fn new(db: &'a Database, session: &'a Session) -> Self {
        Self {
            db,
            session,
            notices: RefCell::new(Vec::new()),
            scanned: Cell::new(0),
        }
    }

    pub fn notice(&self, text: String) {
        self.notices.borrow_mut().push(text);
    }

    pub fn charge_scan(&self, rows: u64) {
        self.scanned.set(self.scanned.get() + rows);
    }
}

/// Evaluates a scalar expression against a row environment.
pub(crate) fn eval(ctx: &ExecCtx<'_>, expr: &Expr, env: &Env<'_>) -> Result<Value, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => env.lookup(c).map_or_else(
            || {
                if c.table.is_none() && c.column == "CURRENT_USER" {
                    Ok(Value::Text(ctx.session.user.to_ascii_lowercase()))
                } else {
                    Err(SqlError::Exec(format!(
                        "column {} does not exist",
                        match &c.table {
                            Some(t) => format!("{t}.{}", c.column),
                            None => c.column.clone(),
                        }
                    )))
                }
            },
            Ok,
        ),
        Expr::Binary { op, left, right } => {
            // Short-circuit three-valued logic for AND/OR.
            match op.as_str() {
                "AND" => {
                    let l = eval(ctx, left, env)?;
                    if matches!(l, Value::Bool(false)) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(ctx, right, env)?;
                    return Ok(match (l, r) {
                        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                        (_, Value::Bool(false)) => Value::Bool(false),
                        _ => Value::Null,
                    });
                }
                "OR" => {
                    let l = eval(ctx, left, env)?;
                    if matches!(l, Value::Bool(true)) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(ctx, right, env)?;
                    return Ok(match (l, r) {
                        (_, Value::Bool(true)) => Value::Bool(true),
                        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                        _ => Value::Null,
                    });
                }
                _ => {}
            }
            let l = eval(ctx, left, env)?;
            let r = eval(ctx, right, env)?;
            eval_binary(ctx, op, l, r)
        }
        Expr::Unary { op, expr } => {
            let v = eval(ctx, expr, env)?;
            match op.as_str() {
                "NOT" => Ok(match v {
                    Value::Bool(b) => Value::Bool(!b),
                    Value::Null => Value::Null,
                    other => {
                        return Err(SqlError::Exec(format!(
                            "NOT applied to non-boolean {other}"
                        )))
                    }
                }),
                "-" => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Null => Ok(Value::Null),
                    other => Err(SqlError::Exec(format!("cannot negate {other}"))),
                },
                other => Err(SqlError::Exec(format!("unknown unary operator {other}"))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, expr, env)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Between { expr, low, high } => {
            let v = eval(ctx, expr, env)?;
            let lo = eval(ctx, low, env)?;
            let hi = eval(ctx, high, env)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => Ok(Value::Bool(
                    a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater,
                )),
                _ => Ok(Value::Null),
            }
        }
        Expr::In {
            expr,
            list,
            subquery,
            negated,
        } => {
            let v = eval(ctx, expr, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            if let Some(sub) = subquery {
                let rows = run_subquery(ctx, sub, env)?;
                for row in &rows {
                    if v.sql_eq(row.first().unwrap_or(&Value::Null)) == Some(true) {
                        found = true;
                        break;
                    }
                }
            } else {
                for item in list {
                    let item = eval(ctx, item, env)?;
                    if v.sql_eq(&item) == Some(true) {
                        found = true;
                        break;
                    }
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Exists { subquery, negated } => {
            let rows = run_subquery(ctx, subquery, env)?;
            Ok(Value::Bool(rows.is_empty() == *negated))
        }
        Expr::Subquery(sub) => {
            let rows = run_subquery(ctx, sub, env)?;
            match rows.first() {
                Some(row) => Ok(row.first().cloned().unwrap_or(Value::Null)),
                None => Ok(Value::Null),
            }
        }
        Expr::Case { arms, otherwise } => {
            for (cond, result) in arms {
                if eval(ctx, cond, env)?.is_truthy() {
                    return eval(ctx, result, env);
                }
            }
            match otherwise {
                Some(e) => eval(ctx, e, env),
                None => Ok(Value::Null),
            }
        }
        Expr::Call { name, args } => eval_call(ctx, name, args, env),
        Expr::Aggregate { name, .. } => Err(SqlError::Exec(format!(
            "aggregate {name} used outside of a grouped context"
        ))),
        Expr::Param(i) => Err(SqlError::Exec(format!("unbound parameter ${i}"))),
    }
}

fn run_subquery(
    ctx: &ExecCtx<'_>,
    sub: &Select,
    env: &Env<'_>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let result = crate::exec::run_select(ctx, sub, Some(env))?;
    Ok(result.rows)
}

fn eval_binary(ctx: &ExecCtx<'_>, op: &str, l: Value, r: Value) -> Result<Value, SqlError> {
    match op {
        "=" => Ok(tri(l.sql_eq(&r))),
        "<>" | "!=" => Ok(tri(l.sql_eq(&r).map(|b| !b))),
        "<" => Ok(tri(l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Less))),
        "<=" => Ok(tri(l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Greater))),
        ">" => Ok(tri(l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Greater))),
        ">=" => Ok(tri(l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Less))),
        "+" | "-" | "*" | "/" | "%" => arith(op, l, r),
        "||" => {
            if l.is_null() || r.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Text(format!("{l}{r}")))
            }
        }
        "LIKE" => {
            let (Value::Text(s), Value::Text(p)) = (&l, &r) else {
                return Ok(Value::Null);
            };
            Ok(Value::Bool(like_match(s.as_bytes(), p.as_bytes())))
        }
        custom => {
            // User-defined operator: resolve to its implementing function.
            let f = ctx
                .db
                .operator_function(custom)
                .ok_or_else(|| SqlError::Exec(format!("operator does not exist: {custom}")))?;
            crate::db::call_pl_function(ctx, &f, &[l, r])
        }
    }
}

fn tri(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn arith(op: &str, l: Value, r: Value) -> Result<Value, SqlError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        return match op {
            "+" => Ok(Value::Int(a.wrapping_add(*b))),
            "-" => Ok(Value::Int(a.wrapping_sub(*b))),
            "*" => Ok(Value::Int(a.wrapping_mul(*b))),
            "/" => {
                if *b == 0 {
                    Err(SqlError::Exec("division by zero".into()))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            "%" => {
                if *b == 0 {
                    Err(SqlError::Exec("division by zero".into()))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!(),
        };
    }
    let (a, b) = (
        l.as_f64()
            .ok_or_else(|| SqlError::Exec(format!("non-numeric operand {l}")))?,
        r.as_f64()
            .ok_or_else(|| SqlError::Exec(format!("non-numeric operand {r}")))?,
    );
    match op {
        "+" => Ok(Value::Float(a + b)),
        "-" => Ok(Value::Float(a - b)),
        "*" => Ok(Value::Float(a * b)),
        "/" => {
            if b == 0.0 {
                Err(SqlError::Exec("division by zero".into()))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        "%" => Ok(Value::Float(a % b)),
        _ => unreachable!(),
    }
}

/// SQL `LIKE`: `%` matches any run, `_` matches one character.
pub(crate) fn like_match(s: &[u8], p: &[u8]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some(b'%') => (0..=s.len()).any(|k| like_match(&s[k..], &p[1..])),
        Some(b'_') => !s.is_empty() && like_match(&s[1..], &p[1..]),
        Some(&c) => s.first() == Some(&c) && like_match(&s[1..], &p[1..]),
    }
}

fn eval_call(
    ctx: &ExecCtx<'_>,
    name: &str,
    args: &[Expr],
    env: &Env<'_>,
) -> Result<Value, SqlError> {
    let vals: Vec<Value> = args
        .iter()
        .map(|a| eval(ctx, a, env))
        .collect::<Result<_, _>>()?;
    match name {
        "COALESCE" => Ok(vals
            .into_iter()
            .find(|v| !v.is_null())
            .unwrap_or(Value::Null)),
        "LENGTH" => match vals.first() {
            Some(Value::Text(s)) => Ok(Value::Int(s.chars().count() as i64)),
            Some(Value::Null) | None => Ok(Value::Null),
            Some(other) => Err(SqlError::Exec(format!("length of non-text {other}"))),
        },
        "UPPER" => text_fn(&vals, |s| s.to_uppercase()),
        "LOWER" => text_fn(&vals, |s| s.to_lowercase()),
        "ABS" => match vals.first() {
            Some(Value::Int(i)) => Ok(Value::Int(i.abs())),
            Some(Value::Float(f)) => Ok(Value::Float(f.abs())),
            Some(Value::Null) | None => Ok(Value::Null),
            Some(other) => Err(SqlError::Exec(format!("abs of non-number {other}"))),
        },
        "ROUND" => {
            let x = vals
                .first()
                .and_then(Value::as_f64)
                .ok_or_else(|| SqlError::Exec("round needs a number".into()))?;
            let digits = vals.get(1).and_then(Value::as_i64).unwrap_or(0);
            let scale = 10f64.powi(digits as i32);
            Ok(Value::Float((x * scale).round() / scale))
        }
        "EXTRACT_YEAR" => match vals.first() {
            Some(Value::Text(s)) if s.len() >= 4 => s[..4]
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| SqlError::Exec(format!("cannot extract year from {s:?}"))),
            _ => Ok(Value::Null),
        },
        "SUBSTRING" => {
            let Some(Value::Text(s)) = vals.first() else {
                return Ok(Value::Null);
            };
            let from = vals.get(1).and_then(Value::as_i64).unwrap_or(1).max(1) as usize;
            let chars: Vec<char> = s.chars().collect();
            let start = from - 1;
            let len = vals
                .get(2)
                .and_then(Value::as_i64)
                .map(|l| l.max(0) as usize)
                .unwrap_or(chars.len().saturating_sub(start));
            let out: String = chars.iter().skip(start).take(len).collect();
            Ok(Value::Text(out))
        }
        other => {
            // User-defined function call.
            if let Some(f) = ctx.db.function(other) {
                return crate::db::call_pl_function(ctx, &f, &vals);
            }
            Err(SqlError::Exec(format!("function does not exist: {other}")))
        }
    }
}

fn text_fn(vals: &[Value], f: impl Fn(&str) -> String) -> Result<Value, SqlError> {
    match vals.first() {
        Some(Value::Text(s)) => Ok(Value::Text(f(s))),
        Some(Value::Null) | None => Ok(Value::Null),
        Some(other) => Err(SqlError::Exec(format!("text function on {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_patterns() {
        assert!(like_match(b"PROMO BRUSHED", b"PROMO%"));
        assert!(like_match(b"abc", b"a_c"));
        assert!(!like_match(b"abc", b"a_d"));
        assert!(like_match(b"", b"%"));
        assert!(like_match(b"special%case", b"special%case"));
    }
}
