//! The database catalog and statement executor.
//!
//! Since the storage split, the executor owns only the *catalog* (column
//! definitions, ownership, privileges, row security) and runs all row
//! access through an `rddr_pgstore::Storage` backend — in-memory or paged
//! — chosen per instance via [`crate::storage::StorageEngine`]. Every
//! mutation is transactional: explicit `BEGIN`/`COMMIT`/`ROLLBACK` map to
//! storage transactions, and standalone mutations are wrapped in an
//! implicit one, so on the paged engine every change reaches the WAL with
//! a commit record.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rddr_pgstore::{RecoveryStats, StoreError, VDisk};

use crate::ast::{ColumnDef, Expr, Select, Statement};
use crate::eval::{eval, Env, ExecCtx};
use crate::exec::run_select;
use crate::parser::parse_statement;
use crate::storage::{
    decode_table_meta, encode_table_meta, open_storage, DynStorage, StorageEngine,
};
use crate::value::{SqlType, Value};
use crate::version::PgVersion;

/// Errors produced by the SQL engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Syntax error.
    Parse(String),
    /// Runtime/semantic error.
    Exec(String),
    /// Privilege violation.
    PermissionDenied(String),
    /// Feature not implemented by this flavor (CockroachDB rejects
    /// user-defined functions and operators, §V-C2 of the paper).
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(s) => write!(f, "syntax error: {s}"),
            SqlError::Exec(s) => write!(f, "error: {s}"),
            SqlError::PermissionDenied(s) => write!(f, "permission denied for {s}"),
            SqlError::Unsupported(s) => write!(f, "unimplemented: {s}"),
        }
    }
}

impl std::error::Error for SqlError {}

fn store_err(e: StoreError) -> SqlError {
    SqlError::Exec(format!("storage: {e}"))
}

/// Which database product this engine is impersonating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbFlavor {
    /// MiniPg — PostgreSQL-shaped, with version-gated CVE behaviour.
    Postgres,
    /// MiniCockroach — same wire protocol and SQL core, different
    /// capabilities (see [`CockroachFlavor`]).
    Cockroach(CockroachFlavor),
}

/// CockroachDB-specific behaviour switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CockroachFlavor {
    /// The version banner, e.g. `CockroachDB CCL v19.1.0`.
    pub version_banner: String,
    /// When `true`, rows of un-`ORDER BY`ed scans come back in reverse
    /// insertion order — the "unspecified row order" pitfall the paper had
    /// to configure around (§V-C2). Off by default so benign traffic
    /// matches Postgres.
    pub scramble_row_order: bool,
}

impl Default for CockroachFlavor {
    fn default() -> Self {
        Self {
            version_banner: "CockroachDB CCL v19.1.0".into(),
            scramble_row_order: false,
        }
    }
}

/// A user-defined (plpgsql-lite) function: the subset the CVE exploit
/// listings use — an optional `RAISE NOTICE` followed by `RETURN $1 <op> $2`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlFunction {
    name: String,
    arg_count: usize,
    /// `RAISE NOTICE 'template', $a, $b` — template plus argument indices.
    notice: Option<(String, Vec<usize>)>,
    /// `RETURN $1 <op> $2` comparison operator, if any.
    return_op: Option<String>,
}

/// A user-defined operator.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Operator {
    procedure: String,
    restrict: Option<String>,
}

/// One table's catalog entry. Rows live in the storage backend; this is
/// the schema-and-privileges half the executor still owns. Recovery
/// rebuilds `columns`/`owner` from the storage catalog blob; RLS state,
/// policies and grants are deliberately not durable (scenarios re-apply
/// schema policy on boot, like init scripts).
#[derive(Debug, Clone)]
struct Table {
    columns: Vec<ColumnDef>,
    owner: String,
    rls_enabled: bool,
    policies: Vec<Expr>,
    select_grants: BTreeSet<String>,
}

/// A client session: the authenticated user plus session settings.
#[derive(Debug, Clone)]
pub struct Session {
    /// Authenticated user (upper-cased, like identifiers).
    pub user: String,
    settings: BTreeMap<String, String>,
}

impl Session {
    /// Reads a session setting.
    pub fn setting(&self, key: &str) -> Option<&str> {
        self.settings
            .get(&key.to_ascii_uppercase())
            .map(String::as_str)
    }
}

/// The result of executing one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names (empty for non-`SELECT`).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// `NOTICE` messages raised during execution — the leak channel of
    /// CVE-2017-7484 and CVE-2019-10130.
    pub notices: Vec<String>,
    /// Command tag (`SELECT 3`, `INSERT 0 2`, …).
    pub tag: String,
    /// Rows scanned, for simulated CPU accounting.
    pub scanned: u64,
}

/// A SQL database: catalog and executor over a pluggable storage backend.
pub struct Database {
    version: PgVersion,
    flavor: DbFlavor,
    tables: BTreeMap<String, Table>,
    functions: BTreeMap<String, PlFunction>,
    operators: BTreeMap<String, Operator>,
    users: BTreeSet<String>,
    store: DynStorage,
    engine: StorageEngine,
    recovery: Option<RecoveryStats>,
    /// Catalog undo log while an explicit transaction is open: table name →
    /// its pre-transaction catalog entry (`None` = did not exist).
    catalog_undo: Option<BTreeMap<String, Option<Table>>>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("version", &self.version)
            .field("flavor", &self.flavor)
            .field("engine", &self.engine)
            .field("tables", &self.tables.len())
            .finish()
    }
}

/// The bootstrap superuser that owns initial schema.
pub const SUPERUSER: &str = "APP";

impl Database {
    /// Creates a MiniPg database at the given version (in-memory storage).
    pub fn new(version: PgVersion) -> Self {
        Self::with_flavor(version, DbFlavor::Postgres)
    }

    /// Creates a database with an explicit flavor (in-memory storage).
    pub fn with_flavor(version: PgVersion, flavor: DbFlavor) -> Self {
        let disk = VDisk::new("mem");
        match Self::with_engine(version, flavor, StorageEngine::InMemory, &disk) {
            Ok(db) => db,
            // In-memory open cannot fail (no WAL to replay); satisfy the
            // type without a panic path.
            Err(_) => unreachable!("in-memory storage open is infallible"),
        }
    }

    /// Creates a database on an explicit storage engine. For
    /// [`StorageEngine::Paged`], `disk` carries state across restarts —
    /// clone the same [`VDisk`] into a respawned instance and its WAL is
    /// replayed under the engine's recovery policy, with the catalog
    /// rebuilt from the recovered tables.
    ///
    /// # Errors
    ///
    /// [`SqlError::Exec`] when WAL replay finds interior corruption or the
    /// recovered catalog blob cannot be decoded.
    pub fn with_engine(
        version: PgVersion,
        flavor: DbFlavor,
        engine: StorageEngine,
        disk: &VDisk,
    ) -> Result<Self, SqlError> {
        let (store, recovery) = open_storage(engine, disk)?;
        let mut users = BTreeSet::new();
        users.insert(SUPERUSER.to_string());
        let mut db = Self {
            version,
            flavor,
            tables: BTreeMap::new(),
            functions: BTreeMap::new(),
            operators: BTreeMap::new(),
            users,
            store,
            engine,
            recovery,
            catalog_undo: None,
        };
        for name in db.store.table_names() {
            let meta = db.store.table_meta(&name).unwrap_or_default();
            let (owner, columns) = decode_table_meta(&meta)?;
            db.users.insert(owner.clone());
            db.tables.insert(
                name,
                Table {
                    columns,
                    owner,
                    rls_enabled: false,
                    policies: Vec::new(),
                    select_grants: BTreeSet::new(),
                },
            );
        }
        Ok(db)
    }

    /// The server version banner, as reported in `ParameterStatus` and
    /// `SHOW server_version`.
    pub fn version_banner(&self) -> String {
        match &self.flavor {
            DbFlavor::Postgres => self.version.to_string(),
            DbFlavor::Cockroach(c) => c.version_banner.clone(),
        }
    }

    /// The engine's version.
    pub fn version(&self) -> &PgVersion {
        &self.version
    }

    /// Total bytes of simulated row storage (logical heap bytes in-memory,
    /// live heap pages paged).
    pub fn storage_bytes(&self) -> u64 {
        self.store.bytes()
    }

    /// The storage engine this instance was opened with.
    pub fn storage_engine(&self) -> StorageEngine {
        self.engine
    }

    /// What WAL replay found when the instance opened, if the engine
    /// recovers at all (`None` for in-memory storage).
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery
    }

    /// Deterministic digest of the full logical row state — the
    /// replay-equivalence probe recovery tests compare across engines,
    /// restarts, and recovery policies.
    pub fn state_digest(&self) -> u64 {
        self.store.state_digest()
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.store.in_txn()
    }

    /// Opens a session as `user` (created implicitly if unknown — the wire
    /// server authenticates upstream).
    pub fn session(&mut self, user: &str) -> Session {
        let user = user.to_ascii_uppercase();
        self.users.insert(user.clone());
        Session {
            user,
            settings: BTreeMap::new(),
        }
    }

    pub(crate) fn function(&self, name: &str) -> Option<PlFunction> {
        self.functions.get(name).cloned()
    }

    pub(crate) fn operator_function(&self, symbol: &str) -> Option<PlFunction> {
        let op = self.operators.get(symbol)?;
        self.functions.get(&op.procedure).cloned()
    }

    /// Executes one SQL statement.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError`] for syntax errors, privilege violations,
    /// unsupported features (flavor-dependent), and runtime errors.
    pub fn execute(&mut self, session: &mut Session, sql: &str) -> Result<QueryResult, SqlError> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(session, stmt)
    }

    /// Executes a `;`-separated script, returning the last statement's
    /// result (like `psql -c` with multiple statements).
    ///
    /// # Errors
    ///
    /// Stops at and returns the first failing statement's error.
    pub fn execute_script(
        &mut self,
        session: &mut Session,
        sql: &str,
    ) -> Result<QueryResult, SqlError> {
        let statements = crate::parser::parse_script(sql)?;
        let mut last = QueryResult::default();
        for stmt in statements {
            last = self.execute_statement(session, stmt)?;
        }
        Ok(last)
    }

    /// Executes an already-parsed statement.
    ///
    /// # Errors
    ///
    /// See [`Database::execute`].
    pub fn execute_statement(
        &mut self,
        session: &mut Session,
        stmt: Statement,
    ) -> Result<QueryResult, SqlError> {
        match stmt {
            Statement::Select(select) => {
                if let Some(plan) = self.point_query_plan(session, &select) {
                    self.store.ensure_index(&plan.table).map_err(store_err)?;
                    return self.run_point_query(session, &select, &plan);
                }
                self.run_query(session, &select, false)
            }
            Statement::Explain(select) => self.run_query(session, &select, true),
            Statement::CreateTable { name, columns } => {
                if self.tables.contains_key(&name) {
                    return Err(SqlError::Exec(format!(
                        "relation \"{}\" already exists",
                        name.to_lowercase()
                    )));
                }
                self.remember_catalog(&name);
                let meta = encode_table_meta(&session.user, &columns);
                let implicit = self.begin_implicit()?;
                let result = self.store.create_table(&name, &meta);
                self.finish_implicit(implicit, result)?;
                self.tables.insert(
                    name,
                    Table {
                        columns,
                        owner: session.user.clone(),
                        rls_enabled: false,
                        policies: Vec::new(),
                        select_grants: BTreeSet::new(),
                    },
                );
                Ok(tag("CREATE TABLE"))
            }
            Statement::DropTable { name } => {
                let table = self.tables.get(&name).ok_or_else(|| not_found(&name))?;
                if table.owner != session.user && session.user != SUPERUSER {
                    return Err(SqlError::PermissionDenied(format!(
                        "table {}",
                        name.to_lowercase()
                    )));
                }
                self.remember_catalog(&name);
                let implicit = self.begin_implicit()?;
                let result = self.store.drop_table(&name);
                self.finish_implicit(implicit, result)?;
                self.tables.remove(&name);
                Ok(tag("DROP TABLE"))
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.insert(session, &table, &columns, &rows),
            Statement::Update {
                table,
                sets,
                where_clause,
            } => self.update(session, &table, &sets, where_clause.as_ref()),
            Statement::Delete {
                table,
                where_clause,
            } => self.delete(session, &table, where_clause.as_ref()),
            Statement::CreateFunction {
                name,
                arg_count,
                body,
            } => {
                if let DbFlavor::Cockroach(_) = self.flavor {
                    return Err(SqlError::Unsupported(
                        "user-defined functions are not supported".into(),
                    ));
                }
                let f = parse_pl_body(&name, arg_count, &body)?;
                self.functions.insert(name, f);
                Ok(tag("CREATE FUNCTION"))
            }
            Statement::CreateOperator {
                symbol,
                procedure,
                restrict,
            } => {
                if let DbFlavor::Cockroach(_) = self.flavor {
                    return Err(SqlError::Unsupported(
                        "user-defined operators are not supported".into(),
                    ));
                }
                if !self.functions.contains_key(&procedure) {
                    return Err(SqlError::Exec(format!(
                        "function {} does not exist",
                        procedure.to_lowercase()
                    )));
                }
                self.operators.insert(
                    symbol,
                    Operator {
                        procedure,
                        restrict,
                    },
                );
                Ok(tag("CREATE OPERATOR"))
            }
            Statement::CreateUser { name } => {
                self.users.insert(name);
                Ok(tag("CREATE ROLE"))
            }
            Statement::Grant { table, user } => {
                self.remember_catalog(&table);
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| not_found(&table))?;
                t.select_grants.insert(user);
                Ok(tag("GRANT"))
            }
            Statement::EnableRls { table } => {
                self.remember_catalog(&table);
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| not_found(&table))?;
                t.rls_enabled = true;
                Ok(tag("ALTER TABLE"))
            }
            Statement::CreatePolicy { table, using, .. } => {
                if let DbFlavor::Cockroach(_) = self.flavor {
                    return Err(SqlError::Unsupported("policies are not supported".into()));
                }
                self.remember_catalog(&table);
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| not_found(&table))?;
                t.policies.push(using);
                Ok(tag("CREATE POLICY"))
            }
            Statement::Set { key, value } => {
                if key == "DEFAULT_TRANSACTION_ISOLATION" {
                    if let DbFlavor::Cockroach(_) = self.flavor {
                        if !value.eq_ignore_ascii_case("serializable") {
                            return Err(SqlError::Unsupported(format!(
                                "isolation level {value} is not supported; only serializable"
                            )));
                        }
                    }
                }
                session.settings.insert(key, value);
                Ok(tag("SET"))
            }
            Statement::Show { key } => {
                let value = if key == "SERVER_VERSION" {
                    self.version_banner()
                } else {
                    session.settings.get(&key).cloned().unwrap_or_default()
                };
                Ok(QueryResult {
                    columns: vec![key.to_ascii_lowercase()],
                    rows: vec![vec![Value::Text(value)]],
                    notices: Vec::new(),
                    tag: "SHOW".into(),
                    scanned: 0,
                })
            }
            Statement::Transaction { verb } => self.transaction_verb(&verb),
        }
    }

    /// `BEGIN`/`COMMIT`/`END`/`ROLLBACK`. Nested `BEGIN` and commits
    /// without a transaction are no-ops (tag only), preserving the
    /// pre-storage-split wire behaviour for benign traffic.
    fn transaction_verb(&mut self, verb: &str) -> Result<QueryResult, SqlError> {
        match verb {
            "BEGIN" if !self.store.in_txn() => {
                self.store.begin().map_err(store_err)?;
                self.catalog_undo = Some(BTreeMap::new());
            }
            "COMMIT" | "END" if self.store.in_txn() => {
                self.store.commit().map_err(store_err)?;
                self.catalog_undo = None;
            }
            "ROLLBACK" if self.store.in_txn() => {
                self.store.rollback().map_err(store_err)?;
                if let Some(undo) = self.catalog_undo.take() {
                    for (name, prior) in undo {
                        match prior {
                            Some(t) => {
                                self.tables.insert(name, t);
                            }
                            None => {
                                self.tables.remove(&name);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        Ok(tag(verb))
    }

    /// Opens an implicit storage transaction around a standalone mutation;
    /// returns whether one was opened (false inside an explicit txn).
    fn begin_implicit(&mut self) -> Result<bool, SqlError> {
        if self.store.in_txn() {
            return Ok(false);
        }
        self.store.begin().map_err(store_err)?;
        Ok(true)
    }

    /// Completes a mutation: commits the implicit transaction on success,
    /// rolls it back (restoring pre-statement state) on failure.
    fn finish_implicit(
        &mut self,
        implicit: bool,
        result: Result<(), StoreError>,
    ) -> Result<(), SqlError> {
        match result {
            Ok(()) => {
                if implicit {
                    self.store.commit().map_err(store_err)?;
                }
                Ok(())
            }
            Err(e) => {
                if implicit {
                    self.store.rollback().map_err(store_err)?;
                }
                Err(store_err(e))
            }
        }
    }

    /// Records `table`'s pre-transaction catalog entry the first time an
    /// explicit transaction touches it (for `ROLLBACK`).
    fn remember_catalog(&mut self, table: &str) {
        if let Some(undo) = &mut self.catalog_undo {
            if !undo.contains_key(table) {
                undo.insert(table.to_string(), self.tables.get(table).cloned());
            }
        }
    }

    /// All stored rows of `table`, in insertion order.
    fn stored_rows(&self, table: &str) -> Result<Vec<Vec<Value>>, SqlError> {
        let mut rows = Vec::new();
        self.store
            .scan(table, &mut |r| rows.push(r))
            .map_err(store_err)?;
        Ok(rows)
    }

    /// Recognizes the indexable point-query shape:
    /// `SELECT cols FROM t WHERE pkey = literal [AND simple-conjuncts]` on a
    /// sizeable table without row security.
    fn point_query_plan(&self, session: &Session, select: &Select) -> Option<PointPlan> {
        const INDEX_THRESHOLD: u64 = 128;
        if select.from.len() != 1
            || select.distinct
            || !select.group_by.is_empty()
            || select.having.is_some()
            || !select.order_by.is_empty()
        {
            return None;
        }
        let tref = &select.from[0];
        if tref.subquery.is_some() || tref.left_join_on.is_some() {
            return None;
        }
        let t = self.tables.get(&tref.name)?;
        if self.store.row_count(&tref.name).unwrap_or(0) < INDEX_THRESHOLD
            || (t.rls_enabled && t.owner != session.user && session.user != SUPERUSER)
        {
            return None;
        }
        if !self.can_select(&session.user, &tref.name) {
            return None; // let the slow path produce the proper error
        }
        if select
            .items
            .iter()
            .any(|i| i.expr.as_ref().is_some_and(crate::exec::contains_aggregate))
        {
            return None;
        }
        let pkey = &t.columns.first()?.name;
        let conjuncts = flatten_and(select.where_clause.as_ref()?);
        for c in &conjuncts {
            if let Expr::Binary { op, left, right } = c {
                if op == "=" {
                    for (a, b) in [(left, right), (right, left)] {
                        if let (Expr::Column(col), Expr::Literal(v)) = (a.as_ref(), b.as_ref()) {
                            if &col.column == pkey
                                && col.table.as_ref().is_none_or(|q| q == &tref.alias)
                            {
                                return Some(PointPlan {
                                    table: tref.name.clone(),
                                    alias: tref.alias.clone(),
                                    key: v.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        None
    }

    fn run_point_query(
        &self,
        session: &Session,
        select: &Select,
        plan: &PointPlan,
    ) -> Result<QueryResult, SqlError> {
        let ctx = ExecCtx::new(self, session);
        let t = self.tables.get(&plan.table).expect("plan checked table");
        let schema: Vec<(String, String)> = t
            .columns
            .iter()
            .map(|c| (plan.alias.clone(), c.name.clone()))
            .collect();
        let key_bytes = plan.key.group_key().into_bytes();
        let mut candidate_rows: Vec<Vec<Value>> = Vec::new();
        let candidates = self
            .store
            .lookup(&plan.table, &key_bytes, &mut |r| candidate_rows.push(r))
            .map_err(store_err)?;
        ctx.charge_scan(candidates + 1); // index probe + matches
        let conjuncts = flatten_and(select.where_clause.as_ref().expect("plan has WHERE"));
        let mut rows = Vec::new();
        for row in &candidate_rows {
            let env = Env {
                schema: &schema,
                row,
                parent: None,
            };
            let mut keep = true;
            for c in &conjuncts {
                if !eval(&ctx, c, &env)?.is_truthy() {
                    keep = false;
                    break;
                }
            }
            if keep {
                rows.push(row.clone());
            }
        }
        // Project through the ordinary item machinery for identical output.
        let mut columns = Vec::new();
        let mut out_rows: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
        for row in &rows {
            let env = Env {
                schema: &schema,
                row,
                parent: None,
            };
            let mut out = Vec::new();
            for item in &select.items {
                match &item.expr {
                    None => {
                        for (i, col) in t.columns.iter().enumerate() {
                            out.push(row[i].clone());
                            if out_rows.is_empty() {
                                columns.push(col.name.to_ascii_lowercase());
                            }
                        }
                    }
                    Some(e) => {
                        out.push(eval(&ctx, e, &env)?);
                        if out_rows.is_empty() {
                            columns.push(item.alias.as_ref().map_or_else(
                                || match e {
                                    Expr::Column(c) => c.column.to_ascii_lowercase(),
                                    _ => "?column?".to_string(),
                                },
                                |a| a.to_ascii_lowercase(),
                            ));
                        }
                    }
                }
            }
            out_rows.push(out);
        }
        if out_rows.is_empty() {
            // Column names even for empty results.
            for item in &select.items {
                match &item.expr {
                    None => {
                        for col in &t.columns {
                            columns.push(col.name.to_ascii_lowercase());
                        }
                    }
                    Some(Expr::Column(c)) => columns.push(
                        item.alias
                            .clone()
                            .unwrap_or_else(|| c.column.clone())
                            .to_ascii_lowercase(),
                    ),
                    Some(_) => columns.push(
                        item.alias
                            .clone()
                            .unwrap_or_else(|| "?column?".into())
                            .to_ascii_lowercase(),
                    ),
                }
            }
        }
        let mut limited = out_rows;
        if let Some(limit) = select.limit {
            limited.truncate(limit as usize);
        }
        let n = limited.len();
        Ok(QueryResult {
            columns,
            rows: limited,
            notices: ctx.notices.into_inner(),
            tag: format!("SELECT {n}"),
            scanned: ctx.scanned.get(),
        })
    }

    fn run_query(
        &self,
        session: &Session,
        select: &Select,
        explain: bool,
    ) -> Result<QueryResult, SqlError> {
        let ctx = ExecCtx::new(self, session);
        if explain {
            return self.explain(&ctx, select);
        }
        let result = run_select(&ctx, select, None)?;
        let row_count = result.rows.len();
        Ok(QueryResult {
            columns: result.columns,
            rows: result.rows,
            notices: ctx.notices.into_inner(),
            tag: format!("SELECT {row_count}"),
            scanned: ctx.scanned.get(),
        })
    }

    /// `EXPLAIN`: renders a deterministic plan sketch. On vulnerable
    /// versions, planning user-defined operators with a `restrict=`
    /// selectivity estimator evaluates the operator's function over the
    /// table's rows *without a privilege check* — the CVE-2017-7484 leak.
    fn explain(&self, ctx: &ExecCtx<'_>, select: &Select) -> Result<QueryResult, SqlError> {
        let mut plan = Vec::new();
        for (i, tref) in select.from.iter().enumerate() {
            let name = tref.name.to_lowercase();
            if i == 0 {
                plan.push(format!("Seq Scan on {name}"));
            } else {
                plan.push(format!("Nested Loop Join on {name}"));
            }
        }
        if let Some(w) = &select.where_clause {
            plan.push(format!("  Filter: {}", render_expr(w)));
            // Selectivity estimation: the leak path.
            for tref in &select.from {
                if tref.subquery.is_none() {
                    self.planner_estimate(ctx, &tref.name, &tref.alias, w)?;
                }
            }
        }
        if plan.is_empty() {
            plan.push("Result".to_string());
        }
        Ok(QueryResult {
            columns: vec!["QUERY PLAN".into()],
            rows: plan.into_iter().map(|l| vec![Value::Text(l)]).collect(),
            notices: ctx.notices.borrow().clone(),
            tag: "EXPLAIN".into(),
            scanned: ctx.scanned.get(),
        })
    }

    /// Planner selectivity estimation for user-defined operators.
    ///
    /// Vulnerable versions (CVE-2017-7484) run the estimator's procedure on
    /// every stored row of the referenced table — *including tables the
    /// caller has no `SELECT` privilege on* — leaking values through
    /// `RAISE NOTICE`. Fixed versions check privileges first.
    fn planner_estimate(
        &self,
        ctx: &ExecCtx<'_>,
        table: &str,
        alias: &str,
        where_clause: &Expr,
    ) -> Result<(), SqlError> {
        let Some(t) = self.tables.get(table) else {
            return Ok(()); // scan error surfaces later
        };
        let custom_conjuncts = custom_operator_conjuncts(self, where_clause, alias, &t.columns);
        if custom_conjuncts.is_empty() {
            return Ok(());
        }
        let readable = self.can_select(&ctx.session.user, table);
        if !self.version.leaks_planner_stats() && !readable {
            return Err(SqlError::PermissionDenied(format!(
                "table {}",
                table.to_lowercase()
            )));
        }
        // Evaluate the operator over stored rows ("statistics") — the leak.
        let schema: Vec<(String, String)> = t
            .columns
            .iter()
            .map(|c| (alias.to_string(), c.name.clone()))
            .collect();
        let rows = self.stored_rows(table)?;
        for row in &rows {
            let env = Env {
                schema: &schema,
                row,
                parent: None,
            };
            for c in &custom_conjuncts {
                let _ = eval(ctx, c, &env)?;
            }
        }
        ctx.charge_scan(rows.len() as u64);
        Ok(())
    }

    /// The RLS-pushdown leak probe (CVE-2019-10130): on vulnerable versions,
    /// a `WHERE` containing a user-defined operator is evaluated over *all*
    /// rows — row-security filtering happens above the scan — so the
    /// operator's `RAISE NOTICE` leaks protected rows.
    pub(crate) fn leak_probe(
        &self,
        ctx: &ExecCtx<'_>,
        table: &str,
        alias: &str,
        where_clause: &Expr,
    ) -> Result<(), SqlError> {
        if !self.version.leaks_rls_rows() {
            return Ok(());
        }
        let Some(t) = self.tables.get(table) else {
            return Ok(());
        };
        if !t.rls_enabled || t.owner == ctx.session.user || ctx.session.user == SUPERUSER {
            return Ok(()); // nothing hidden to leak
        }
        let custom = custom_operator_conjuncts(self, where_clause, alias, &t.columns);
        if custom.is_empty() {
            return Ok(());
        }
        let schema: Vec<(String, String)> = t
            .columns
            .iter()
            .map(|c| (alias.to_string(), c.name.clone()))
            .collect();
        // Only the *hidden* rows constitute the leak; visible rows are
        // evaluated by the ordinary filter anyway.
        let rows = self.stored_rows(table)?;
        for row in &rows {
            let env = Env {
                schema: &schema,
                row,
                parent: None,
            };
            let visible = self.row_visible(ctx, t, row)?;
            if !visible {
                for c in &custom {
                    let _ = eval(ctx, c, &env)?;
                }
            }
        }
        Ok(())
    }

    fn row_visible(
        &self,
        ctx: &ExecCtx<'_>,
        table: &Table,
        row: &[Value],
    ) -> Result<bool, SqlError> {
        let schema: Vec<(String, String)> = table
            .columns
            .iter()
            .map(|c| (String::new(), c.name.clone()))
            .collect();
        let env = Env {
            schema: &schema,
            row,
            parent: None,
        };
        for p in &table.policies {
            if eval(ctx, p, &env)?.is_truthy() {
                return Ok(true);
            }
        }
        Ok(table.policies.is_empty())
    }

    fn can_select(&self, user: &str, table: &str) -> bool {
        let Some(t) = self.tables.get(table) else {
            return false;
        };
        user == SUPERUSER || t.owner == user || t.select_grants.contains(user)
    }

    /// Rows visible to the session: privilege check plus row-level security.
    pub(crate) fn visible_rows(
        &self,
        ctx: &ExecCtx<'_>,
        table: &str,
    ) -> Result<(Vec<String>, Vec<Vec<Value>>), SqlError> {
        let t = self.tables.get(table).ok_or_else(|| not_found(table))?;
        if !self.can_select(&ctx.session.user, table) {
            return Err(SqlError::PermissionDenied(format!(
                "table {}",
                table.to_lowercase()
            )));
        }
        let cols: Vec<String> = t.columns.iter().map(|c| c.name.clone()).collect();
        let exempt = t.owner == ctx.session.user || ctx.session.user == SUPERUSER;
        let stored = self.stored_rows(table)?;
        let mut rows = Vec::with_capacity(stored.len());
        for row in stored {
            if !t.rls_enabled || exempt || self.row_visible(ctx, t, &row)? {
                rows.push(row);
            }
        }
        if let DbFlavor::Cockroach(c) = &self.flavor {
            if c.scramble_row_order {
                rows.reverse();
            }
        }
        Ok((cols, rows))
    }

    fn insert(
        &mut self,
        session: &Session,
        table: &str,
        columns: &[String],
        rows: &[Vec<Expr>],
    ) -> Result<QueryResult, SqlError> {
        let ctx = ExecCtx::new(self, session);
        let t = self.tables.get(table).ok_or_else(|| not_found(table))?;
        let positions: Vec<usize> = if columns.is_empty() {
            (0..t.columns.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| {
                    t.columns
                        .iter()
                        .position(|cd| &cd.name == c)
                        .ok_or_else(|| {
                            SqlError::Exec(format!("column {} does not exist", c.to_lowercase()))
                        })
                })
                .collect::<Result<_, _>>()?
        };
        let mut new_rows = Vec::with_capacity(rows.len());
        for exprs in rows {
            if exprs.len() != positions.len() {
                return Err(SqlError::Exec(format!(
                    "INSERT has {} expressions but {} target columns",
                    exprs.len(),
                    positions.len()
                )));
            }
            let mut row = vec![Value::Null; t.columns.len()];
            for (expr, &pos) in exprs.iter().zip(&positions) {
                let env = Env {
                    schema: &[],
                    row: &[],
                    parent: None,
                };
                let v = eval(&ctx, expr, &env)?;
                row[pos] = coerce(v, t.columns[pos].ty)?;
            }
            new_rows.push(row);
        }
        drop(ctx);
        let count = new_rows.len();
        let implicit = self.begin_implicit()?;
        let result = self.store.insert(table, new_rows);
        self.finish_implicit(implicit, result)?;
        Ok(tag(&format!("INSERT 0 {count}")))
    }

    fn update(
        &mut self,
        session: &Session,
        table: &str,
        sets: &[(String, Expr)],
        where_clause: Option<&Expr>,
    ) -> Result<QueryResult, SqlError> {
        let t = self.tables.get(table).ok_or_else(|| not_found(table))?;
        let schema: Vec<(String, String)> = t
            .columns
            .iter()
            .map(|c| (table.to_string(), c.name.clone()))
            .collect();
        let set_positions: Vec<(usize, &Expr)> = sets
            .iter()
            .map(|(c, e)| {
                t.columns
                    .iter()
                    .position(|cd| &cd.name == c)
                    .map(|p| (p, e))
                    .ok_or_else(|| {
                        SqlError::Exec(format!("column {} does not exist", c.to_lowercase()))
                    })
            })
            .collect::<Result<_, _>>()?;
        let stored = self.stored_rows(table)?;
        let ctx = ExecCtx::new(self, session);
        let mut new_rows = Vec::with_capacity(stored.len());
        let mut count = 0u64;
        for row in &stored {
            let env = Env {
                schema: &schema,
                row,
                parent: None,
            };
            let hit = match where_clause {
                Some(w) => eval(&ctx, w, &env)?.is_truthy(),
                None => true,
            };
            if hit {
                let mut updated = row.clone();
                for (pos, expr) in &set_positions {
                    let v = eval(&ctx, expr, &env)?;
                    updated[*pos] = coerce(v, t.columns[*pos].ty)?;
                }
                new_rows.push(updated);
                count += 1;
            } else {
                new_rows.push(row.clone());
            }
        }
        ctx.charge_scan(stored.len() as u64);
        let scanned = ctx.scanned.get();
        drop(ctx);
        let implicit = self.begin_implicit()?;
        let result = self.store.rewrite(table, new_rows);
        self.finish_implicit(implicit, result)?;
        Ok(QueryResult {
            tag: format!("UPDATE {count}"),
            scanned,
            ..QueryResult::default()
        })
    }

    fn delete(
        &mut self,
        session: &Session,
        table: &str,
        where_clause: Option<&Expr>,
    ) -> Result<QueryResult, SqlError> {
        let t = self.tables.get(table).ok_or_else(|| not_found(table))?;
        let schema: Vec<(String, String)> = t
            .columns
            .iter()
            .map(|c| (table.to_string(), c.name.clone()))
            .collect();
        let stored = self.stored_rows(table)?;
        let ctx = ExecCtx::new(self, session);
        let mut keep = Vec::with_capacity(stored.len());
        let mut removed = 0usize;
        for row in stored {
            let env = Env {
                schema: &schema,
                row: &row,
                parent: None,
            };
            let hit = match where_clause {
                Some(w) => eval(&ctx, w, &env)?.is_truthy(),
                None => true,
            };
            if hit {
                removed += 1;
            } else {
                keep.push(row);
            }
        }
        let scanned = ctx.scanned.get() + keep.len() as u64 + removed as u64;
        drop(ctx);
        let implicit = self.begin_implicit()?;
        let result = self.store.rewrite(table, keep);
        self.finish_implicit(implicit, result)?;
        Ok(QueryResult {
            tag: format!("DELETE {removed}"),
            scanned,
            ..QueryResult::default()
        })
    }
}

/// Invokes a plpgsql-lite function: raises its notice (if any) with `%`
/// placeholders substituted, then evaluates its `RETURN` comparison.
pub(crate) fn call_pl_function(
    ctx: &ExecCtx<'_>,
    f: &PlFunction,
    args: &[Value],
) -> Result<Value, SqlError> {
    if args.len() != f.arg_count {
        return Err(SqlError::Exec(format!(
            "function {} expects {} arguments, got {}",
            f.name.to_lowercase(),
            f.arg_count,
            args.len()
        )));
    }
    if let Some((template, indices)) = &f.notice {
        let mut text = String::new();
        let mut arg_iter = indices.iter();
        for ch in template.chars() {
            if ch == '%' {
                match arg_iter.next() {
                    Some(&i) => {
                        text.push_str(&args.get(i - 1).cloned().unwrap_or(Value::Null).to_string())
                    }
                    None => text.push('%'),
                }
            } else {
                text.push(ch);
            }
        }
        ctx.notice(format!("NOTICE: {text}"));
    }
    match &f.return_op {
        Some(op) => {
            let l = args.first().cloned().unwrap_or(Value::Null);
            let r = args.get(1).cloned().unwrap_or(Value::Null);
            match op.as_str() {
                ">" => Ok(cmp_bool(&l, &r, std::cmp::Ordering::Greater)),
                "<" => Ok(cmp_bool(&l, &r, std::cmp::Ordering::Less)),
                "=" => Ok(match l.sql_eq(&r) {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                }),
                ">=" => Ok(match l.sql_cmp(&r) {
                    Some(o) => Value::Bool(o != std::cmp::Ordering::Less),
                    None => Value::Null,
                }),
                "<=" => Ok(match l.sql_cmp(&r) {
                    Some(o) => Value::Bool(o != std::cmp::Ordering::Greater),
                    None => Value::Null,
                }),
                other => Err(SqlError::Exec(format!("unsupported return op {other}"))),
            }
        }
        None => Ok(Value::Bool(true)),
    }
}

fn cmp_bool(l: &Value, r: &Value, want: std::cmp::Ordering) -> Value {
    match l.sql_cmp(r) {
        Some(o) => Value::Bool(o == want),
        None => Value::Null,
    }
}

/// Parses the plpgsql-lite body subset used by the exploit listings.
fn parse_pl_body(name: &str, arg_count: usize, body: &str) -> Result<PlFunction, SqlError> {
    let mut notice = None;
    if let Some(idx) = body.to_ascii_uppercase().find("RAISE NOTICE") {
        let rest = &body[idx + "RAISE NOTICE".len()..];
        let open = rest
            .find('\'')
            .ok_or_else(|| SqlError::Parse("RAISE NOTICE needs a string".into()))?;
        // The template string (with '' escapes).
        let mut template = String::new();
        let bytes: Vec<char> = rest[open + 1..].chars().collect();
        let mut i = 0;
        loop {
            if i >= bytes.len() {
                return Err(SqlError::Parse("unterminated notice template".into()));
            }
            if bytes[i] == '\'' {
                if bytes.get(i + 1) == Some(&'\'') {
                    template.push('\'');
                    i += 2;
                } else {
                    i += 1;
                    break;
                }
            } else {
                template.push(bytes[i]);
                i += 1;
            }
        }
        // Argument list: `, $1, $2`.
        let tail: String = bytes[i..].iter().collect();
        let tail = tail.split(';').next().unwrap_or("");
        let mut indices = Vec::new();
        for part in tail.split(',') {
            let part = part.trim();
            if let Some(num) = part.strip_prefix('$') {
                if let Ok(n) = num.parse::<usize>() {
                    indices.push(n);
                }
            }
        }
        notice = Some((template, indices));
    }
    let mut return_op = None;
    if let Some(idx) = body.to_ascii_uppercase().find("RETURN ") {
        let rest = &body[idx + "RETURN ".len()..];
        let clause = rest.split(';').next().unwrap_or("").trim();
        // Pattern: $1 <op> $2
        let parts: Vec<&str> = clause.split_whitespace().collect();
        if parts.len() == 3 && parts[0].starts_with('$') && parts[2].starts_with('$') {
            return_op = Some(parts[1].to_string());
        }
    }
    Ok(PlFunction {
        name: name.to_string(),
        arg_count,
        notice,
        return_op,
    })
}

/// Collects WHERE conjuncts that use a user-defined operator and reference
/// only columns of the given table.
fn custom_operator_conjuncts(
    db: &Database,
    where_clause: &Expr,
    alias: &str,
    columns: &[ColumnDef],
) -> Vec<Expr> {
    fn walk(db: &Database, e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary { op, left, right } => {
                if db.operators.contains_key(op) {
                    out.push(e.clone());
                } else {
                    walk(db, left, out);
                    walk(db, right, out);
                }
            }
            Expr::Unary { expr, .. } => walk(db, expr, out),
            _ => {}
        }
    }
    let mut found = Vec::new();
    walk(db, where_clause, &mut found);
    found.retain(|e| {
        let mut refs = Vec::new();
        crate::exec::column_refs(e, &mut refs);
        refs.iter().all(|r| {
            columns.iter().any(|c| c.name == r.column)
                && r.table.as_ref().is_none_or(|t| t == alias)
        })
    });
    found
}

fn coerce(v: Value, ty: SqlType) -> Result<Value, SqlError> {
    Ok(match (v, ty) {
        (Value::Null, _) => Value::Null,
        (Value::Int(i), SqlType::Float) => Value::Float(i as f64),
        (Value::Float(f), SqlType::Int) if f.fract() == 0.0 => Value::Int(f as i64),
        (Value::Int(i), SqlType::Text) => Value::Text(i.to_string()),
        (v @ Value::Int(_), SqlType::Int) => v,
        (v @ Value::Float(_), SqlType::Float) => v,
        (v @ Value::Text(_), SqlType::Text) => v,
        (v @ Value::Bool(_), SqlType::Bool) => v,
        (v, ty) => {
            return Err(SqlError::Exec(format!("cannot store {v} in {ty} column")));
        }
    })
}

fn tag(t: &str) -> QueryResult {
    QueryResult {
        tag: t.to_string(),
        ..QueryResult::default()
    }
}

fn not_found(table: &str) -> SqlError {
    SqlError::Exec(format!(
        "relation \"{}\" does not exist",
        table.to_lowercase()
    ))
}

/// The recognized point-query pattern.
struct PointPlan {
    table: String,
    alias: String,
    key: Value,
}

fn flatten_and(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary { op, left, right } if op == "AND" => {
            let mut out = flatten_and(left);
            out.extend(flatten_and(right));
            out
        }
        other => vec![other.clone()],
    }
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => v.to_string(),
        Expr::Column(c) => match &c.table {
            Some(t) => format!("{}.{}", t.to_lowercase(), c.column.to_lowercase()),
            None => c.column.to_lowercase(),
        },
        Expr::Binary { op, left, right } => {
            format!("({} {} {})", render_expr(left), op, render_expr(right))
        }
        Expr::Unary { op, expr } => format!("{op} {}", render_expr(expr)),
        _ => "…".to_string(),
    }
}
