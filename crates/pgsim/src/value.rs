use std::cmp::Ordering;
use std::fmt;

/// Column types supported by the SQL subset.
///
/// Dates are stored as ISO-8601 text (`YYYY-MM-DD`), which compares
/// correctly lexicographically — see `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit integer (`INT`, `INTEGER`, `BIGINT`, `SMALLINT`).
    Int,
    /// Double-precision float (`FLOAT`, `DOUBLE`, `NUMERIC`, `DECIMAL`).
    Float,
    /// UTF-8 text (`TEXT`, `VARCHAR`, `CHAR`, `DATE`).
    Text,
    /// Boolean (`BOOLEAN`, `BOOL`).
    Bool,
}

impl SqlType {
    /// Parses a type name as it appears in DDL.
    pub fn parse(name: &str) -> Option<SqlType> {
        let base = name.to_ascii_uppercase();
        let base = base.split('(').next().unwrap_or("").trim();
        match base {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "SERIAL" => Some(SqlType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "NUMERIC" | "DECIMAL" => Some(SqlType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "DATE" | "STRING" => Some(SqlType::Text),
            "BOOLEAN" | "BOOL" => Some(SqlType::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SqlType::Int => "integer",
            SqlType::Float => "numeric",
            SqlType::Text => "text",
            SqlType::Bool => "boolean",
        };
        f.write_str(name)
    }
}

/// A SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL `NULL`.
    Null,
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A text string (also used for dates).
    Text(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Whether this is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to float); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Truthiness for `WHERE` evaluation: only `TRUE` passes; `NULL` and
    /// `FALSE` do not (three-valued logic collapses at the filter).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// SQL equality (`=`): `NULL` compares as unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL ordering comparison; `None` when either side is `NULL` or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total ordering for `ORDER BY` and grouping: `NULL` sorts last, and
    /// mixed numeric types compare numerically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Null, _) => Ordering::Greater,
            (_, Value::Null) => Ordering::Less,
            _ => self.sql_cmp(other).unwrap_or_else(|| {
                // Incomparable types: order by type tag for determinism.
                self.type_tag().cmp(&other.type_tag())
            }),
        }
    }

    /// A stable grouping key (used for `GROUP BY` and `DISTINCT`).
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}null".to_string(),
            Value::Int(i) => format!("i{i}"),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("i{}", *f as i64) // 2 and 2.0 group together
                } else {
                    format!("f{f}")
                }
            }
            Value::Text(t) => format!("t{t}"),
            Value::Bool(b) => format!("b{b}"),
        }
    }

    fn type_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal && self.is_null() == other.is_null()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                // Fixed 4-decimal rendering keeps aggregates deterministic
                // across instances (floats are wire-rendered as text).
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v:.4}")
                }
            }
            Value::Text(t) => f.write_str(t),
            Value::Bool(b) => f.write_str(if *b { "t" } else { "f" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parse_covers_aliases() {
        assert_eq!(SqlType::parse("VARCHAR(25)"), Some(SqlType::Text));
        assert_eq!(SqlType::parse("bigint"), Some(SqlType::Int));
        assert_eq!(SqlType::parse("NUMERIC"), Some(SqlType::Float));
        assert_eq!(SqlType::parse("date"), Some(SqlType::Text));
        assert_eq!(SqlType::parse("blob"), None);
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn iso_dates_compare_lexicographically() {
        let a = Value::Text("1995-03-15".into());
        let b = Value::Text("1996-01-01".into());
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Less));
    }

    #[test]
    fn total_cmp_sorts_nulls_last() {
        let mut vals = [Value::Null, Value::Int(2), Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Int(1));
        assert!(vals[2].is_null());
    }

    #[test]
    fn group_key_merges_equal_numerics() {
        assert_eq!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
        assert_ne!(
            Value::Int(2).group_key(),
            Value::Text("2".into()).group_key()
        );
    }

    #[test]
    fn display_matches_postgres_text_format() {
        assert_eq!(Value::Bool(true).to_string(), "t");
        assert_eq!(Value::Float(2.0).to_string(), "2");
        assert_eq!(Value::Float(2.5).to_string(), "2.5000");
        assert_eq!(Value::Null.to_string(), "");
    }
}
