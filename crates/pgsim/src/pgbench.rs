//! pgbench workload for the paper's Figures 5 and 6.
//!
//! "Each deployment was initialized with a database of scale factor 100 …
//! Each client is executed in a separate thread and makes 10,000 SELECT
//! transactions against each deployment" (§V-G2). The SELECT-only script is
//! pgbench's built-in:
//!
//! ```sql
//! SELECT abalance FROM pgbench_accounts WHERE aid = :aid;
//! ```
//!
//! The generator keeps pgbench's table proportions (1 branch : 10 tellers :
//! 100 000 accounts) at a configurable accounts-per-branch so the simulated
//! dataset stays laptop-sized; the engine's primary-key index gives the
//! point query its real-world O(1) cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::db::{Database, SqlError};

/// Accounts generated per branch (pgbench uses 100 000; the simulator
/// defaults to 1 000 to stay in memory-friendly territory).
pub const ACCOUNTS_PER_BRANCH: usize = 1_000;

/// The pgbench DDL.
pub const SCHEMA: &[&str] = &[
    "CREATE TABLE pgbench_branches (bid INT, bbalance INT, filler TEXT)",
    "CREATE TABLE pgbench_tellers (tid INT, bid INT, tbalance INT, filler TEXT)",
    "CREATE TABLE pgbench_accounts (aid INT, bid INT, abalance INT, filler TEXT)",
    "CREATE TABLE pgbench_history (tid INT, bid INT, aid INT, delta INT, mtime TEXT)",
];

/// Populates `db` with a pgbench dataset at the given scale (number of
/// branches) and the default accounts-per-branch. Returns the number of
/// account rows created.
///
/// # Errors
///
/// Returns [`SqlError`] if DDL or inserts fail.
pub fn load(db: &mut Database, scale: usize) -> Result<usize, SqlError> {
    load_scaled(db, scale, ACCOUNTS_PER_BRANCH)
}

/// Like [`load`], with an explicit accounts-per-branch knob so benchmarks
/// can dial dataset size independently of branch count. Generation is
/// seeded: the same `(scale, accounts_per_branch)` always produces the
/// same rows, so two instances loaded with the same knobs agree byte-for-
/// byte on the wire.
///
/// # Errors
///
/// Returns [`SqlError`] if DDL or inserts fail.
pub fn load_scaled(
    db: &mut Database,
    scale: usize,
    accounts_per_branch: usize,
) -> Result<usize, SqlError> {
    let mut session = db.session("app");
    for ddl in SCHEMA {
        db.execute(&mut session, ddl)?;
    }
    let mut rng = StdRng::seed_from_u64(0x9b3_0002);
    let branches: Vec<String> = (1..=scale).map(|b| format!("({b}, 0, 'b')")).collect();
    db.execute(
        &mut session,
        &format!(
            "INSERT INTO pgbench_branches VALUES {}",
            branches.join(", ")
        ),
    )?;
    let tellers: Vec<String> = (1..=scale * 10)
        .map(|t| format!("({t}, {}, 0, 't')", (t - 1) / 10 + 1))
        .collect();
    for chunk in tellers.chunks(500) {
        db.execute(
            &mut session,
            &format!("INSERT INTO pgbench_tellers VALUES {}", chunk.join(", ")),
        )?;
    }
    let total_accounts = scale * accounts_per_branch;
    let mut batch = Vec::with_capacity(500);
    for aid in 1..=total_accounts {
        let bid = (aid - 1) / accounts_per_branch + 1;
        let balance: i32 = rng.gen_range(-5000..5000);
        batch.push(format!("({aid}, {bid}, {balance}, 'a')"));
        if batch.len() == 500 {
            db.execute(
                &mut session,
                &format!("INSERT INTO pgbench_accounts VALUES {}", batch.join(", ")),
            )?;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        db.execute(
            &mut session,
            &format!("INSERT INTO pgbench_accounts VALUES {}", batch.join(", ")),
        )?;
    }
    Ok(total_accounts)
}

/// A deterministic stream of SELECT-only pgbench transactions.
#[derive(Debug, Clone)]
pub struct SelectWorkload {
    rng: StdRng,
    accounts: usize,
}

impl SelectWorkload {
    /// Creates a workload over `accounts` rows, seeded per client id so
    /// concurrent clients draw different but reproducible account streams.
    pub fn new(accounts: usize, client_id: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(0xbe7c_1000 ^ client_id),
            accounts,
        }
    }

    /// The next transaction's SQL text.
    pub fn next_query(&mut self) -> String {
        let aid = self.rng.gen_range(1..=self.accounts);
        format!("SELECT abalance FROM pgbench_accounts WHERE aid = {aid}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PgVersion;

    #[test]
    fn load_creates_proportional_tables() {
        let mut db = Database::new(PgVersion::parse("10.7").unwrap());
        let accounts = load(&mut db, 2).unwrap();
        assert_eq!(accounts, 2 * ACCOUNTS_PER_BRANCH);
        let mut s = db.session("app");
        let r = db
            .execute(&mut s, "SELECT COUNT(*) FROM pgbench_tellers")
            .unwrap();
        assert_eq!(r.rows[0][0].to_string(), "20");
        let r = db
            .execute(&mut s, "SELECT COUNT(*) FROM pgbench_branches")
            .unwrap();
        assert_eq!(r.rows[0][0].to_string(), "2");
    }

    #[test]
    fn point_query_uses_index_fast_path() {
        let mut db = Database::new(PgVersion::parse("10.7").unwrap());
        load(&mut db, 1).unwrap();
        let mut s = db.session("app");
        let r = db
            .execute(
                &mut s,
                "SELECT abalance FROM pgbench_accounts WHERE aid = 500",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(
            r.scanned < 10,
            "point query must hit the index, scanned {}",
            r.scanned
        );
    }

    #[test]
    fn load_scaled_honours_the_accounts_knob() {
        let mut db = Database::new(PgVersion::parse("10.7").unwrap());
        let accounts = load_scaled(&mut db, 3, 50).unwrap();
        assert_eq!(accounts, 150);
        let mut s = db.session("app");
        let r = db
            .execute(&mut s, "SELECT COUNT(*) FROM pgbench_accounts")
            .unwrap();
        assert_eq!(r.rows[0][0].to_string(), "150");
    }

    #[test]
    fn same_knobs_load_identical_datasets() {
        let mut a = Database::new(PgVersion::parse("10.7").unwrap());
        let mut b = Database::new(PgVersion::parse("10.7").unwrap());
        load_scaled(&mut a, 2, 40).unwrap();
        load_scaled(&mut b, 2, 40).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn workload_is_deterministic_per_client() {
        let mut a = SelectWorkload::new(1000, 7);
        let mut b = SelectWorkload::new(1000, 7);
        let mut c = SelectWorkload::new(1000, 8);
        assert_eq!(a.next_query(), b.next_query());
        // Different clients draw different streams (overwhelmingly likely
        // to differ on the first draw; deterministic given fixed seeds).
        assert_ne!(a.next_query(), c.next_query());
    }

    #[test]
    fn workload_queries_return_one_row() {
        let mut db = Database::new(PgVersion::parse("10.7").unwrap());
        let accounts = load(&mut db, 1).unwrap();
        let mut s = db.session("app");
        let mut w = SelectWorkload::new(accounts, 0);
        for _ in 0..20 {
            let r = db.execute(&mut s, &w.next_query()).unwrap();
            assert_eq!(r.rows.len(), 1);
        }
    }
}
