//! `SELECT` execution: join planning with predicate pushdown and hash
//! lookups, grouping/aggregation, ordering, and subquery support.

use std::collections::BTreeMap;

use crate::ast::{ColumnRef, Expr, OrderKey, Select, SelectItem, TableRef};
use crate::db::SqlError;
use crate::eval::{eval, Env, ExecCtx};
use crate::value::Value;

/// The rows and column names produced by a `SELECT`.
#[derive(Debug, Clone)]
pub(crate) struct SelectResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

/// One materialized `FROM` source.
struct Source {
    alias: String,
    cols: Vec<String>,
    rows: Vec<Vec<Value>>,
    left_join_on: Option<Expr>,
}

/// Runs a `SELECT`, optionally inside an outer row context (correlated
/// subquery support).
pub(crate) fn run_select(
    ctx: &ExecCtx<'_>,
    select: &Select,
    outer: Option<&Env<'_>>,
) -> Result<SelectResult, SqlError> {
    // ---- materialize FROM sources -----------------------------------------
    let mut sources = Vec::with_capacity(select.from.len());
    for tref in &select.from {
        sources.push(materialize(ctx, tref, outer)?);
    }
    // CVE leak hook: a vulnerable planner evaluates user-defined operators
    // over rows the caller may not see (see `Database::leak_probe`).
    if let Some(where_clause) = &select.where_clause {
        for tref in &select.from {
            if tref.subquery.is_none() {
                ctx.db
                    .leak_probe(ctx, &tref.name, &tref.alias, where_clause)?;
            }
        }
    }

    // ---- join with pushdown ------------------------------------------------
    let conjuncts = select
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();
    let mut applied = vec![false; conjuncts.len()];

    let mut schema: Vec<(String, String)> = Vec::new();
    let mut rows: Vec<Vec<Value>> = vec![Vec::new()]; // one empty binding
    for source in &sources {
        rows = join_step(
            ctx,
            &mut schema,
            rows,
            source,
            &conjuncts,
            &mut applied,
            outer,
        )?;
    }

    // ---- residual filter (subquery conjuncts and anything unapplied) ------
    let mut filtered = Vec::with_capacity(rows.len());
    for row in rows {
        let env = Env {
            schema: &schema,
            row: &row,
            parent: outer,
        };
        let mut keep = true;
        for (i, c) in conjuncts.iter().enumerate() {
            if applied[i] {
                continue;
            }
            if !eval(ctx, c, &env)?.is_truthy() {
                keep = false;
                break;
            }
        }
        if keep {
            filtered.push(row);
        }
    }
    let rows = filtered;

    // ---- projection --------------------------------------------------------
    let items = expand_items(&select.items, &schema);
    // Static column validation: even a zero-row scan must reject unknown
    // columns (Postgres errors at plan time).
    for item in &items {
        let mut refs = Vec::new();
        column_refs(
            item.expr.as_ref().expect("expanded items are exprs"),
            &mut refs,
        );
        for r in &refs {
            if !resolvable(r, &schema, outer) {
                return Err(SqlError::Exec(format!(
                    "column {} does not exist",
                    match &r.table {
                        Some(t) => format!("{}.{}", t.to_lowercase(), r.column.to_lowercase()),
                        None => r.column.to_lowercase(),
                    }
                )));
            }
        }
    }
    let columns: Vec<String> = items.iter().map(output_name).collect();
    let grouped = !select.group_by.is_empty()
        || items
            .iter()
            .any(|i| contains_aggregate(i.expr.as_ref().unwrap()))
        || select.having.as_ref().is_some_and(contains_aggregate);

    // Each output row keeps the context rows needed to evaluate ORDER BY.
    let mut output: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
    if grouped {
        let mut groups: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        for row in rows {
            let env = Env {
                schema: &schema,
                row: &row,
                parent: outer,
            };
            let mut key = String::new();
            for g in &select.group_by {
                key.push_str(&eval(ctx, g, &env)?.group_key());
                key.push('\u{1f}');
            }
            match index.get(&key) {
                Some(&i) => groups[i].1.push(row),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        if groups.is_empty() && select.group_by.is_empty() {
            groups.push((String::new(), Vec::new())); // global aggregate over 0 rows
        }
        for (_, group_rows) in groups {
            if let Some(having) = &select.having {
                let v = eval_grouped(ctx, having, &schema, &group_rows, outer)?;
                if !v.is_truthy() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(items.len());
            for item in &items {
                out.push(eval_grouped(
                    ctx,
                    item.expr.as_ref().unwrap(),
                    &schema,
                    &group_rows,
                    outer,
                )?);
            }
            output.push((out, group_rows));
        }
    } else {
        for row in rows {
            let env = Env {
                schema: &schema,
                row: &row,
                parent: outer,
            };
            let mut out = Vec::with_capacity(items.len());
            for item in &items {
                out.push(eval(ctx, item.expr.as_ref().unwrap(), &env)?);
            }
            output.push((out, vec![row]));
        }
    }

    // ---- DISTINCT ----------------------------------------------------------
    if select.distinct {
        let mut seen = std::collections::BTreeSet::new();
        output.retain(|(out, _)| {
            let key: String = out.iter().map(|v| v.group_key() + "\u{1f}").collect();
            seen.insert(key)
        });
    }

    // ---- ORDER BY ----------------------------------------------------------
    // (sort keys, (projected row, the context rows that produced it))
    type Keyed = Vec<(Vec<Value>, (Vec<Value>, Vec<Vec<Value>>))>;
    if !select.order_by.is_empty() {
        let mut keyed: Keyed = Vec::new();
        for (out, ctx_rows) in output {
            let mut keys = Vec::with_capacity(select.order_by.len());
            for ok in &select.order_by {
                keys.push(order_key_value(
                    ctx, ok, &items, &columns, &out, &schema, &ctx_rows, outer,
                )?);
            }
            keyed.push((keys, (out, ctx_rows)));
        }
        keyed.sort_by(|a, b| {
            for (i, ok) in select.order_by.iter().enumerate() {
                let ord = a.0[i].total_cmp(&b.0[i]);
                let ord = if ok.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        output = keyed.into_iter().map(|(_, v)| v).collect();
    }

    // ---- LIMIT -------------------------------------------------------------
    if let Some(limit) = select.limit {
        output.truncate(limit as usize);
    }

    Ok(SelectResult {
        columns,
        rows: output.into_iter().map(|(o, _)| o).collect(),
    })
}

fn materialize(
    ctx: &ExecCtx<'_>,
    tref: &TableRef,
    outer: Option<&Env<'_>>,
) -> Result<Source, SqlError> {
    if let Some(sub) = &tref.subquery {
        let result = run_select(ctx, sub, outer)?;
        return Ok(Source {
            alias: tref.alias.clone(),
            cols: result
                .columns
                .iter()
                .map(|c| c.to_ascii_uppercase())
                .collect(),
            rows: result.rows,
            left_join_on: tref.left_join_on.clone(),
        });
    }
    let (cols, rows) = ctx.db.visible_rows(ctx, &tref.name)?;
    ctx.charge_scan(rows.len() as u64);
    Ok(Source {
        alias: tref.alias.clone(),
        cols,
        rows,
        left_join_on: tref.left_join_on.clone(),
    })
}

fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary { op, left, right } if op == "AND" => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Collects the free column references of an expression. Columns used inside
/// subqueries are ignored (they resolve against the subquery's own sources or
/// correlate outward at eval time).
pub(crate) fn column_refs(expr: &Expr, out: &mut Vec<ColumnRef>) {
    match expr {
        Expr::Column(c) => out.push(c.clone()),
        Expr::Binary { left, right, .. } => {
            column_refs(left, out);
            column_refs(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => column_refs(expr, out),
        Expr::Between { expr, low, high } => {
            column_refs(expr, out);
            column_refs(low, out);
            column_refs(high, out);
        }
        Expr::In { expr, list, .. } => {
            column_refs(expr, out);
            for e in list {
                column_refs(e, out);
            }
        }
        Expr::Case { arms, otherwise } => {
            for (c, r) in arms {
                column_refs(c, out);
                column_refs(r, out);
            }
            if let Some(e) = otherwise {
                column_refs(e, out);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                column_refs(a, out);
            }
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                column_refs(a, out);
            }
        }
        Expr::Literal(_) | Expr::Exists { .. } | Expr::Subquery(_) | Expr::Param(_) => {}
    }
}

fn contains_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Subquery(_) | Expr::Exists { .. } => true,
        Expr::In {
            subquery,
            list,
            expr,
            ..
        } => subquery.is_some() || contains_subquery(expr) || list.iter().any(contains_subquery),
        Expr::Binary { left, right, .. } => contains_subquery(left) || contains_subquery(right),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => contains_subquery(expr),
        Expr::Between { expr, low, high } => {
            contains_subquery(expr) || contains_subquery(low) || contains_subquery(high)
        }
        Expr::Case { arms, otherwise } => {
            arms.iter()
                .any(|(c, r)| contains_subquery(c) || contains_subquery(r))
                || otherwise.as_deref().is_some_and(contains_subquery)
        }
        Expr::Call { args, .. } => args.iter().any(contains_subquery),
        _ => false,
    }
}

pub(crate) fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::Aggregate { .. } => true,
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::Between { expr, low, high } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        Expr::Case { arms, otherwise } => {
            arms.iter()
                .any(|(c, r)| contains_aggregate(c) || contains_aggregate(r))
                || otherwise.as_deref().is_some_and(contains_aggregate)
        }
        Expr::Call { args, .. } => args.iter().any(contains_aggregate),
        Expr::In { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        _ => false,
    }
}

fn resolvable(col: &ColumnRef, schema: &[(String, String)], outer: Option<&Env<'_>>) -> bool {
    let here = schema
        .iter()
        .any(|(alias, name)| name == &col.column && col.table.as_ref().is_none_or(|t| t == alias));
    if here {
        return true;
    }
    if col.table.is_none() && col.column == "CURRENT_USER" {
        return true;
    }
    match outer {
        Some(env) => {
            env.schema.iter().any(|(alias, name)| {
                name == &col.column && col.table.as_ref().is_none_or(|t| t == alias)
            }) || resolvable(col, &[], env.parent)
        }
        None => false,
    }
}

/// Joins `source` onto the accumulated binding rows, applying every WHERE
/// conjunct that becomes fully bound and using a hash lookup when an
/// equi-join condition is available.
#[allow(clippy::too_many_arguments)]
fn join_step(
    ctx: &ExecCtx<'_>,
    schema: &mut Vec<(String, String)>,
    bound_rows: Vec<Vec<Value>>,
    source: &Source,
    conjuncts: &[Expr],
    applied: &mut [bool],
    outer: Option<&Env<'_>>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let old_schema = schema.clone();
    for col in &source.cols {
        schema.push((source.alias.clone(), col.clone()));
    }

    // Which conjuncts become newly applicable once this source is bound?
    let mut newly: Vec<usize> = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        if applied[i] || contains_subquery(c) || contains_aggregate(c) {
            continue;
        }
        let mut refs = Vec::new();
        column_refs(c, &mut refs);
        let was_bound = refs.iter().all(|r| resolvable(r, &old_schema, outer));
        let now_bound = refs.iter().all(|r| resolvable(r, schema, outer));
        if now_bound && !was_bound {
            newly.push(i);
        }
    }

    // LEFT JOIN: evaluate ON per candidate, pad with NULLs when unmatched.
    if let Some(on) = &source.left_join_on {
        let mut out = Vec::new();
        for row in &bound_rows {
            let mut matched = false;
            for srow in &source.rows {
                let mut combined = row.clone();
                combined.extend(srow.iter().cloned());
                let env = Env {
                    schema,
                    row: &combined,
                    parent: outer,
                };
                if eval(ctx, on, &env)?.is_truthy() {
                    matched = true;
                    out.push(combined);
                }
            }
            if !matched {
                let mut combined = row.clone();
                combined.extend(std::iter::repeat_n(Value::Null, source.cols.len()));
                out.push(combined);
            }
        }
        // Newly-bound conjuncts still apply (they filter the padded rows too).
        let mut filtered = Vec::with_capacity(out.len());
        for row in out {
            let env = Env {
                schema,
                row: &row,
                parent: outer,
            };
            let mut keep = true;
            for &i in &newly {
                if !eval(ctx, &conjuncts[i], &env)?.is_truthy() {
                    keep = false;
                    break;
                }
            }
            if keep {
                filtered.push(row);
            }
        }
        for &i in &newly {
            applied[i] = true;
        }
        return Ok(filtered);
    }

    // Equi-join opportunity: an equi-conjunct `source.col = bound_expr`.
    let mut hash_key: Option<(usize, Expr)> = None; // (source col index, bound-side expr)
    for &i in &newly {
        if let Expr::Binary { op, left, right } = &conjuncts[i] {
            if op == "=" {
                for (a, b) in [(left, right), (right, left)] {
                    if let Expr::Column(c) = a.as_ref() {
                        let source_col = source.cols.iter().position(|col| {
                            col == &c.column && c.table.as_ref().is_none_or(|t| t == &source.alias)
                        });
                        let mut brefs = Vec::new();
                        column_refs(b, &mut brefs);
                        let b_bound = brefs.iter().all(|r| resolvable(r, &old_schema, outer));
                        if let (Some(idx), true) = (source_col, b_bound) {
                            hash_key = Some((idx, (**b).clone()));
                            break;
                        }
                    }
                }
            }
        }
        if hash_key.is_some() {
            break;
        }
    }

    let mut out = Vec::new();
    if let Some((col_idx, bound_expr)) = hash_key {
        let mut index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (ri, srow) in source.rows.iter().enumerate() {
            index.entry(srow[col_idx].group_key()).or_default().push(ri);
        }
        for row in &bound_rows {
            let env = Env {
                schema: &old_schema,
                row,
                parent: outer,
            };
            let key = eval(ctx, &bound_expr, &env)?;
            if key.is_null() {
                continue;
            }
            if let Some(candidates) = index.get(&key.group_key()) {
                for &ri in candidates {
                    let mut combined = row.clone();
                    combined.extend(source.rows[ri].iter().cloned());
                    let env = Env {
                        schema,
                        row: &combined,
                        parent: outer,
                    };
                    let mut keep = true;
                    for &i in &newly {
                        if !eval(ctx, &conjuncts[i], &env)?.is_truthy() {
                            keep = false;
                            break;
                        }
                    }
                    if keep {
                        out.push(combined);
                    }
                }
            }
        }
    } else {
        for row in &bound_rows {
            for srow in &source.rows {
                let mut combined = row.clone();
                combined.extend(srow.iter().cloned());
                let env = Env {
                    schema,
                    row: &combined,
                    parent: outer,
                };
                let mut keep = true;
                for &i in &newly {
                    if !eval(ctx, &conjuncts[i], &env)?.is_truthy() {
                        keep = false;
                        break;
                    }
                }
                if keep {
                    out.push(combined);
                }
            }
        }
    }
    for &i in &newly {
        applied[i] = true;
    }
    Ok(out)
}

/// Expands `*` items against the joined schema.
fn expand_items(items: &[SelectItem], schema: &[(String, String)]) -> Vec<SelectItem> {
    let mut out = Vec::new();
    for item in items {
        match &item.expr {
            None => {
                for (alias, col) in schema {
                    out.push(SelectItem {
                        expr: Some(Expr::Column(ColumnRef {
                            table: Some(alias.clone()),
                            column: col.clone(),
                        })),
                        alias: Some(col.clone()),
                    });
                }
            }
            Some(_) => out.push(item.clone()),
        }
    }
    out
}

fn output_name(item: &SelectItem) -> String {
    if let Some(alias) = &item.alias {
        return alias.to_ascii_lowercase();
    }
    match item.expr.as_ref() {
        Some(Expr::Column(c)) => c.column.to_ascii_lowercase(),
        Some(Expr::Aggregate { name, .. }) => name.to_ascii_lowercase(),
        _ => "?column?".to_string(),
    }
}

/// Evaluates an expression over a group by rewriting aggregate nodes into
/// literals and evaluating the residue on the group's first row.
fn eval_grouped(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    schema: &[(String, String)],
    group_rows: &[Vec<Value>],
    outer: Option<&Env<'_>>,
) -> Result<Value, SqlError> {
    let rewritten = rewrite_aggregates(ctx, expr, schema, group_rows, outer)?;
    let empty: Vec<Value> = Vec::new();
    let first = group_rows.first().map(Vec::as_slice).unwrap_or(&empty);
    let env = Env {
        schema,
        row: first,
        parent: outer,
    };
    eval(ctx, &rewritten, &env)
}

fn rewrite_aggregates(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    schema: &[(String, String)],
    rows: &[Vec<Value>],
    outer: Option<&Env<'_>>,
) -> Result<Expr, SqlError> {
    Ok(match expr {
        Expr::Aggregate {
            name,
            arg,
            distinct,
        } => Expr::Literal(compute_aggregate(
            ctx,
            name,
            arg.as_deref(),
            *distinct,
            schema,
            rows,
            outer,
        )?),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: op.clone(),
            left: Box::new(rewrite_aggregates(ctx, left, schema, rows, outer)?),
            right: Box::new(rewrite_aggregates(ctx, right, schema, rows, outer)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: op.clone(),
            expr: Box::new(rewrite_aggregates(ctx, expr, schema, rows, outer)?),
        },
        Expr::Between { expr, low, high } => Expr::Between {
            expr: Box::new(rewrite_aggregates(ctx, expr, schema, rows, outer)?),
            low: Box::new(rewrite_aggregates(ctx, low, schema, rows, outer)?),
            high: Box::new(rewrite_aggregates(ctx, high, schema, rows, outer)?),
        },
        Expr::Case { arms, otherwise } => Expr::Case {
            arms: arms
                .iter()
                .map(|(c, r)| {
                    Ok((
                        rewrite_aggregates(ctx, c, schema, rows, outer)?,
                        rewrite_aggregates(ctx, r, schema, rows, outer)?,
                    ))
                })
                .collect::<Result<_, SqlError>>()?,
            otherwise: match otherwise {
                Some(e) => Some(Box::new(rewrite_aggregates(ctx, e, schema, rows, outer)?)),
                None => None,
            },
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| rewrite_aggregates(ctx, a, schema, rows, outer))
                .collect::<Result<_, _>>()?,
        },
        other => other.clone(),
    })
}

fn compute_aggregate(
    ctx: &ExecCtx<'_>,
    name: &str,
    arg: Option<&Expr>,
    distinct: bool,
    schema: &[(String, String)],
    rows: &[Vec<Value>],
    outer: Option<&Env<'_>>,
) -> Result<Value, SqlError> {
    let mut values = Vec::with_capacity(rows.len());
    for row in rows {
        let env = Env {
            schema,
            row,
            parent: outer,
        };
        match arg {
            Some(a) => values.push(eval(ctx, a, &env)?),
            None => values.push(Value::Int(1)), // COUNT(*)
        }
    }
    if distinct {
        let mut seen = std::collections::BTreeSet::new();
        values.retain(|v| seen.insert(v.group_key()));
    }
    match name {
        "COUNT" => {
            let count = if arg.is_some() {
                values.iter().filter(|v| !v.is_null()).count()
            } else {
                values.len()
            };
            Ok(Value::Int(count as i64))
        }
        "SUM" | "AVG" => {
            let nums: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
            if nums.is_empty() {
                return Ok(Value::Null);
            }
            let sum: f64 = nums.iter().sum();
            if name == "SUM" {
                // Keep integer sums integral.
                if values
                    .iter()
                    .all(|v| matches!(v, Value::Int(_) | Value::Null))
                {
                    Ok(Value::Int(sum as i64))
                } else {
                    Ok(Value::Float(sum))
                }
            } else {
                Ok(Value::Float(sum / nums.len() as f64))
            }
        }
        "MIN" | "MAX" => {
            let mut best: Option<Value> = None;
            for v in values {
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take = match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Less) => name == "MIN",
                            Some(std::cmp::Ordering::Greater) => name == "MAX",
                            _ => false,
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        other => Err(SqlError::Exec(format!("unknown aggregate {other}"))),
    }
}

#[allow(clippy::too_many_arguments)]
fn order_key_value(
    ctx: &ExecCtx<'_>,
    key: &OrderKey,
    items: &[SelectItem],
    columns: &[String],
    out_row: &[Value],
    schema: &[(String, String)],
    ctx_rows: &[Vec<Value>],
    outer: Option<&Env<'_>>,
) -> Result<Value, SqlError> {
    // Ordinal: ORDER BY 2.
    if let Expr::Literal(Value::Int(n)) = &key.expr {
        let i = *n as usize;
        if i >= 1 && i <= out_row.len() {
            return Ok(out_row[i - 1].clone());
        }
    }
    // Output alias or column name.
    if let Expr::Column(c) = &key.expr {
        if c.table.is_none() {
            let lower = c.column.to_ascii_lowercase();
            if let Some(i) = columns.iter().position(|name| name == &lower) {
                // Prefer the projected value when the item isn't a plain
                // passthrough (aggregates, computed expressions).
                let passthrough = matches!(
                    items[i].expr.as_ref(),
                    Some(Expr::Column(cc)) if cc.column == c.column
                );
                if !passthrough {
                    return Ok(out_row[i].clone());
                }
            }
        }
    }
    eval_grouped(ctx, &key.expr, schema, ctx_rows, outer)
}
