//! Property-based tests on SQL semantics: aggregate identities, filter
//! complementarity, and update/delete conservation — the invariants that
//! keep N identical MiniPg instances answering identically.

use proptest::prelude::*;
use rddr_pgsim::{Database, PgVersion, Value};

fn fresh(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new(PgVersion::parse("10.7").unwrap());
    let mut s = db.session("app");
    db.execute(&mut s, "CREATE TABLE t (k INT, v INT)").unwrap();
    if !rows.is_empty() {
        let values: Vec<String> = rows.iter().map(|(k, v)| format!("({k}, {v})")).collect();
        db.execute(
            &mut s,
            &format!("INSERT INTO t VALUES {}", values.join(", ")),
        )
        .unwrap();
    }
    db
}

fn scalar(db: &mut Database, sql: &str) -> i64 {
    let mut s = db.session("app");
    let r = db.execute(&mut s, sql).unwrap();
    match &r.rows[0][0] {
        Value::Null => 0,
        v => v
            .to_string()
            .parse()
            .unwrap_or_else(|_| panic!("{sql}: {v}")),
    }
}

proptest! {
    /// SUM over a table equals the sum of SUMs over a partition by predicate.
    #[test]
    fn sum_partitions(rows in proptest::collection::vec((0i64..100, -50i64..50), 0..40),
                      pivot in 0i64..100) {
        let mut db = fresh(&rows);
        let total = scalar(&mut db, "SELECT SUM(v) FROM t");
        let below = scalar(&mut db, &format!("SELECT SUM(v) FROM t WHERE k < {pivot}"));
        let above = scalar(&mut db, &format!("SELECT SUM(v) FROM t WHERE k >= {pivot}"));
        prop_assert_eq!(total, below + above);
    }

    /// COUNT(*) with a predicate and its negation partition the table.
    #[test]
    fn count_complement(rows in proptest::collection::vec((0i64..100, -50i64..50), 0..40),
                        pivot in -50i64..50) {
        let mut db = fresh(&rows);
        let all = scalar(&mut db, "SELECT COUNT(*) FROM t");
        let hit = scalar(&mut db, &format!("SELECT COUNT(*) FROM t WHERE v > {pivot}"));
        let miss = scalar(&mut db, &format!("SELECT COUNT(*) FROM t WHERE NOT v > {pivot}"));
        prop_assert_eq!(all, hit + miss);
    }

    /// GROUP BY sums add up to the global sum.
    #[test]
    fn group_by_sums_to_total(rows in proptest::collection::vec((0i64..5, -50i64..50), 1..40)) {
        let mut db = fresh(&rows);
        let total = scalar(&mut db, "SELECT SUM(v) FROM t");
        let mut s = db.session("app");
        let groups = db.execute(&mut s, "SELECT k, SUM(v) FROM t GROUP BY k").unwrap();
        let group_total: i64 = groups
            .rows
            .iter()
            .map(|row| row[1].to_string().parse::<i64>().unwrap())
            .sum();
        prop_assert_eq!(total, group_total);
        // And there are as many groups as distinct keys.
        let distinct = scalar(&mut db, "SELECT COUNT(DISTINCT k) FROM t");
        prop_assert_eq!(groups.rows.len() as i64, distinct);
    }

    /// DELETE + COUNT conservation.
    #[test]
    fn delete_conserves_rows(rows in proptest::collection::vec((0i64..100, -50i64..50), 0..40),
                             pivot in 0i64..100) {
        let mut db = fresh(&rows);
        let before = scalar(&mut db, "SELECT COUNT(*) FROM t");
        let doomed = scalar(&mut db, &format!("SELECT COUNT(*) FROM t WHERE k < {pivot}"));
        let mut s = db.session("app");
        let r = db.execute(&mut s, &format!("DELETE FROM t WHERE k < {pivot}")).unwrap();
        prop_assert_eq!(r.tag, format!("DELETE {doomed}"));
        let after = scalar(&mut db, "SELECT COUNT(*) FROM t");
        prop_assert_eq!(after, before - doomed);
    }

    /// UPDATE preserves row count and applies uniformly.
    #[test]
    fn update_is_uniform(rows in proptest::collection::vec((0i64..100, -50i64..50), 1..40),
                         delta in -10i64..10) {
        let mut db = fresh(&rows);
        let before_sum = scalar(&mut db, "SELECT SUM(v) FROM t");
        let count = scalar(&mut db, "SELECT COUNT(*) FROM t");
        let mut s = db.session("app");
        db.execute(&mut s, &format!("UPDATE t SET v = v + {delta}")).unwrap();
        let after_sum = scalar(&mut db, "SELECT SUM(v) FROM t");
        prop_assert_eq!(after_sum, before_sum + delta * count);
    }

    /// Two freshly seeded engines always agree — the N-versioning premise
    /// for identical instances.
    #[test]
    fn identical_engines_answer_identically(
        rows in proptest::collection::vec((0i64..20, -50i64..50), 0..30),
        pivot in 0i64..20,
    ) {
        let mut a = fresh(&rows);
        let mut b = fresh(&rows);
        for sql in [
            format!("SELECT k, SUM(v) FROM t WHERE k < {pivot} GROUP BY k ORDER BY k"),
            "SELECT COUNT(*), MIN(v), MAX(v) FROM t".to_string(),
            "SELECT v FROM t ORDER BY v, k LIMIT 5".to_string(),
        ] {
            let mut sa = a.session("app");
            let mut sb = b.session("app");
            let ra = a.execute(&mut sa, &sql).unwrap();
            let rb = b.execute(&mut sb, &sql).unwrap();
            prop_assert_eq!(ra.rows, rb.rows, "{}", sql);
        }
    }
}
