//! Edge-case coverage for the SQL engine: the corners TPC-H and the CVE
//! scenarios don't exercise.

use rddr_pgsim::{Database, PgVersion, SqlError, Value};

fn db() -> Database {
    Database::new(PgVersion::parse("10.7").unwrap())
}

fn run(db: &mut Database, sql: &str) -> rddr_pgsim::QueryResult {
    let mut s = db.session("app");
    db.execute(&mut s, sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
}

fn texts(r: &rddr_pgsim::QueryResult) -> Vec<Vec<String>> {
    r.rows
        .iter()
        .map(|row| row.iter().map(Value::to_string).collect())
        .collect()
}

#[test]
fn aggregates_over_empty_table() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    let r = run(
        &mut db,
        "SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t",
    );
    assert_eq!(texts(&r), vec![vec!["0", "", "", "", ""]]);
}

#[test]
fn group_by_over_empty_table_yields_no_groups() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT, g TEXT)");
    let r = run(&mut db, "SELECT g, COUNT(*) FROM t GROUP BY g");
    assert!(r.rows.is_empty());
}

#[test]
fn having_without_group_by() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    run(&mut db, "INSERT INTO t VALUES (1), (2), (3)");
    let r = run(&mut db, "SELECT SUM(x) FROM t HAVING SUM(x) > 5");
    assert_eq!(texts(&r), vec![vec!["6"]]);
    let r = run(&mut db, "SELECT SUM(x) FROM t HAVING SUM(x) > 100");
    assert!(r.rows.is_empty());
}

#[test]
fn distinct_on_multiple_columns() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (a INT, b TEXT)");
    run(
        &mut db,
        "INSERT INTO t VALUES (1,'x'), (1,'x'), (1,'y'), (2,'x')",
    );
    let r = run(&mut db, "SELECT DISTINCT a, b FROM t ORDER BY a, b");
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn group_by_expression() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    run(&mut db, "INSERT INTO t VALUES (1), (2), (3), (4), (5)");
    let r = run(
        &mut db,
        "SELECT x % 2, COUNT(*) FROM t GROUP BY x % 2 ORDER BY 1",
    );
    assert_eq!(texts(&r), vec![vec!["0", "2"], vec!["1", "3"]]);
}

#[test]
fn case_without_else_yields_null() {
    let mut db = db();
    let r = run(&mut db, "SELECT CASE WHEN FALSE THEN 1 END");
    assert!(r.rows[0][0].is_null());
}

#[test]
fn count_ignores_nulls_but_star_does_not() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    run(&mut db, "INSERT INTO t VALUES (1), (NULL), (3), (NULL)");
    let r = run(&mut db, "SELECT COUNT(x), COUNT(*), SUM(x) FROM t");
    assert_eq!(texts(&r), vec![vec!["2", "4", "4"]]);
}

#[test]
fn limit_zero_and_limit_beyond() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    run(&mut db, "INSERT INTO t VALUES (1), (2)");
    assert!(run(&mut db, "SELECT x FROM t LIMIT 0").rows.is_empty());
    assert_eq!(run(&mut db, "SELECT x FROM t LIMIT 99").rows.len(), 2);
}

#[test]
fn cross_join_cardinality() {
    let mut db = db();
    run(&mut db, "CREATE TABLE a (x INT)");
    run(&mut db, "CREATE TABLE b (y INT)");
    run(&mut db, "INSERT INTO a VALUES (1), (2), (3)");
    run(&mut db, "INSERT INTO b VALUES (10), (20)");
    let r = run(&mut db, "SELECT a.x, b.y FROM a, b");
    assert_eq!(r.rows.len(), 6);
}

#[test]
fn self_join_with_aliases() {
    let mut db = db();
    run(&mut db, "CREATE TABLE e (id INT, manager INT, name TEXT)");
    run(
        &mut db,
        "INSERT INTO e VALUES (1, NULL, 'ceo'), (2, 1, 'cto'), (3, 2, 'dev')",
    );
    let r = run(
        &mut db,
        "SELECT w.name, m.name FROM e w, e m WHERE w.manager = m.id ORDER BY w.id",
    );
    assert_eq!(texts(&r), vec![vec!["cto", "ceo"], vec!["dev", "cto"]]);
}

#[test]
fn nested_uncorrelated_subqueries() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    run(&mut db, "INSERT INTO t VALUES (1), (2), (3), (4)");
    let r = run(
        &mut db,
        "SELECT COUNT(*) FROM t WHERE x > (SELECT AVG(x) FROM t WHERE x IN \
         (SELECT x FROM t WHERE x < 4))",
    );
    assert_eq!(texts(&r), vec![vec!["2"]]);
}

#[test]
fn in_with_empty_subquery_result() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    run(&mut db, "INSERT INTO t VALUES (1)");
    let r = run(
        &mut db,
        "SELECT x FROM t WHERE x IN (SELECT x FROM t WHERE x > 99)",
    );
    assert!(r.rows.is_empty());
    let r = run(
        &mut db,
        "SELECT x FROM t WHERE x NOT IN (SELECT x FROM t WHERE x > 99)",
    );
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn update_uses_row_values() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (a INT, b INT)");
    run(&mut db, "INSERT INTO t VALUES (1, 10), (2, 20)");
    run(&mut db, "UPDATE t SET a = a + b, b = a");
    // `b = a` sees the OLD value of `a` (assignments evaluate against the
    // pre-update row, like Postgres).
    let r = run(&mut db, "SELECT a, b FROM t ORDER BY b");
    assert_eq!(texts(&r), vec![vec!["11", "1"], vec!["22", "2"]]);
}

#[test]
fn delete_without_where_empties_table() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    run(&mut db, "INSERT INTO t VALUES (1), (2), (3)");
    let r = run(&mut db, "DELETE FROM t");
    assert_eq!(r.tag, "DELETE 3");
    assert_eq!(
        texts(&run(&mut db, "SELECT COUNT(*) FROM t")),
        vec![vec!["0"]]
    );
}

#[test]
fn type_coercion_on_insert() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (f FLOAT, s TEXT)");
    run(&mut db, "INSERT INTO t VALUES (1, 42)"); // int→float, int→text
    let r = run(&mut db, "SELECT f, s FROM t");
    assert_eq!(texts(&r), vec![vec!["1", "42"]]);
    // Incompatible coercion errors.
    let mut s = db.session("app");
    assert!(matches!(
        db.execute(&mut s, "INSERT INTO t VALUES ('nope', 'x')"),
        Err(SqlError::Exec(_))
    ));
}

#[test]
fn unknown_column_and_table_errors() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    let mut s = db.session("app");
    assert!(matches!(
        db.execute(&mut s, "SELECT nope FROM t"),
        Err(SqlError::Exec(_))
    ));
    assert!(matches!(
        db.execute(&mut s, "SELECT x FROM ghost"),
        Err(SqlError::Exec(_))
    ));
}

#[test]
fn duplicate_table_creation_errors() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    let mut s = db.session("app");
    assert!(db.execute(&mut s, "CREATE TABLE t (y INT)").is_err());
}

#[test]
fn explain_renders_plan_rows() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    let r = run(&mut db, "EXPLAIN (COSTS OFF) SELECT x FROM t WHERE x > 1");
    assert_eq!(r.columns, vec!["QUERY PLAN"]);
    let plan = texts(&r);
    assert!(plan[0][0].contains("Seq Scan on t"), "{plan:?}");
    assert!(plan[1][0].contains("Filter"), "{plan:?}");
}

#[test]
fn pkey_index_survives_inserts_and_invalidation() {
    let mut db = db();
    run(&mut db, "CREATE TABLE big (id INT, v TEXT)");
    let rows: Vec<String> = (0..300).map(|i| format!("({i}, 'v{i}')")).collect();
    run(
        &mut db,
        &format!("INSERT INTO big VALUES {}", rows.join(", ")),
    );
    // Point query builds the index.
    let r = run(&mut db, "SELECT v FROM big WHERE id = 250");
    assert_eq!(texts(&r), vec![vec!["v250"]]);
    assert!(r.scanned < 10);
    // Incremental insert keeps the index correct.
    run(&mut db, "INSERT INTO big VALUES (1000, 'fresh')");
    let r = run(&mut db, "SELECT v FROM big WHERE id = 1000");
    assert_eq!(texts(&r), vec![vec!["fresh"]]);
    // UPDATE invalidates; results stay correct after rebuild.
    run(&mut db, "UPDATE big SET id = 2000 WHERE id = 250");
    let r = run(&mut db, "SELECT v FROM big WHERE id = 2000");
    assert_eq!(texts(&r), vec![vec!["v250"]]);
    let r = run(&mut db, "SELECT v FROM big WHERE id = 250");
    assert!(r.rows.is_empty());
    // DELETE invalidates too.
    run(&mut db, "DELETE FROM big WHERE id = 2000");
    assert!(run(&mut db, "SELECT v FROM big WHERE id = 2000")
        .rows
        .is_empty());
}

#[test]
fn like_patterns_with_literal_percent_semantics() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (s TEXT)");
    run(
        &mut db,
        "INSERT INTO t VALUES ('100% done'), ('done'), ('10x done')",
    );
    // '%' is a wildcard, so '100% done' also matches '10%_done'-ish shapes;
    // we exercise the common prefix/suffix usage.
    let r = run(&mut db, "SELECT COUNT(*) FROM t WHERE s LIKE '%done'");
    assert_eq!(texts(&r), vec![vec!["3"]]);
    let r = run(&mut db, "SELECT COUNT(*) FROM t WHERE s LIKE '10_%'");
    assert_eq!(texts(&r), vec![vec!["2"]]);
}

#[test]
fn string_concat_and_functions_compose() {
    let mut db = db();
    let r = run(
        &mut db,
        "SELECT UPPER(SUBSTRING('hello world' FROM 7)) || '!' AS shout",
    );
    assert_eq!(r.columns, vec!["shout"]);
    assert_eq!(texts(&r), vec![vec!["WORLD!"]]);
}

#[test]
fn order_by_mixed_directions_and_nulls_last() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (a INT, b INT)");
    run(
        &mut db,
        "INSERT INTO t VALUES (1, 5), (1, NULL), (2, 1), (2, 9)",
    );
    let r = run(&mut db, "SELECT a, b FROM t ORDER BY a DESC, b");
    assert_eq!(
        texts(&r),
        vec![
            vec!["2", "1"],
            vec!["2", "9"],
            vec!["1", "5"],
            vec!["1", ""], // NULL sorts last within its group
        ]
    );
}

#[test]
fn scalar_subquery_with_no_rows_is_null() {
    let mut db = db();
    run(&mut db, "CREATE TABLE t (x INT)");
    run(&mut db, "INSERT INTO t VALUES (1)");
    let r = run(&mut db, "SELECT (SELECT x FROM t WHERE x > 99) IS NULL");
    assert_eq!(texts(&r), vec![vec!["t"]]);
}
