//! PostgreSQL wire-server tests: the handshake, query cycles, notices,
//! errors, and protocol edge cases — straight against one `PgServer`
//! container, no RDDR in between.

use std::sync::Arc;

use rddr_net::{Network, ServiceAddr, Stream};
use rddr_orchestra::{Cluster, Image};
use rddr_pgsim::{query_message, startup_message, Database, PgClient, PgServer, PgVersion};
use rddr_protocols::pg::PgMessage;

fn server_cluster() -> (Cluster, ServiceAddr) {
    let cluster = Cluster::new(2);
    let mut db = Database::new(PgVersion::parse("10.7").unwrap());
    let mut s = db.session("app");
    db.execute(&mut s, "CREATE TABLE kv (k INT, v TEXT)")
        .unwrap();
    db.execute(&mut s, "INSERT INTO kv VALUES (1, 'one'), (2, 'two')")
        .unwrap();
    let addr = ServiceAddr::new("pg", 5432);
    let handle = cluster
        .run_container(
            "pg-0",
            Image::new("postgres", "10.7"),
            &addr,
            Arc::new(PgServer::new(db)),
        )
        .unwrap();
    std::mem::forget(handle);
    (cluster, addr)
}

#[test]
fn handshake_reports_version_and_ready() {
    let (cluster, addr) = server_cluster();
    let mut conn = cluster.net().dial(&addr).unwrap();
    conn.write_all(&startup_message("app")).unwrap();
    // Collect messages until ReadyForQuery.
    let mut buf = Vec::new();
    let mut tags = Vec::new();
    let mut params = Vec::new();
    let mut chunk = [0u8; 4096];
    'outer: loop {
        let n = conn.read(&mut chunk).unwrap();
        assert!(n > 0, "server must greet");
        buf.extend_from_slice(&chunk[..n]);
        while let Some((msg, used)) = PgMessage::decode(&buf, false).unwrap() {
            buf.drain(..used);
            tags.push(msg.tag);
            if msg.tag == b'S' {
                params.push(String::from_utf8_lossy(&msg.payload).into_owned());
            }
            if msg.tag == b'Z' {
                break 'outer;
            }
        }
    }
    assert_eq!(tags, vec![b'R', b'S', b'K', b'Z']);
    assert!(params[0].contains("server_version"));
    assert!(params[0].contains("10.7"));
}

#[test]
fn query_cycle_and_errors() {
    let (cluster, addr) = server_cluster();
    let mut client = PgClient::connect(cluster.net().dial(&addr).unwrap(), "app").unwrap();
    let ok = client.query("SELECT v FROM kv ORDER BY k").unwrap();
    assert_eq!(ok.columns, vec!["v"]);
    assert_eq!(
        ok.rows,
        vec![vec!["one".to_string()], vec!["two".to_string()]]
    );
    assert_eq!(ok.tag, "SELECT 2");

    let err = client.query("SELECT broken syntax here FROM").unwrap();
    assert!(err.error.is_some());
    // The connection stays usable after an error (ReadyForQuery resyncs).
    let again = client.query("SELECT COUNT(*) FROM kv").unwrap();
    assert_eq!(again.rows, vec![vec!["2".to_string()]]);
}

#[test]
fn notices_are_delivered() {
    let (cluster, addr) = server_cluster();
    let mut client = PgClient::connect(cluster.net().dial(&addr).unwrap(), "app").unwrap();
    client
        .query(
            "CREATE FUNCTION noisy(int, int) RETURNS bool \
             AS 'BEGIN RAISE NOTICE ''seen % and %'', $1, $2; RETURN $1 < $2; END' \
             LANGUAGE plpgsql",
        )
        .unwrap();
    client
        .query("CREATE OPERATOR <^> (procedure=noisy, leftarg=int, rightarg=int)")
        .unwrap();
    let r = client
        .query("SELECT k FROM kv WHERE k <^> 10 ORDER BY k")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.notices.len(), 2, "{:?}", r.notices);
    assert!(r.notices[0].contains("seen 1 and 10"));
}

#[test]
fn permission_denied_maps_to_sqlstate() {
    let (cluster, addr) = server_cluster();
    let mut client = PgClient::connect(cluster.net().dial(&addr).unwrap(), "mallory").unwrap();
    let r = client.query("SELECT * FROM kv").unwrap();
    let err = r.error.expect("permission denied");
    assert!(err.contains("42501"), "{err}");
}

#[test]
fn extended_protocol_is_gracefully_rejected() {
    let (cluster, addr) = server_cluster();
    let mut conn = cluster.net().dial(&addr).unwrap();
    conn.write_all(&startup_message("app")).unwrap();
    // Drain the greeting.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    'greet: loop {
        let n = conn.read(&mut chunk).unwrap();
        buf.extend_from_slice(&chunk[..n]);
        while let Some((msg, used)) = PgMessage::decode(&buf, false).unwrap() {
            buf.drain(..used);
            if msg.tag == b'Z' {
                break 'greet;
            }
        }
    }
    // Send a Parse ('P') message: the simple-query-only server answers with
    // an error and stays in sync.
    conn.write_all(
        &PgMessage {
            tag: b'P',
            payload: b"stmt\0SELECT 1\0".to_vec(),
        }
        .encode(),
    )
    .unwrap();
    let mut saw_error = false;
    'resp: loop {
        let n = conn.read(&mut chunk).unwrap();
        buf.extend_from_slice(&chunk[..n]);
        while let Some((msg, used)) = PgMessage::decode(&buf, false).unwrap() {
            buf.drain(..used);
            if msg.tag == b'E' {
                saw_error = true;
            }
            if msg.tag == b'Z' {
                break 'resp;
            }
        }
    }
    assert!(saw_error);
    // Plain queries still work on the same connection.
    conn.write_all(&query_message("SELECT 1")).unwrap();
    let mut got_row = false;
    'q: loop {
        let n = conn.read(&mut chunk).unwrap();
        buf.extend_from_slice(&chunk[..n]);
        while let Some((msg, used)) = PgMessage::decode(&buf, false).unwrap() {
            buf.drain(..used);
            if msg.tag == b'D' {
                got_row = true;
            }
            if msg.tag == b'Z' {
                break 'q;
            }
        }
    }
    assert!(got_row);
}

#[test]
fn terminate_closes_cleanly() {
    let (cluster, addr) = server_cluster();
    let mut conn = cluster.net().dial(&addr).unwrap();
    conn.write_all(&startup_message("app")).unwrap();
    let mut chunk = [0u8; 4096];
    let _ = conn.read(&mut chunk).unwrap(); // greeting
    conn.write_all(
        &PgMessage {
            tag: b'X',
            payload: Vec::new(),
        }
        .encode(),
    )
    .unwrap();
    // Server closes: next read returns EOF (possibly after draining).
    loop {
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

#[test]
fn sessions_are_isolated_but_data_is_shared() {
    let (cluster, addr) = server_cluster();
    let net = cluster.net();
    let mut a = PgClient::connect(net.dial(&addr).unwrap(), "app").unwrap();
    let mut b = PgClient::connect(net.dial(&addr).unwrap(), "app").unwrap();
    a.query("INSERT INTO kv VALUES (3, 'three')").unwrap();
    let r = b.query("SELECT COUNT(*) FROM kv").unwrap();
    assert_eq!(
        r.rows,
        vec![vec!["3".to_string()]],
        "writes are visible across sessions"
    );
    // Session settings are NOT shared.
    a.query("SET client_min_messages TO 'notice'").unwrap();
    let r = b.query("SHOW client_min_messages").unwrap();
    assert_eq!(r.rows, vec![vec![String::new()]]);
}
