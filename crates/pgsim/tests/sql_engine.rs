//! SQL-semantics and CVE-behaviour tests for MiniPg / MiniCockroach.

use rddr_pgsim::{CockroachFlavor, Database, DbFlavor, PgVersion, SqlError, Value};

fn pg(version: &str) -> Database {
    Database::new(PgVersion::parse(version).unwrap())
}

fn run(db: &mut Database, user: &str, sql: &str) -> rddr_pgsim::QueryResult {
    let mut s = db.session(user);
    db.execute(&mut s, sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
}

fn run_err(db: &mut Database, user: &str, sql: &str) -> SqlError {
    let mut s = db.session(user);
    db.execute(&mut s, sql)
        .expect_err(&format!("{sql} should fail"))
}

fn texts(result: &rddr_pgsim::QueryResult) -> Vec<Vec<String>> {
    result
        .rows
        .iter()
        .map(|r| r.iter().map(Value::to_string).collect())
        .collect()
}

fn seed_people(db: &mut Database) {
    run(
        db,
        "app",
        "CREATE TABLE people (id INT, name TEXT, age INT, city TEXT)",
    );
    run(
        db,
        "app",
        "INSERT INTO people VALUES \
         (1, 'ada', 36, 'london'), (2, 'grace', 45, 'nyc'), \
         (3, 'alan', 41, 'london'), (4, 'edsger', 72, 'austin'), \
         (5, 'barbara', 55, 'nyc')",
    );
}

#[test]
fn select_where_order_limit() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let r = run(
        &mut db,
        "app",
        "SELECT name FROM people WHERE age > 40 ORDER BY age DESC LIMIT 2",
    );
    assert_eq!(texts(&r), vec![vec!["edsger"], vec!["barbara"]]);
    assert_eq!(r.tag, "SELECT 2");
}

#[test]
fn arithmetic_and_aliases() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let r = run(
        &mut db,
        "app",
        "SELECT name, age * 2 AS double_age FROM people WHERE id = 1",
    );
    assert_eq!(r.columns, vec!["name", "double_age"]);
    assert_eq!(texts(&r), vec![vec!["ada", "72"]]);
}

#[test]
fn aggregates_with_group_by_and_having() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let r = run(
        &mut db,
        "app",
        "SELECT city, COUNT(*) AS n, AVG(age) FROM people \
         GROUP BY city HAVING COUNT(*) > 1 ORDER BY city",
    );
    assert_eq!(
        texts(&r),
        vec![vec!["london", "2", "38.5000"], vec!["nyc", "2", "50"]]
    );
}

#[test]
fn count_distinct_and_min_max() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let r = run(
        &mut db,
        "app",
        "SELECT COUNT(DISTINCT city), MIN(age), MAX(name) FROM people",
    );
    assert_eq!(texts(&r), vec![vec!["3", "36", "grace"]]);
}

#[test]
fn joins_with_hash_lookup() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    run(
        &mut db,
        "app",
        "CREATE TABLE orders (id INT, person_id INT, total FLOAT)",
    );
    run(
        &mut db,
        "app",
        "INSERT INTO orders VALUES (100, 1, 9.5), (101, 1, 20.0), (102, 3, 7.25)",
    );
    let r = run(
        &mut db,
        "app",
        "SELECT p.name, SUM(o.total) AS spent FROM people p, orders o \
         WHERE p.id = o.person_id GROUP BY p.name ORDER BY spent DESC",
    );
    assert_eq!(
        texts(&r),
        vec![vec!["ada", "29.5000"], vec!["alan", "7.2500"]]
    );
}

#[test]
fn explicit_join_syntax() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    run(
        &mut db,
        "app",
        "CREATE TABLE badges (person_id INT, badge TEXT)",
    );
    run(
        &mut db,
        "app",
        "INSERT INTO badges VALUES (1, 'turing'), (2, 'hopper')",
    );
    let r = run(
        &mut db,
        "app",
        "SELECT p.name, b.badge FROM people p JOIN badges b ON p.id = b.person_id \
         ORDER BY p.name",
    );
    assert_eq!(
        texts(&r),
        vec![vec!["ada", "turing"], vec!["grace", "hopper"]]
    );
}

#[test]
fn left_join_pads_nulls() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    run(
        &mut db,
        "app",
        "CREATE TABLE badges (person_id INT, badge TEXT)",
    );
    run(&mut db, "app", "INSERT INTO badges VALUES (1, 'turing')");
    let r = run(
        &mut db,
        "app",
        "SELECT p.name, b.badge FROM people p LEFT JOIN badges b ON p.id = b.person_id \
         WHERE p.id <= 2 ORDER BY p.id",
    );
    assert_eq!(texts(&r), vec![vec!["ada", "turing"], vec!["grace", ""]]);
}

#[test]
fn subqueries_scalar_in_exists() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let r = run(
        &mut db,
        "app",
        "SELECT name FROM people WHERE age > (SELECT AVG(age) FROM people) ORDER BY name",
    );
    assert_eq!(texts(&r), vec![vec!["barbara"], vec!["edsger"]]);

    let r = run(
        &mut db,
        "app",
        "SELECT name FROM people WHERE city IN (SELECT city FROM people WHERE age > 70)",
    );
    assert_eq!(texts(&r), vec![vec!["edsger"]]);
}

#[test]
fn correlated_exists() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    run(
        &mut db,
        "app",
        "CREATE TABLE orders (id INT, person_id INT, total FLOAT)",
    );
    run(
        &mut db,
        "app",
        "INSERT INTO orders VALUES (100, 1, 9.5), (102, 3, 7.25)",
    );
    let r = run(
        &mut db,
        "app",
        "SELECT name FROM people p WHERE EXISTS \
         (SELECT 1 FROM orders o WHERE o.person_id = p.id) ORDER BY name",
    );
    assert_eq!(texts(&r), vec![vec!["ada"], vec!["alan"]]);
    let r = run(
        &mut db,
        "app",
        "SELECT COUNT(*) FROM people p WHERE NOT EXISTS \
         (SELECT 1 FROM orders o WHERE o.person_id = p.id)",
    );
    assert_eq!(texts(&r), vec![vec!["3"]]);
}

#[test]
fn case_like_between_distinct() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let r = run(
        &mut db,
        "app",
        "SELECT DISTINCT CASE WHEN age BETWEEN 40 AND 60 THEN 'mid' ELSE 'other' END AS band \
         FROM people WHERE name LIKE '%a%' ORDER BY band",
    );
    assert_eq!(texts(&r), vec![vec!["mid"], vec!["other"]]);
}

#[test]
fn update_and_delete() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let r = run(
        &mut db,
        "app",
        "UPDATE people SET age = age + 1 WHERE city = 'nyc'",
    );
    assert_eq!(r.tag, "UPDATE 2");
    let r = run(
        &mut db,
        "app",
        "SELECT age FROM people WHERE name = 'grace'",
    );
    assert_eq!(texts(&r), vec![vec!["46"]]);
    let r = run(&mut db, "app", "DELETE FROM people WHERE age > 70");
    assert_eq!(r.tag, "DELETE 1");
    let r = run(&mut db, "app", "SELECT COUNT(*) FROM people");
    assert_eq!(texts(&r), vec![vec!["4"]]);
}

#[test]
fn nulls_three_valued_logic() {
    let mut db = pg("10.7");
    run(&mut db, "app", "CREATE TABLE t (a INT, b INT)");
    run(&mut db, "app", "INSERT INTO t VALUES (1, NULL), (2, 5)");
    let r = run(&mut db, "app", "SELECT a FROM t WHERE b > 1");
    assert_eq!(texts(&r), vec![vec!["2"]]);
    let r = run(&mut db, "app", "SELECT a FROM t WHERE b IS NULL");
    assert_eq!(texts(&r), vec![vec!["1"]]);
    let r = run(&mut db, "app", "SELECT COUNT(b), COUNT(*) FROM t");
    assert_eq!(texts(&r), vec![vec!["1", "2"]]);
}

#[test]
fn permission_denied_without_grant() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let err = run_err(&mut db, "mallory", "SELECT * FROM people");
    assert!(matches!(err, SqlError::PermissionDenied(_)));
    run(&mut db, "app", "GRANT SELECT ON people TO MALLORY");
    let r = run(&mut db, "mallory", "SELECT COUNT(*) FROM people");
    assert_eq!(texts(&r), vec![vec!["5"]]);
}

#[test]
fn row_level_security_filters_rows() {
    let mut db = pg("10.9");
    run(
        &mut db,
        "app",
        "CREATE TABLE secrets (id INT, owner TEXT, data TEXT)",
    );
    run(
        &mut db,
        "app",
        "INSERT INTO secrets VALUES (1, 'mallory', 'public-ish'), (2, 'root', 'nuclear codes')",
    );
    run(
        &mut db,
        "app",
        "ALTER TABLE secrets ENABLE ROW LEVEL SECURITY",
    );
    run(
        &mut db,
        "app",
        "CREATE POLICY p ON secrets USING (owner = 'mallory')",
    );
    run(&mut db, "app", "GRANT SELECT ON secrets TO MALLORY");
    let r = run(&mut db, "mallory", "SELECT data FROM secrets");
    assert_eq!(texts(&r), vec![vec!["public-ish"]], "RLS must hide row 2");
    // The owner is exempt.
    let r = run(&mut db, "app", "SELECT COUNT(*) FROM secrets");
    assert_eq!(texts(&r), vec![vec!["2"]]);
}

/// CVE-2019-10130: on 10.7 the user-defined operator is evaluated below the
/// RLS filter, leaking protected rows through NOTICE; 10.9 is fixed.
#[test]
fn cve_2019_10130_leaks_on_10_7_not_10_9() {
    let exploit_setup = [
        "CREATE FUNCTION op_leak(int, int) RETURNS bool \
         AS 'BEGIN RAISE NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' \
         LANGUAGE plpgsql",
        "CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int, \
         restrict=scalarltsel)",
    ];
    let mut results = Vec::new();
    for version in ["10.7", "10.9"] {
        let mut db = pg(version);
        run(
            &mut db,
            "app",
            "CREATE TABLE some_table (col_to_leak INT, owner TEXT)",
        );
        run(
            &mut db,
            "app",
            "INSERT INTO some_table VALUES (42, 'mallory'), (777, 'root'), (900, 'root')",
        );
        run(
            &mut db,
            "app",
            "ALTER TABLE some_table ENABLE ROW LEVEL SECURITY",
        );
        run(
            &mut db,
            "app",
            "CREATE POLICY p ON some_table USING (owner = 'mallory')",
        );
        run(&mut db, "app", "GRANT SELECT ON some_table TO MALLORY");
        for sql in exploit_setup {
            run(&mut db, "mallory", sql);
        }
        let r = run(
            &mut db,
            "mallory",
            "SELECT * FROM some_table WHERE col_to_leak <<< 1000",
        );
        results.push(r);
    }
    let (buggy, fixed) = (&results[0], &results[1]);
    // Both versions return only the RLS-visible result rows.
    assert_eq!(texts(buggy), texts(fixed));
    // But the buggy version leaks the protected values via NOTICE.
    let leaked: Vec<&String> = buggy
        .notices
        .iter()
        .filter(|n| n.contains("777") || n.contains("900"))
        .collect();
    assert_eq!(
        leaked.len(),
        2,
        "10.7 must leak both protected rows: {:?}",
        buggy.notices
    );
    assert!(
        fixed
            .notices
            .iter()
            .all(|n| !n.contains("777") && !n.contains("900")),
        "10.9 must not leak: {:?}",
        fixed.notices
    );
    // This notice asymmetry is exactly the divergence RDDR detects.
    assert_ne!(buggy.notices, fixed.notices);
}

/// CVE-2017-7484: EXPLAIN selectivity estimation runs the operator over a
/// table the caller cannot read. 9.2.20 leaks; 9.2.21 raises permission
/// denied instead.
#[test]
fn cve_2017_7484_explain_leak() {
    let setup = [
        "CREATE FUNCTION leak2(integer,integer) RETURNS boolean \
         AS $$BEGIN RAISE NOTICE 'leak % %', $1, $2; RETURN $1 > $2; END$$ \
         LANGUAGE plpgsql immutable",
        "CREATE OPERATOR >>> (procedure=leak2, leftarg=integer, rightarg=integer, \
         restrict=scalargtsel)",
    ];
    // Vulnerable version: notices leak the protected column.
    let mut db = pg("9.2.20");
    run(
        &mut db,
        "app",
        "CREATE TABLE some_table (x INT, col_to_leak INT)",
    );
    run(
        &mut db,
        "app",
        "INSERT INTO some_table VALUES (1, 1111), (2, 2222)",
    );
    for sql in setup {
        run(&mut db, "mallory", sql);
    }
    let r = run(
        &mut db,
        "mallory",
        "EXPLAIN (COSTS OFF) SELECT x FROM some_table WHERE col_to_leak >>> 0",
    );
    assert!(
        r.notices.iter().any(|n| n.contains("1111")),
        "9.2.20 must leak during planning: {:?}",
        r.notices
    );

    // Fixed version: permission denied, no leak.
    let mut db = pg("9.2.21");
    run(
        &mut db,
        "app",
        "CREATE TABLE some_table (x INT, col_to_leak INT)",
    );
    run(
        &mut db,
        "app",
        "INSERT INTO some_table VALUES (1, 1111), (2, 2222)",
    );
    for sql in setup {
        run(&mut db, "mallory", sql);
    }
    let err = run_err(
        &mut db,
        "mallory",
        "EXPLAIN (COSTS OFF) SELECT x FROM some_table WHERE col_to_leak >>> 0",
    );
    assert!(matches!(err, SqlError::PermissionDenied(_)));
}

#[test]
fn cockroach_rejects_udf_and_udo() {
    let mut db = Database::with_flavor(
        PgVersion::parse("10.7").unwrap(),
        DbFlavor::Cockroach(CockroachFlavor::default()),
    );
    let err = run_err(
        &mut db,
        "mallory",
        "CREATE FUNCTION leak2(integer,integer) RETURNS boolean AS $$x$$ LANGUAGE plpgsql",
    );
    assert!(matches!(err, SqlError::Unsupported(_)));
    assert_eq!(db.version_banner(), "CockroachDB CCL v19.1.0");
}

#[test]
fn cockroach_benign_queries_match_postgres() {
    let mut a = pg("10.7");
    let mut b = Database::with_flavor(
        PgVersion::parse("10.7").unwrap(),
        DbFlavor::Cockroach(CockroachFlavor::default()),
    );
    for db in [&mut a, &mut b] {
        seed_people(db);
    }
    let sql = "SELECT city, COUNT(*) FROM people GROUP BY city ORDER BY city";
    let ra = run(&mut a, "app", sql);
    let rb = run(&mut b, "app", sql);
    assert_eq!(texts(&ra), texts(&rb), "benign traffic must be identical");
}

#[test]
fn cockroach_serializable_isolation_enforced() {
    let mut db = Database::with_flavor(
        PgVersion::parse("10.7").unwrap(),
        DbFlavor::Cockroach(CockroachFlavor::default()),
    );
    let err = run_err(
        &mut db,
        "app",
        "SET default_transaction_isolation TO 'read committed'",
    );
    assert!(matches!(err, SqlError::Unsupported(_)));
    run(
        &mut db,
        "app",
        "SET default_transaction_isolation TO 'serializable'",
    );
    // MiniPg accepts anything (the paper configured PG to match Cockroach).
    let mut pgdb = pg("10.7");
    run(
        &mut pgdb,
        "app",
        "SET default_transaction_isolation TO 'read committed'",
    );
}

#[test]
fn row_order_scramble_reproduces_paper_caveat() {
    let mut db = Database::with_flavor(
        PgVersion::parse("10.7").unwrap(),
        DbFlavor::Cockroach(CockroachFlavor {
            scramble_row_order: true,
            ..Default::default()
        }),
    );
    seed_people(&mut db);
    let unordered = run(&mut db, "app", "SELECT name FROM people");
    assert_eq!(
        unordered.rows[0][0].to_string(),
        "barbara",
        "reverse insertion order"
    );
    // ORDER BY restores agreement with Postgres.
    let ordered = run(
        &mut db,
        "app",
        "SELECT name FROM people ORDER BY name LIMIT 1",
    );
    assert_eq!(texts(&ordered), vec![vec!["ada"]]);
}

#[test]
fn show_server_version_and_transactions() {
    let mut db = pg("10.7");
    let r = run(&mut db, "app", "SHOW server_version");
    assert_eq!(texts(&r), vec![vec!["10.7"]]);
    assert_eq!(run(&mut db, "app", "BEGIN").tag, "BEGIN");
    assert_eq!(run(&mut db, "app", "COMMIT").tag, "COMMIT");
}

#[test]
fn storage_accounting_tracks_inserts_and_deletes() {
    let mut db = pg("10.7");
    assert_eq!(db.storage_bytes(), 0);
    seed_people(&mut db);
    let after_insert = db.storage_bytes();
    assert!(after_insert > 0);
    run(&mut db, "app", "DELETE FROM people");
    assert!(db.storage_bytes() < after_insert);
}

#[test]
fn scanned_rows_reported_for_cost_model() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let r = run(&mut db, "app", "SELECT COUNT(*) FROM people");
    assert_eq!(r.scanned, 5);
}

#[test]
fn division_by_zero_is_an_error() {
    let mut db = pg("10.7");
    let err = run_err(&mut db, "app", "SELECT 1 / 0");
    assert!(matches!(err, SqlError::Exec(_)));
}

#[test]
fn order_by_ordinal_and_expression() {
    let mut db = pg("10.7");
    seed_people(&mut db);
    let r = run(
        &mut db,
        "app",
        "SELECT name, age FROM people ORDER BY 2 DESC LIMIT 1",
    );
    assert_eq!(texts(&r), vec![vec!["edsger", "72"]]);
    let r = run(
        &mut db,
        "app",
        "SELECT name FROM people ORDER BY age % 10, name LIMIT 2",
    );
    assert_eq!(texts(&r), vec![vec!["alan"], vec!["edsger"]]);
}

#[test]
fn string_functions() {
    let mut db = pg("10.7");
    let r = run(
        &mut db,
        "app",
        "SELECT UPPER('abc'), LENGTH('hello'), SUBSTRING('abcdef' FROM 2 FOR 3), \
         COALESCE(NULL, 'fallback'), EXTRACT(YEAR FROM date '1998-09-02')",
    );
    assert_eq!(texts(&r), vec![vec!["ABC", "5", "bcd", "fallback", "1998"]]);
}
