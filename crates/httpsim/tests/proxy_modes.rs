//! Reverse-proxy behaviour of the nginx and HAProxy simulators, exercised
//! directly on a cluster (without RDDR): the per-proxy behaviours whose
//! *difference* the CVE-2019-18277 scenario exploits.

use std::sync::Arc;

use rddr_httpsim::haproxy::{smuggling_payload, smuggling_target_service};
use rddr_httpsim::{HaproxySim, HttpClient, NginxSim, NginxVersion};
use rddr_net::ServiceAddr;
use rddr_orchestra::{Cluster, Image};

fn deploy() -> (Cluster, ServiceAddr, ServiceAddr) {
    let cluster = Cluster::new(4);
    for i in 0..2u16 {
        let h = cluster
            .run_container(
                format!("s1-{i}"),
                Image::new("s1", "v1"),
                &ServiceAddr::new("s1", 9100 + i),
                Arc::new(smuggling_target_service()),
            )
            .unwrap();
        std::mem::forget(h);
    }
    let haproxy = ServiceAddr::new("haproxy", 8080);
    let nginx = ServiceAddr::new("nginx", 8081);
    std::mem::forget(
        cluster
            .run_container(
                "haproxy-0",
                Image::new("haproxy", "1.5.3"),
                &haproxy,
                Arc::new(HaproxySim::new(ServiceAddr::new("s1", 9100))),
            )
            .unwrap(),
    );
    std::mem::forget(
        cluster
            .run_container(
                "nginx-0",
                Image::new("nginx", "1.13.4"),
                &nginx,
                Arc::new(NginxSim::reverse_proxy(
                    NginxVersion::parse("1.13.4"),
                    ServiceAddr::new("s1", 9101),
                )),
            )
            .unwrap(),
    );
    (cluster, haproxy, nginx)
}

#[test]
fn both_proxies_forward_benign_requests() {
    let (cluster, haproxy, nginx) = deploy();
    let net = cluster.net();
    for addr in [&haproxy, &nginx] {
        let mut client = HttpClient::connect(&net, addr).unwrap();
        let resp = client.get("/public").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_text(), "public ok");
    }
}

#[test]
fn both_proxies_enforce_the_acl_on_direct_requests() {
    let (cluster, haproxy, nginx) = deploy();
    let net = cluster.net();
    for addr in [&haproxy, &nginx] {
        let mut client = HttpClient::connect(&net, addr).unwrap();
        let resp = client.get("/internal/flush").unwrap();
        assert_eq!(resp.status, 403, "direct /internal must be denied");
        assert!(!resp.body_text().contains("INTERNAL"));
    }
}

#[test]
fn haproxy_passes_the_smuggled_request_but_nginx_rejects_it() {
    let (cluster, haproxy, nginx) = deploy();
    let net = cluster.net();

    // HAProxy 1.5.3: the outer request is answered normally AND the
    // smuggled inner request reaches the denied route.
    let mut attacker = HttpClient::connect(&net, &haproxy).unwrap();
    attacker.send_raw(&smuggling_payload()).unwrap();
    let first = attacker.read_response().unwrap();
    assert_eq!(first.status, 200);
    let second = attacker.read_response().unwrap();
    assert!(
        second.body_text().contains("INTERNAL"),
        "the smuggled response must surface on the vulnerable proxy: {}",
        second.body_text()
    );

    // nginx: the obfuscated Transfer-Encoding is rejected wholesale.
    let mut attacker = HttpClient::connect(&net, &nginx).unwrap();
    attacker.send_raw(&smuggling_payload()).unwrap();
    let resp = attacker.read_response().unwrap();
    assert_eq!(resp.status, 400, "strict parsing must refuse the payload");
    // And no second response ever arrives.
    attacker.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    assert!(attacker.read_response().is_err());
}

#[test]
fn proxies_annotate_responses_with_their_banner() {
    let (cluster, haproxy, nginx) = deploy();
    let net = cluster.net();
    let mut via_haproxy = HttpClient::connect(&net, &haproxy).unwrap();
    let ha = via_haproxy.get("/public").unwrap();
    assert!(ha
        .headers
        .iter()
        .any(|(n, v)| n == "server" && v.contains("haproxy")));
    let mut via_nginx = HttpClient::connect(&net, &nginx).unwrap();
    let ng = via_nginx.get("/public").unwrap();
    assert!(ng
        .headers
        .iter()
        .any(|(n, v)| n == "server" && v.contains("nginx")));
}
