//! Flask-like RESTful wrappers for the `rddr-libsim` pairs (§V-A), plus the
//! ASLR'd echo service (§V-E).
//!
//! "To create RESTful servers with access to Python libraries, the function
//! calls were accessed using flask servers." Each wrapper exposes one
//! library function behind a fixed route; deploying the wrapper twice with
//! the two diverse library implementations yields the paper's N-versioned
//! RESTful microservice.

use std::sync::Arc;

use rddr_libsim::{
    AslrEcho, HtmlSanitizer, MarkdownRenderer, RsaDecryptor, RsaKeyPair, SvgRasterizer, VirtualFs,
};
use rddr_net::{BoxStream, Stream};
use rddr_orchestra::{Service, ServiceCtx};

use crate::framework::{HttpResponse, HttpService};

/// Hex-encodes bytes.
pub fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Hex-decodes a string.
pub fn hex_decode(text: &str) -> Option<Vec<u8>> {
    let text = text.trim();
    if !text.len().is_multiple_of(2) {
        return None;
    }
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&text[i..i + 2], 16).ok())
        .collect()
}

/// `POST /decrypt` — body is the ciphertext as a decimal `u64`; responds
/// with the plaintext hex or `400` on padding errors (CVE-2020-13757 pair).
pub fn decrypt_service(decryptor: Arc<dyn RsaDecryptor>, key: RsaKeyPair) -> HttpService {
    HttpService::new("rsa-decrypt").route("POST", "/decrypt", move |req, _ctx| {
        let Ok(ciphertext) = req.body_text().trim().parse::<u64>() else {
            return HttpResponse::status(400, "bad ciphertext encoding");
        };
        match decryptor.decrypt(&key, ciphertext) {
            Ok(plaintext) => HttpResponse::ok(hex_encode(&plaintext)),
            Err(e) => HttpResponse::status(400, format!("decryption failed: {e}")),
        }
    })
}

/// `POST /render` — body is markdown; responds with safe-mode HTML
/// (CVE-2020-11888 pair).
pub fn render_service(renderer: Arc<dyn MarkdownRenderer>) -> HttpService {
    HttpService::new("markdown-render").route("POST", "/render", move |req, _ctx| {
        HttpResponse::html(renderer.render(&req.body_text()))
    })
}

/// `POST /convert` — body is an SVG document; responds with the PNG bytes
/// hex-encoded, or `400` on rejection (CVE-2020-10799 pair).
pub fn svg_service(rasterizer: Arc<dyn SvgRasterizer>, fs: VirtualFs) -> HttpService {
    HttpService::new("svg2png").route("POST", "/convert", move |req, _ctx| {
        match rasterizer.rasterize(&req.body_text(), &fs) {
            Ok(png) => HttpResponse::ok(hex_encode(&png)),
            Err(e) => HttpResponse::status(400, format!("conversion failed: {e}")),
        }
    })
}

/// `POST /sanitize` — body is an HTML fragment; responds with the cleaned
/// fragment (CVE-2014-3146 pair).
pub fn sanitize_service(sanitizer: Arc<dyn HtmlSanitizer>) -> HttpService {
    HttpService::new("html-sanitize").route("POST", "/sanitize", move |req, _ctx| {
        HttpResponse::html(sanitizer.sanitize(&req.body_text()))
    })
}

/// The ASLR'd echo server: a raw line-oriented TCP service (§V-E). Each
/// request line is echoed back, with the overflow leak of
/// [`rddr_libsim::AslrEcho`] when the line exceeds the buffer.
pub struct AslrEchoService {
    process: AslrEcho,
}

impl std::fmt::Debug for AslrEchoService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AslrEchoService").finish()
    }
}

impl AslrEchoService {
    /// "Launches" the process with the given ASLR entropy seed (one per
    /// container instance).
    pub fn launch(seed: u64) -> Self {
        Self {
            process: AslrEcho::launch(seed),
        }
    }
}

impl Service for AslrEchoService {
    fn name(&self) -> &str {
        "aslr-echo"
    }

    fn handle(&self, mut conn: BoxStream, _ctx: &ServiceCtx) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = buf.drain(..=pos).collect();
                let mut reply = self.process.echo(&line[..line.len() - 1]);
                reply.push(b'\n');
                if conn.write_all(&reply).is_err() {
                    return;
                }
            }
            match conn.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::HttpClient;
    use rddr_libsim::{
        craft_forged_ciphertext, CairoSvg, CryptoLib, LxmlClean, Markdown2, MarkdownSafe, RsaLib,
        SanitizeHtml, SvgLib,
    };
    use rddr_net::{Network, ServiceAddr};
    use rddr_orchestra::{Cluster, Image};

    fn deploy(cluster: &Cluster, name: &str, port: u16, svc: Arc<dyn Service>) -> ServiceAddr {
        let addr = ServiceAddr::new(name, port);
        let handle = cluster
            .run_container(format!("{name}-{port}"), Image::new(name, "v1"), &addr, svc)
            .unwrap();
        std::mem::forget(handle); // keep serving for the test duration
        addr
    }

    #[test]
    fn hex_round_trip() {
        let data = vec![0u8, 15, 255, 128];
        assert_eq!(hex_decode(&hex_encode(&data)), Some(data));
        assert_eq!(hex_decode("zz"), None);
        assert_eq!(hex_decode("abc"), None);
    }

    #[test]
    fn decrypt_services_agree_on_benign_and_diverge_on_forged() {
        let cluster = Cluster::new(2);
        let key = RsaKeyPair::demo();
        let a = deploy(
            &cluster,
            "rsa",
            8000,
            Arc::new(decrypt_service(Arc::new(RsaLib::new()), key)),
        );
        let b = deploy(
            &cluster,
            "rsa",
            8001,
            Arc::new(decrypt_service(Arc::new(CryptoLib::new()), key)),
        );
        let net = cluster.net();
        let benign = key.encrypt(b"ok!").unwrap().to_string();
        let forged = craft_forged_ciphertext(&key).to_string();
        let mut ca = HttpClient::connect(&net, &a).unwrap();
        let mut cb = HttpClient::connect(&net, &b).unwrap();

        let ra = ca.post("/decrypt", &benign).unwrap();
        let rb = cb.post("/decrypt", &benign).unwrap();
        assert_eq!(ra.status, 200);
        assert_eq!(ra.body, rb.body, "benign ciphertext must agree");

        let ra = ca.post("/decrypt", &forged).unwrap();
        let rb = cb.post("/decrypt", &forged).unwrap();
        assert_eq!(ra.status, 200, "vulnerable library accepts the forgery");
        assert_eq!(rb.status, 400, "strict library rejects it");
    }

    #[test]
    fn render_services_diverge_only_under_exploit() {
        let cluster = Cluster::new(2);
        let a = deploy(
            &cluster,
            "md",
            8000,
            Arc::new(render_service(Arc::new(Markdown2::new()))),
        );
        let b = deploy(
            &cluster,
            "md",
            8001,
            Arc::new(render_service(Arc::new(MarkdownSafe::new()))),
        );
        let net = cluster.net();
        let mut ca = HttpClient::connect(&net, &a).unwrap();
        let mut cb = HttpClient::connect(&net, &b).unwrap();
        let benign = "# Hi\n\n**bold** [link](https://ok.example)";
        assert_eq!(
            ca.post("/render", benign).unwrap().body,
            cb.post("/render", benign).unwrap().body
        );
        let exploit = "[x](java\tscript:alert(1))";
        assert_ne!(
            ca.post("/render", exploit).unwrap().body,
            cb.post("/render", exploit).unwrap().body
        );
    }

    #[test]
    fn svg_services_xxe_divergence() {
        let cluster = Cluster::new(2);
        let a = deploy(
            &cluster,
            "svg",
            8000,
            Arc::new(svg_service(
                Arc::new(SvgLib::new()),
                VirtualFs::with_defaults(),
            )),
        );
        let b = deploy(
            &cluster,
            "svg",
            8001,
            Arc::new(svg_service(
                Arc::new(CairoSvg::new()),
                VirtualFs::with_defaults(),
            )),
        );
        let net = cluster.net();
        let mut ca = HttpClient::connect(&net, &a).unwrap();
        let mut cb = HttpClient::connect(&net, &b).unwrap();
        let benign = r#"<svg><rect x="1" y="1" width="4" height="4"/></svg>"#;
        assert_eq!(
            ca.post("/convert", benign).unwrap().body,
            cb.post("/convert", benign).unwrap().body
        );
        let xxe = "<!DOCTYPE svg [<!ENTITY x SYSTEM \"file:///etc/passwd\">]>\
                   <svg><text>&x;</text></svg>";
        let ra = ca.post("/convert", xxe).unwrap();
        let rb = cb.post("/convert", xxe).unwrap();
        assert_eq!(ra.status, 200);
        assert_eq!(rb.status, 400);
    }

    #[test]
    fn sanitize_services_control_char_divergence() {
        let cluster = Cluster::new(2);
        let a = deploy(
            &cluster,
            "san",
            8000,
            Arc::new(sanitize_service(Arc::new(LxmlClean::new()))),
        );
        let b = deploy(
            &cluster,
            "san",
            8001,
            Arc::new(sanitize_service(Arc::new(SanitizeHtml::new()))),
        );
        let net = cluster.net();
        let mut ca = HttpClient::connect(&net, &a).unwrap();
        let mut cb = HttpClient::connect(&net, &b).unwrap();
        let benign = "<p>hello <b>world</b></p>";
        assert_eq!(
            ca.post("/sanitize", benign).unwrap().body,
            cb.post("/sanitize", benign).unwrap().body
        );
        let exploit = "<a href=\"java\tscript:alert(1)\">x</a>";
        assert_ne!(
            ca.post("/sanitize", exploit).unwrap().body,
            cb.post("/sanitize", exploit).unwrap().body
        );
    }

    #[test]
    fn aslr_echo_instances_diverge_on_overflow() {
        let cluster = Cluster::new(2);
        let a = deploy(
            &cluster,
            "echo",
            7000,
            Arc::new(AslrEchoService::launch(11)),
        );
        let b = deploy(
            &cluster,
            "echo",
            7001,
            Arc::new(AslrEchoService::launch(22)),
        );
        let net = cluster.net();
        let mut conn_a = net.dial(&a).unwrap();
        let mut conn_b = net.dial(&b).unwrap();
        let read_line = |conn: &mut rddr_net::BoxStream| -> Vec<u8> {
            let mut out = Vec::new();
            let mut byte = [0u8; 1];
            while conn.read(&mut byte).map(|n| n > 0).unwrap_or(false) {
                if byte[0] == b'\n' {
                    break;
                }
                out.push(byte[0]);
            }
            out
        };
        conn_a.write_all(b"benign\n").unwrap();
        conn_b.write_all(b"benign\n").unwrap();
        assert_eq!(read_line(&mut conn_a), read_line(&mut conn_b));
        let overflow = vec![b'A'; rddr_libsim::aslr::BUFFER_SIZE + 8];
        conn_a.write_all(&overflow).unwrap();
        conn_a.write_all(b"\n").unwrap();
        conn_b.write_all(&overflow).unwrap();
        conn_b.write_all(b"\n").unwrap();
        assert_ne!(read_line(&mut conn_a), read_line(&mut conn_b));
    }
}
