//! Simulated HTTP microservices for the RDDR evaluation.
//!
//! Everything the paper's HTTP-facing case studies need, rebuilt on the
//! in-process cluster:
//!
//! * [`framework`] — a tiny routing HTTP/1.1 server ([`HttpService`]) and
//!   client ([`HttpClient`]), both strict about framing.
//! * [`NginxSim`] — static server + reverse proxy with the version-gated
//!   range-filter integer overflow of CVE-2017-7529 (§V-D) and strict
//!   request parsing (no smuggling).
//! * [`HaproxySim`] — reverse proxy (v1.5.3) with the Transfer-Encoding
//!   request-smuggling flaw of CVE-2019-18277 (§V-C1).
//! * [`EnvoySim`] — a plain passthrough front proxy, the Figure 5 baseline.
//! * [`DvwaSim`] — the Damn Vulnerable Web App stand-in: login with CSRF
//!   tokens and an SQL-injection page at configurable security levels,
//!   backed by an external MiniPg database (§V-B).
//! * [`gitlab`] — the GitLab composite deployment of §V-F (Figure 3).
//! * [`rest`] — flask-like REST wrappers for the `rddr-libsim` pairs, plus
//!   the ASLR'd echo service of §V-E.

pub mod dvwa;
pub mod envoy;
pub mod framework;
pub mod gitlab;
pub mod haproxy;
pub mod nginx;
pub mod rest;

pub use dvwa::{DvwaSim, SecurityLevel};
pub use envoy::EnvoySim;
pub use framework::{HttpClient, HttpRequest, HttpResponse, HttpService};
pub use haproxy::HaproxySim;
pub use nginx::{NginxSim, NginxVersion};
