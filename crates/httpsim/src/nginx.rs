//! NginxSim: a static file server / reverse proxy with version-gated bugs.
//!
//! * **CVE-2017-7529** (§V-D): versions ≤ 1.13.2 mishandle crafted `Range`
//!   headers — "nginx fails to check its bounds which leads to an integer
//!   overflow when calculating the size of the payload to return, causing
//!   it to return data past the end of the requested document". The
//!   simulator keeps per-file "cache metadata" adjacent to the file body;
//!   a negative-overflow range returns the document *plus* that adjacent
//!   memory. 1.13.3+ validates the range and answers `416`.
//! * As a **reverse proxy** (§V-C1), nginx parses requests strictly: a
//!   malformed `Transfer-Encoding` is rejected with `400`, which is what
//!   makes it a diverse partner against HAProxy's smuggling bug.

use parking_lot::Mutex;
use rddr_net::{BoxStream, ServiceAddr, Stream};
use rddr_orchestra::{Service, ServiceCtx};
use std::collections::BTreeMap;

use crate::framework::{read_request, HttpRequest, HttpResponse};
use crate::haproxy::{forward_request, is_denied, normalize_header_value};

/// An nginx release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NginxVersion {
    /// Major (1).
    pub major: u32,
    /// Minor (13).
    pub minor: u32,
    /// Patch (2).
    pub patch: u32,
}

impl NginxVersion {
    /// Parses `"1.13.2"`.
    ///
    /// # Panics
    ///
    /// Panics on malformed version strings (versions are compiled in).
    pub fn parse(s: &str) -> Self {
        let mut it = s
            .split('.')
            .map(|p| p.parse().expect("numeric version part"));
        Self {
            major: it.next().expect("major"),
            minor: it.next().unwrap_or(0),
            patch: it.next().unwrap_or(0),
        }
    }

    /// CVE-2017-7529 gate: range-filter integer overflow, fixed in 1.13.3
    /// (and backported to 1.12.1).
    pub fn leaks_range_memory(&self) -> bool {
        (self.major, self.minor, self.patch) < (1, 13, 3)
            && !((self.major, self.minor) == (1, 12) && self.patch >= 1)
    }
}

impl std::fmt::Display for NginxVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// One served document plus the cache metadata stored adjacent to it in the
/// simulated cache memory (the bytes CVE-2017-7529 leaks).
#[derive(Debug, Clone)]
struct CachedFile {
    body: Vec<u8>,
    adjacent_memory: Vec<u8>,
}

/// The nginx simulator.
///
/// Serves a static doc-root and, when an upstream is configured, proxies
/// everything under `/` to it (denying `/internal` routes, per the paper's
/// §V-C1 configuration).
pub struct NginxSim {
    version: NginxVersion,
    files: Mutex<BTreeMap<String, CachedFile>>,
    upstream: Option<ServiceAddr>,
}

impl std::fmt::Debug for NginxSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NginxSim")
            .field("version", &self.version)
            .field("upstream", &self.upstream)
            .finish()
    }
}

impl NginxSim {
    /// A static file server at the given version.
    pub fn file_server(version: NginxVersion) -> Self {
        Self {
            version,
            files: Mutex::new(BTreeMap::new()),
            upstream: None,
        }
    }

    /// A reverse proxy at the given version.
    pub fn reverse_proxy(version: NginxVersion, upstream: ServiceAddr) -> Self {
        Self {
            version,
            files: Mutex::new(BTreeMap::new()),
            upstream: Some(upstream),
        }
    }

    /// Publishes a document at `path`, with `adjacent` bytes placed next to
    /// it in cache memory (e.g. another client's cached response).
    pub fn publish(&self, path: &str, body: impl Into<Vec<u8>>, adjacent: impl Into<Vec<u8>>) {
        self.files.lock().insert(
            path.to_string(),
            CachedFile {
                body: body.into(),
                adjacent_memory: adjacent.into(),
            },
        );
    }

    /// The version banner, as sent in the `Server` header.
    pub fn banner(&self) -> String {
        format!("nginx/{}", self.version)
    }

    fn serve_static(&self, req: &HttpRequest) -> HttpResponse {
        let files = self.files.lock();
        let Some(file) = files.get(&req.path) else {
            return self.tag(HttpResponse::status(404, "404 Not Found"));
        };
        if let Some(range) = req.header("range") {
            return self.tag(self.serve_range(file, range));
        }
        self.tag(HttpResponse::ok(file.body.clone()))
    }

    /// The CVE-2017-7529 logic. The exploit sends a huge negative suffix
    /// range (`bytes=-<2^63-ish>`); the buggy size arithmetic wraps and the
    /// module serves bytes past the end of the document.
    fn serve_range(&self, file: &CachedFile, range: &str) -> HttpResponse {
        let Some(spec) = range.trim().strip_prefix("bytes=") else {
            return HttpResponse::status(416, "invalid range unit");
        };
        // Suffix form: "-N" (last N bytes).
        if let Some(suffix) = spec.trim().strip_prefix('-') {
            let Ok(n) = suffix.trim().parse::<u64>() else {
                return HttpResponse::status(416, "unparseable range");
            };
            if n as usize <= file.body.len() {
                let start = file.body.len() - n as usize;
                return HttpResponse::status(206, file.body[start..].to_vec());
            }
            if self.version.leaks_range_memory() {
                // Buggy bounds check: the wrapped start offset reads from
                // the start of the cache entry through the adjacent memory.
                let mut leaked = file.body.clone();
                leaked.extend_from_slice(&file.adjacent_memory);
                return HttpResponse::status(206, leaked);
            }
            return HttpResponse::status(416, "range out of bounds");
        }
        // Plain form: "A-B".
        let Some((a, b)) = spec.split_once('-') else {
            return HttpResponse::status(416, "unparseable range");
        };
        let (Ok(a), Ok(b)) = (a.trim().parse::<usize>(), b.trim().parse::<usize>()) else {
            return HttpResponse::status(416, "unparseable range");
        };
        if a > b || b >= file.body.len() {
            return HttpResponse::status(416, "range out of bounds");
        }
        HttpResponse::status(206, file.body[a..=b].to_vec())
    }

    fn tag(&self, resp: HttpResponse) -> HttpResponse {
        resp.header("Server", &self.banner())
    }

    /// Reverse-proxy path: strict parsing, then forward.
    fn proxy(&self, req: &HttpRequest, raw: &[u8], ctx: &ServiceCtx) -> HttpResponse {
        // Strict Transfer-Encoding validation: nginx rejects obfuscated
        // values outright — this is what defeats the smuggling payload.
        if let Some(te) = req.header("transfer-encoding") {
            if normalize_header_value(te) != te || !te.eq_ignore_ascii_case("chunked") {
                return self.tag(HttpResponse::status(400, "400 Bad Request"));
            }
        }
        if is_denied(&req.path) {
            return self.tag(HttpResponse::status(403, "403 Forbidden"));
        }
        // Nginx forwards exactly one well-formed request; any trailing
        // bytes in `raw` beyond the parsed frame were never read here
        // (framework framing is strict).
        let upstream = self.upstream.as_ref().expect("proxy mode");
        match forward_request(ctx, upstream, raw) {
            Some(resp) => self.tag(resp),
            None => self.tag(HttpResponse::status(500, "upstream unavailable")),
        }
    }
}

impl Service for NginxSim {
    fn name(&self) -> &str {
        "nginx"
    }

    fn handle(&self, mut conn: BoxStream, ctx: &ServiceCtx) {
        let mut buf = Vec::new();
        loop {
            match read_request(&mut conn, &mut buf) {
                Ok(Some((req, raw))) => {
                    let response = if self.upstream.is_some() {
                        self.proxy(&req, &raw, ctx)
                    } else {
                        self.serve_static(&req)
                    };
                    if conn.write_all(&response.to_bytes()).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_req(path: &str, range: Option<&str>) -> HttpRequest {
        let mut headers = Vec::new();
        if let Some(r) = range {
            headers.push(("range".to_string(), r.to_string()));
        }
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            headers,
            ..HttpRequest::default()
        }
    }

    fn server(version: &str) -> NginxSim {
        let s = NginxSim::file_server(NginxVersion::parse(version));
        s.publish(
            "/index.html",
            b"public document".to_vec(),
            b"SECRET-CACHE-KEY".to_vec(),
        );
        s
    }

    #[test]
    fn version_gate() {
        assert!(NginxVersion::parse("1.13.2").leaks_range_memory());
        assert!(!NginxVersion::parse("1.13.3").leaks_range_memory());
        assert!(!NginxVersion::parse("1.13.4").leaks_range_memory());
        assert!(!NginxVersion::parse("1.12.1").leaks_range_memory());
    }

    #[test]
    fn plain_get_is_identical_across_versions() {
        let old = server("1.13.2");
        let new = server("1.13.4");
        let req = file_req("/index.html", None);
        let a = old.serve_static(&req);
        let b = new.serve_static(&req);
        assert_eq!(a.body, b.body);
        assert_eq!(a.status, b.status);
    }

    #[test]
    fn valid_ranges_agree() {
        let old = server("1.13.2");
        let new = server("1.13.4");
        for range in ["bytes=0-5", "bytes=-6"] {
            let req = file_req("/index.html", Some(range));
            let a = old.serve_static(&req);
            let b = new.serve_static(&req);
            assert_eq!(a.status, 206);
            assert_eq!(a.body, b.body, "range {range}");
        }
    }

    #[test]
    fn cve_2017_7529_overflow_range_diverges() {
        let old = server("1.13.2");
        let new = server("1.13.4");
        let req = file_req("/index.html", Some("bytes=-9223372036854775608"));
        let leaked = old.serve_static(&req);
        let safe = new.serve_static(&req);
        assert_eq!(leaked.status, 206);
        assert!(
            leaked.body_text().contains("SECRET-CACHE-KEY"),
            "1.13.2 must return adjacent cache memory"
        );
        assert_eq!(safe.status, 416, "1.13.4 must refuse the range");
        assert!(!safe.body_text().contains("SECRET"));
    }

    #[test]
    fn suffix_range_larger_than_file_but_parseable_is_leak_shaped() {
        // Even a modest overflow (file+1) triggers the buggy path.
        let old = server("1.13.2");
        let req = file_req("/index.html", Some("bytes=-100"));
        let r = old.serve_static(&req);
        assert!(r.body_text().contains("SECRET-CACHE-KEY"));
    }

    #[test]
    fn missing_file_is_404() {
        let s = server("1.13.4");
        assert_eq!(s.serve_static(&file_req("/nope", None)).status, 404);
    }

    #[test]
    fn banner_carries_version() {
        assert_eq!(server("1.13.2").banner(), "nginx/1.13.2");
    }
}
