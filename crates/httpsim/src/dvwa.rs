//! DvwaSim: the Damn Vulnerable Web App stand-in (§V-B).
//!
//! "DVWA contains an SQL injection in which an attacker modifies a benign
//! query to inject malicious queries. … Different DVWA security levels
//! sanitize user input to varying degrees." The paper deploys three
//! frontend instances (one at High sanitization, two unsanitized as the
//! filter pair) over a single external database reached through RDDR's
//! outgoing proxy, and relies on RDDR's CSRF ephemeral-state handling for
//! the form tokens each instance mints.

use std::collections::BTreeSet;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rddr_net::ServiceAddr;
use rddr_orchestra::{Service, ServiceCtx};
use rddr_pgsim::PgClient;

use crate::framework::{HttpRequest, HttpResponse};

/// DVWA's input-sanitization levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityLevel {
    /// No sanitization: raw string interpolation into SQL.
    Low,
    /// Quote doubling (defeats simple quotes, not logic injection).
    Medium,
    /// High sanitization: quote characters are stripped before the value is
    /// interpolated, so injected SQL syntax cannot escape the literal.
    High,
}

/// Per-instance session state: issued CSRF tokens.
#[derive(Debug, Default)]
struct DvwaState {
    issued_tokens: BTreeSet<String>,
    rng: Option<StdRng>,
}

/// The DVWA frontend simulator.
///
/// Routes:
/// * `GET /vuln/sqli` — the demo page: an input form carrying a freshly
///   minted per-instance CSRF token.
/// * `GET /vuln/sqli/run?id=…&user_token=…` — executes the lookup against
///   the backend database, applying this instance's sanitization level.
pub struct DvwaSim {
    level: SecurityLevel,
    backend: ServiceAddr,
    state: Mutex<DvwaState>,
    seed: u64,
}

impl std::fmt::Debug for DvwaSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DvwaSim")
            .field("level", &self.level)
            .field("backend", &self.backend)
            .finish()
    }
}

impl DvwaSim {
    /// Creates a frontend at the given sanitization level, talking to the
    /// database at `backend` (in an RDDR deployment: the outgoing proxy).
    /// `seed` feeds the instance's CSRF-token generator — the paper assumes
    /// "a cryptographically-secure source of randomness"; a distinct seed
    /// per instance models that.
    pub fn new(level: SecurityLevel, backend: ServiceAddr, seed: u64) -> Self {
        Self {
            level,
            backend,
            state: Mutex::new(DvwaState::default()),
            seed,
        }
    }

    fn mint_token(&self) -> String {
        let mut state = self.state.lock();
        let seed = self.seed;
        let rng = state.rng.get_or_insert_with(|| StdRng::seed_from_u64(seed));
        let token: String = (0..16)
            .map(|_| {
                let c = rng.gen_range(0..62u8);
                match c {
                    0..=25 => (b'a' + c) as char,
                    26..=51 => (b'A' + c - 26) as char,
                    _ => (b'0' + c - 52) as char,
                }
            })
            .collect();
        state.issued_tokens.insert(token.clone());
        token
    }

    fn consume_token(&self, token: &str) -> bool {
        self.state.lock().issued_tokens.remove(token)
    }

    /// Builds the SQL this instance would run for a given user `id` input.
    pub fn build_query(&self, id: &str) -> Result<String, &'static str> {
        match self.level {
            SecurityLevel::Low => Ok(format!(
                "SELECT first_name, last_name FROM users WHERE user_id = '{id}'"
            )),
            SecurityLevel::Medium => {
                let escaped = id.replace('\'', "''");
                Ok(format!(
                    "SELECT first_name, last_name FROM users WHERE user_id = '{escaped}'"
                ))
            }
            SecurityLevel::High => {
                let sanitized: String = id
                    .chars()
                    .filter(|c| *c != '\'' && *c != '"' && *c != ';')
                    .collect();
                Ok(format!(
                    "SELECT first_name, last_name FROM users WHERE user_id = '{sanitized}'"
                ))
            }
        }
    }

    fn page(&self) -> HttpResponse {
        let token = self.mint_token();
        HttpResponse::html(format!(
            "<html><body><h1>Vulnerability: SQL Injection</h1>\n\
             <form action=\"/vuln/sqli/run\" method=\"GET\">\n\
             <input type=\"text\" name=\"id\">\n\
             <input type=\"hidden\" name=\"user_token\" value=\"{token}\">\n\
             <input type=\"submit\" value=\"Submit\">\n\
             </form></body></html>"
        ))
    }

    fn run(&self, req: &HttpRequest, ctx: &ServiceCtx) -> HttpResponse {
        let Some(token) = req.param("user_token") else {
            return HttpResponse::status(403, "CSRF token is missing");
        };
        if !self.consume_token(token) {
            return HttpResponse::status(403, "CSRF token is incorrect");
        }
        let id = req.param("id").unwrap_or("");
        let sql = match self.build_query(id) {
            Ok(sql) => sql,
            Err(msg) => return HttpResponse::status(400, msg),
        };
        let Ok(conn) = ctx.net.dial(&self.backend) else {
            return HttpResponse::status(500, "database unavailable");
        };
        let Ok(mut client) = PgClient::connect(conn, "app") else {
            return HttpResponse::status(500, "database handshake failed");
        };
        match client.query(&sql) {
            Ok(result) => {
                if let Some(err) = result.error {
                    return HttpResponse::status(500, format!("query failed: {err}"));
                }
                let mut body = String::from("<html><body><pre>\n");
                for row in &result.rows {
                    body.push_str(&format!(
                        "First name: {}\nSurname: {}\n",
                        row.first().map(String::as_str).unwrap_or(""),
                        row.get(1).map(String::as_str).unwrap_or("")
                    ));
                }
                body.push_str("</pre></body></html>");
                HttpResponse::html(body)
            }
            Err(_) => HttpResponse::status(500, "database connection severed"),
        }
    }
}

impl Service for DvwaSim {
    fn name(&self) -> &str {
        "dvwa"
    }

    fn handle(&self, mut conn: rddr_net::BoxStream, ctx: &ServiceCtx) {
        use rddr_net::Stream as _;
        let mut buf = Vec::new();
        loop {
            match crate::framework::read_request(&mut conn, &mut buf) {
                Ok(Some((req, _raw))) => {
                    let response = if req.path.starts_with("/vuln/sqli/run") {
                        self.run(&req, ctx)
                    } else if req.path.starts_with("/vuln/sqli") {
                        self.page()
                    } else {
                        HttpResponse::status(404, "not found")
                    };
                    if conn.write_all(&response.to_bytes()).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
    }
}

/// Seeds the DVWA backend schema: the `users` table the demo queries.
///
/// # Errors
///
/// Returns the underlying SQL error if DDL fails.
pub fn seed_dvwa_schema(db: &mut rddr_pgsim::Database) -> Result<(), rddr_pgsim::SqlError> {
    let mut session = db.session("app");
    db.execute(
        &mut session,
        "CREATE TABLE users (user_id TEXT, first_name TEXT, last_name TEXT, password TEXT)",
    )?;
    db.execute(
        &mut session,
        "INSERT INTO users VALUES \
         ('1', 'admin', 'admin', 'h4rdpass!'), \
         ('2', 'Gordon', 'Brown', 'letmein'), \
         ('3', 'Hack', 'Me', 'password'), \
         ('4', 'Pablo', 'Picasso', 'guernica'), \
         ('5', 'Bob', 'Smith', 'hunter2')",
    )?;
    Ok(())
}

/// The classic injection input the paper's scenario fires.
pub const SQLI_PAYLOAD: &str = "1' OR '1'='1";

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(level: SecurityLevel) -> DvwaSim {
        DvwaSim::new(level, ServiceAddr::new("db", 5432), 42)
    }

    #[test]
    fn low_level_interpolates_raw_input() {
        let q = sim(SecurityLevel::Low).build_query(SQLI_PAYLOAD).unwrap();
        assert_eq!(
            q,
            "SELECT first_name, last_name FROM users WHERE user_id = '1' OR '1'='1'"
        );
    }

    #[test]
    fn medium_level_doubles_quotes() {
        let q = sim(SecurityLevel::Medium)
            .build_query(SQLI_PAYLOAD)
            .unwrap();
        assert!(q.contains("1'' OR ''1''=''1"));
    }

    #[test]
    fn high_level_strips_quotes() {
        let q = sim(SecurityLevel::High).build_query(SQLI_PAYLOAD).unwrap();
        assert_eq!(
            q,
            "SELECT first_name, last_name FROM users WHERE user_id = '1 OR 1=1'"
        );
        assert_ne!(
            q,
            sim(SecurityLevel::Low).build_query(SQLI_PAYLOAD).unwrap()
        );
    }

    #[test]
    fn benign_queries_identical_across_levels() {
        let ql = sim(SecurityLevel::Low).build_query("3").unwrap();
        let qh = sim(SecurityLevel::High).build_query("3").unwrap();
        assert_eq!(ql, qh, "benign input must produce identical SQL");
    }

    #[test]
    fn tokens_are_minted_per_instance_and_consumed() {
        let a = sim(SecurityLevel::Low);
        let b = DvwaSim::new(SecurityLevel::Low, ServiceAddr::new("db", 5432), 43);
        let ta = a.mint_token();
        let tb = b.mint_token();
        assert_ne!(ta, tb, "distinct seeds mint distinct tokens");
        assert_eq!(ta.len(), 16);
        assert!(ta.bytes().all(|c| c.is_ascii_alphanumeric()));
        assert!(a.consume_token(&ta));
        assert!(!a.consume_token(&ta), "tokens are single-use");
        assert!(!a.consume_token(&tb), "tokens are instance-specific");
    }
}
