//! A tiny HTTP/1.1 server framework and client.

use std::collections::BTreeMap;
use std::sync::Arc;

use rddr_net::{BoxStream, NetError, Network, ServiceAddr, Stream};
use rddr_orchestra::{Service, ServiceCtx};

/// A parsed HTTP request.
#[derive(Debug, Clone, Default)]
pub struct HttpRequest {
    /// Method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// A query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// Parses `application/x-www-form-urlencoded` bodies.
    pub fn form(&self) -> BTreeMap<String, String> {
        parse_query(&String::from_utf8_lossy(&self.body))
    }

    /// The body as lossy UTF-8.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers (order preserved).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 response with a text body.
    pub fn ok(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An HTML 200 response.
    pub fn html(body: impl Into<String>) -> Self {
        Self::ok(body.into().into_bytes()).header("Content-Type", "text/html")
    }

    /// An arbitrary-status response with a text body.
    pub fn status(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header (builder-style).
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes to wire bytes (Content-Length framing).
    pub fn to_bytes(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            201 => "Created",
            302 => "Found",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            416 => "Range Not Satisfiable",
            500 => "Internal Server Error",
            _ => "Status",
        };
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, reason).into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Body as lossy UTF-8.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Percent-decodes a URL component ( `%41` and `+`).
pub fn url_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a URL component.
pub fn url_encode(input: &str) -> String {
    let mut out = String::new();
    for b in input.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Parses a query string / form body into a map.
pub fn parse_query(query: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pair in query.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.insert(url_decode(k), url_decode(v));
    }
    out
}

/// Reads one complete HTTP request from a stream into `HttpRequest`,
/// returning the parsed request plus the raw frame bytes.
/// Returns `Ok(None)` on clean EOF before any bytes.
pub fn read_request(
    conn: &mut BoxStream,
    buf: &mut Vec<u8>,
) -> Result<Option<(HttpRequest, Vec<u8>)>, NetError> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some((req, consumed)) = try_parse_request(buf) {
            let raw = buf[..consumed].to_vec();
            buf.drain(..consumed);
            return Ok(Some((req, raw)));
        }
        match conn.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(NetError::TimedOut) => return Err(NetError::TimedOut),
            Err(_) => return Ok(None),
        }
    }
}

/// Attempts to parse one complete request from the front of `buf`.
pub(crate) fn try_parse_request(buf: &[u8]) -> Option<(HttpRequest, usize)> {
    let head_end = find(buf, b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| find(buf, b"\n\n").map(|p| p + 2))?;
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            // Trim only SP/HT: control bytes (e.g. the vertical tab of the
            // CVE-2019-18277 payload) must survive into the parsed value.
            let value = value.trim_matches([' ', '\t']).to_string();
            headers.push((name.trim().to_ascii_lowercase(), value));
        }
    }
    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    if buf.len() < head_end + content_length {
        return None;
    }
    let body = buf[head_end..head_end + content_length].to_vec();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, BTreeMap::new()),
    };
    Some((
        HttpRequest {
            method,
            path,
            query,
            headers,
            body,
        },
        head_end + content_length,
    ))
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// A boxed request handler.
pub type Handler = Arc<dyn Fn(&HttpRequest, &ServiceCtx) -> HttpResponse + Send + Sync>;

/// A routing HTTP service for the cluster: register handlers per
/// `(method, path-prefix)`, longest prefix wins.
///
/// # Examples
///
/// ```
/// use rddr_httpsim::{HttpService, HttpResponse};
///
/// let svc = HttpService::new("hello")
///     .route("GET", "/hi", |_req, _ctx| HttpResponse::ok("hello!"));
/// assert_eq!(svc.name(), "hello");
/// # let _ = svc;
/// ```
pub struct HttpService {
    name: String,
    routes: Vec<(String, String, Handler)>,
}

impl std::fmt::Debug for HttpService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpService")
            .field("name", &self.name)
            .field("routes", &self.routes.len())
            .finish()
    }
}

impl HttpService {
    /// Creates an empty service.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            routes: Vec::new(),
        }
    }

    /// Registers a handler for `method` and a path prefix.
    pub fn route(
        mut self,
        method: &str,
        path_prefix: &str,
        handler: impl Fn(&HttpRequest, &ServiceCtx) -> HttpResponse + Send + Sync + 'static,
    ) -> Self {
        self.routes.push((
            method.to_string(),
            path_prefix.to_string(),
            Arc::new(handler),
        ));
        self
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dispatches one request.
    pub fn dispatch(&self, req: &HttpRequest, ctx: &ServiceCtx) -> HttpResponse {
        let mut best: Option<&(String, String, Handler)> = None;
        for route in &self.routes {
            if route.0 == req.method
                && req.path.starts_with(&route.1)
                && best.is_none_or(|b| route.1.len() > b.1.len())
            {
                best = Some(route);
            }
        }
        match best {
            Some((_, _, handler)) => handler(req, ctx),
            None => HttpResponse::status(404, "not found"),
        }
    }
}

impl Service for HttpService {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&self, mut conn: BoxStream, ctx: &ServiceCtx) {
        let mut buf = Vec::new();
        loop {
            match read_request(&mut conn, &mut buf) {
                Ok(Some((req, _raw))) => {
                    let response = self.dispatch(&req, ctx);
                    if conn.write_all(&response.to_bytes()).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
    }
}

/// A minimal blocking HTTP client.
pub struct HttpClient {
    conn: BoxStream,
    buf: Vec<u8>,
}

impl std::fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpClient").finish()
    }
}

impl HttpClient {
    /// Connects to a service.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] if nothing is listening.
    pub fn connect(net: &dyn Network, addr: &ServiceAddr) -> Result<Self, NetError> {
        Ok(Self {
            conn: net.dial(addr)?,
            buf: Vec::new(),
        })
    }

    /// Sends a GET and reads the response.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] if the connection is severed mid-cycle
    /// (which is how an RDDR intervention looks from here).
    pub fn get(&mut self, path: &str) -> Result<HttpResponse, NetError> {
        self.send_raw(format!("GET {path} HTTP/1.1\r\nHost: svc\r\n\r\n").as_bytes())?;
        self.read_response()
    }

    /// Sends a POST with a form body.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::get`].
    pub fn post(&mut self, path: &str, body: &str) -> Result<HttpResponse, NetError> {
        self.send_raw(
            format!(
                "POST {path} HTTP/1.1\r\nHost: svc\r\n\
                 Content-Type: application/x-www-form-urlencoded\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )?;
        self.read_response()
    }

    /// Writes raw bytes (for crafted/smuggled requests).
    ///
    /// # Errors
    ///
    /// Returns the underlying transport error.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.conn.write_all(bytes)
    }

    /// Reads one complete response.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] on EOF mid-response.
    pub fn read_response(&mut self) -> Result<HttpResponse, NetError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((resp, consumed)) = try_parse_response(&self.buf) {
                self.buf.drain(..consumed);
                return Ok(resp);
            }
            match self.conn.read(&mut chunk)? {
                0 => return Err(NetError::Closed),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }

    /// Sets the read deadline.
    pub fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.conn.set_read_timeout(timeout);
    }
}

pub(crate) fn try_parse_response(buf: &[u8]) -> Option<(HttpResponse, usize)> {
    let head_end = find(buf, b"\r\n\r\n").map(|p| p + 4)?;
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if buf.len() < head_end + content_length {
        return None;
    }
    let body = buf[head_end..head_end + content_length].to_vec();
    Some((
        HttpResponse {
            status,
            headers,
            body,
        },
        head_end + content_length,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rddr_orchestra::{Cluster, Image};

    #[test]
    fn url_codec_round_trip() {
        let original = "a b&c=d%x";
        assert_eq!(url_decode(&url_encode(original)), original);
        assert_eq!(url_decode("a+b%41"), "a bA");
    }

    #[test]
    fn parse_query_handles_empty_and_flags() {
        let q = parse_query("a=1&flag&b=two+words");
        assert_eq!(q.get("a").map(String::as_str), Some("1"));
        assert_eq!(q.get("flag").map(String::as_str), Some(""));
        assert_eq!(q.get("b").map(String::as_str), Some("two words"));
    }

    #[test]
    fn request_parsing_extracts_all_parts() {
        let wire = b"POST /submit?x=1 HTTP/1.1\r\nHost: svc\r\nContent-Length: 4\r\n\r\nbody";
        let (req, used) = try_parse_request(wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/submit");
        assert_eq!(req.param("x"), Some("1"));
        assert_eq!(req.header("host"), Some("svc"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn partial_request_returns_none() {
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(try_parse_request(wire).is_none());
    }

    #[test]
    fn response_serialization_parses_back() {
        let resp = HttpResponse::html("<p>hi</p>").header("X-T", "1");
        let wire = resp.to_bytes();
        let (parsed, used) = try_parse_response(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, b"<p>hi</p>");
    }

    #[test]
    fn end_to_end_over_cluster() {
        let cluster = Cluster::new(2);
        let svc = HttpService::new("api")
            .route("GET", "/hello", |_r, _c| HttpResponse::ok("world"))
            .route("GET", "/hello/deeper", |_r, _c| HttpResponse::ok("deep"))
            .route("POST", "/echo", |r, _c| HttpResponse::ok(r.body.clone()));
        let addr = ServiceAddr::new("api", 80);
        let _h = cluster
            .run_container("api-0", Image::new("api", "v1"), &addr, Arc::new(svc))
            .unwrap();
        let net = cluster.net();
        let mut client = HttpClient::connect(&net, &addr).unwrap();
        assert_eq!(client.get("/hello").unwrap().body_text(), "world");
        assert_eq!(client.get("/hello/deeper").unwrap().body_text(), "deep");
        assert_eq!(client.post("/echo", "ping").unwrap().body_text(), "ping");
        assert_eq!(client.get("/missing").unwrap().status, 404);
    }

    #[test]
    fn longest_prefix_route_wins() {
        let svc = HttpService::new("t")
            .route("GET", "/", |_r, _c| HttpResponse::ok("root"))
            .route("GET", "/api", |_r, _c| HttpResponse::ok("api"));
        let req = HttpRequest {
            method: "GET".into(),
            path: "/api/users".into(),
            ..HttpRequest::default()
        };
        let ctx = test_ctx();
        assert_eq!(svc.dispatch(&req, &ctx).body_text(), "api");
    }

    fn test_ctx() -> ServiceCtx {
        ServiceCtx {
            meter: rddr_orchestra::ResourceMeter::new(),
            governor: rddr_orchestra::CpuGovernor::new(1),
            net: Arc::new(rddr_net::SimNet::new()),
        }
    }
}
