//! HaproxySim: a reverse proxy with the CVE-2019-18277 request-smuggling
//! flaw (§V-C1).
//!
//! HAProxy 1.5.3 mishandled `Transfer-Encoding` headers containing
//! obfuscation characters: it failed to recognize the chunked framing that
//! the backend *would* apply, so attacker-controlled body bytes were
//! forwarded as a second, un-inspected request — smuggling a call to an
//! ACL-denied route past the proxy. nginx (the diverse partner) rejects the
//! malformed header, so under RDDR the two proxies' upstream traffic and
//! responses diverge and the attack is blocked.
//!
//! The simulator reproduces the observable behaviour: a `Transfer-Encoding`
//! value that normalizes to `chunked` but is not literally `chunked`
//! (e.g. `\x0bchunked`, the vertical-tab variant from the advisory) makes
//! HaproxySim treat the request body as plain `Content-Length` data and
//! then re-parse the remainder as a fresh request — which it forwards
//! without re-checking the deny ACL.

use rddr_net::{ServiceAddr, Stream};
use rddr_orchestra::{Service, ServiceCtx};

use crate::framework::{read_request, try_parse_request, HttpResponse};

/// Path prefixes the proxies must never forward from outside (the paper's
/// "API call that should not be invoked directly from outside the
/// deployment", enforced by both HAProxy and nginx configs).
pub const DENIED_PREFIXES: &[&str] = &["/internal", "/admin"];

/// Whether the ACL denies a path.
pub fn is_denied(path: &str) -> bool {
    DENIED_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// Strips header-obfuscation bytes (the characters HAProxy 1.5.3 failed to
/// treat as part of the token) and lowercases.
pub fn normalize_header_value(value: &str) -> String {
    value
        .chars()
        .filter(|c| !c.is_control() && !c.is_whitespace())
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Forwards one raw request to `upstream` and reads one response.
/// Returns `None` if the upstream is unreachable.
pub(crate) fn forward_request(
    ctx: &ServiceCtx,
    upstream: &ServiceAddr,
    raw: &[u8],
) -> Option<HttpResponse> {
    let mut conn = ctx.net.dial(upstream).ok()?;
    conn.write_all(raw).ok()?;
    read_one_response(&mut *conn)
}

pub(crate) fn read_one_response(conn: &mut dyn Stream) -> Option<HttpResponse> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some((resp, consumed)) = crate::framework::try_parse_response(&buf) {
            let _ = consumed;
            return Some(resp);
        }
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

/// The HAProxy 1.5.3 simulator.
pub struct HaproxySim {
    upstream: ServiceAddr,
}

impl std::fmt::Debug for HaproxySim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HaproxySim")
            .field("upstream", &self.upstream)
            .finish()
    }
}

impl HaproxySim {
    /// Creates the proxy (version 1.5.3, the vulnerable release the paper
    /// deploys).
    pub fn new(upstream: ServiceAddr) -> Self {
        Self { upstream }
    }

    /// The version banner.
    pub fn banner(&self) -> String {
        "haproxy/1.5.3".to_string()
    }
}

impl Service for HaproxySim {
    fn name(&self) -> &str {
        "haproxy"
    }

    fn handle(&self, mut conn: rddr_net::BoxStream, ctx: &ServiceCtx) {
        let mut buf = Vec::new();
        loop {
            let Ok(Some((req, raw))) = read_request(&mut conn, &mut buf) else {
                return;
            };
            // ACL on the request HAProxy *parsed*.
            if is_denied(&req.path) {
                let resp =
                    HttpResponse::status(403, "403 Forbidden").header("Server", &self.banner());
                if conn.write_all(&resp.to_bytes()).is_err() {
                    return;
                }
                continue;
            }
            // CVE-2019-18277: an obfuscated Transfer-Encoding is *not*
            // recognized as chunked; the Content-Length body has already
            // been consumed into `req.body` by our framing, and HAProxy
            // re-interprets those body bytes as a following request —
            // forwarding it upstream without the ACL check.
            let obfuscated_te = req
                .header("transfer-encoding")
                .is_some_and(|te| normalize_header_value(te) == "chunked" && te != "chunked");
            let response = match forward_request(ctx, &self.upstream, &raw) {
                Some(r) => r.header("Server", &self.banner()),
                None => HttpResponse::status(500, "upstream unavailable"),
            };
            if conn.write_all(&response.to_bytes()).is_err() {
                return;
            }
            if obfuscated_te {
                // The smuggled request: the body bytes re-parsed as HTTP.
                if let Some((smuggled, _)) = try_parse_request(&req.body) {
                    let _ = smuggled; // no ACL re-check — that's the bug
                    if let Some(resp2) = forward_request(ctx, &self.upstream, &req.body) {
                        let resp2 = resp2.header("Server", &self.banner());
                        if conn.write_all(&resp2.to_bytes()).is_err() {
                            return;
                        }
                    }
                }
            }
        }
    }
}

/// A deny-listed upstream service for the smuggling scenario: `/public`
/// answers normally, `/internal/flush` must only ever be called from inside
/// the deployment.
pub fn smuggling_target_service() -> crate::framework::HttpService {
    crate::framework::HttpService::new("s1")
        .route("GET", "/public", |_r, _c| HttpResponse::ok("public ok"))
        .route("GET", "/internal/flush", |_r, _c| {
            HttpResponse::ok("INTERNAL: cache flushed, dumping keys: k1=sess-abc k2=sess-def")
        })
}

/// Builds the CVE-2019-18277 smuggling payload: an outer request for a
/// permitted path whose body is a complete request for a denied path,
/// hidden behind an obfuscated `Transfer-Encoding`.
pub fn smuggling_payload() -> Vec<u8> {
    let inner = b"GET /internal/flush HTTP/1.1\r\nHost: s1\r\n\r\n".to_vec();
    let mut outer = format!(
        "GET /public HTTP/1.1\r\nHost: s1\r\nTransfer-Encoding: \x0bchunked\r\n\
         Content-Length: {}\r\n\r\n",
        inner.len()
    )
    .into_bytes();
    outer.extend(inner);
    outer
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acl_denies_internal_paths() {
        assert!(is_denied("/internal/flush"));
        assert!(is_denied("/admin"));
        assert!(!is_denied("/public"));
        assert!(!is_denied("/public-internal"));
    }

    #[test]
    fn normalize_strips_obfuscation() {
        assert_eq!(normalize_header_value("\u{b}chunked"), "chunked");
        assert_eq!(normalize_header_value(" Chunked "), "chunked");
        assert_eq!(normalize_header_value("chunked"), "chunked");
    }

    #[test]
    fn payload_contains_hidden_request() {
        let p = smuggling_payload();
        let text = String::from_utf8_lossy(&p);
        assert!(text.contains("GET /public"));
        assert!(text.contains("GET /internal/flush"));
        assert!(text.contains("\u{b}chunked"));
        // The outer request parses with the inner one as its body.
        let (outer, used) = try_parse_request(&p).unwrap();
        assert_eq!(used, p.len());
        assert!(String::from_utf8_lossy(&outer.body).starts_with("GET /internal/flush"));
    }
}
