//! The GitLab composite deployment of §V-F (Figure 3).
//!
//! "The GitLab application is constructed from a number of smaller
//! microservices, some of which were developed in-house by the GitLab team
//! and others that are independent open-source projects." The simulator
//! deploys the architecture's shape — client-facing workhorse/shell, the
//! Rails application (puma), background workers, pages — with puma as the
//! only service that talks to the Postgres module RDDR guards.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rddr_net::{BoxStream, ServiceAddr, Stream};
use rddr_orchestra::{Cluster, ContainerHandle, Image, Service, ServiceCtx};
use rddr_pgsim::PgClient;

use crate::framework::{read_request, url_decode, HttpRequest, HttpResponse};

/// Addresses of the composite's services.
#[derive(Debug, Clone)]
pub struct GitlabAddrs {
    /// The nginx ingress / workhorse front door (HTTP).
    pub workhorse: ServiceAddr,
    /// The Rails application server.
    pub puma: ServiceAddr,
    /// The SSH front door (line protocol).
    pub shell: ServiceAddr,
    /// Static pages.
    pub pages: ServiceAddr,
}

impl Default for GitlabAddrs {
    fn default() -> Self {
        Self {
            workhorse: ServiceAddr::new("gitlab-workhorse", 80),
            puma: ServiceAddr::new("gitlab-puma", 8080),
            shell: ServiceAddr::new("gitlab-shell", 22),
            pages: ServiceAddr::new("gitlab-pages", 80),
        }
    }
}

/// The puma (GitLab Rails) application server: sign-in with CSRF tokens and
/// project CRUD over the Postgres backend.
pub struct PumaService {
    db_addr: ServiceAddr,
    tokens: Mutex<(Option<StdRng>, std::collections::BTreeSet<String>)>,
    seed: u64,
}

impl std::fmt::Debug for PumaService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PumaService")
            .field("db", &self.db_addr)
            .finish()
    }
}

impl PumaService {
    /// Creates the Rails app pointing at the database (in an RDDR
    /// deployment: the incoming proxy fronting the N Postgres instances).
    pub fn new(db_addr: ServiceAddr, seed: u64) -> Self {
        Self {
            db_addr,
            tokens: Mutex::new((None, Default::default())),
            seed,
        }
    }

    fn mint_token(&self) -> String {
        let mut guard = self.tokens.lock();
        let seed = self.seed;
        let rng = guard.0.get_or_insert_with(|| StdRng::seed_from_u64(seed));
        let token: String = (0..20)
            .map(|_| {
                let c = rng.gen_range(0..36u8);
                if c < 26 {
                    (b'a' + c) as char
                } else {
                    (b'0' + c - 26) as char
                }
            })
            .collect();
        let t = token.clone();
        guard.1.insert(token);
        t
    }

    fn query(&self, ctx: &ServiceCtx, sql: &str) -> Result<Vec<Vec<String>>, String> {
        let conn = ctx.net.dial(&self.db_addr).map_err(|e| e.to_string())?;
        let mut client = PgClient::connect(conn, "gitlab").map_err(|e| e.to_string())?;
        let resp = client.query(sql).map_err(|e| e.to_string())?;
        match resp.error {
            Some(err) => Err(err),
            None => Ok(resp.rows),
        }
    }

    fn dispatch(&self, req: &HttpRequest, ctx: &ServiceCtx) -> HttpResponse {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/users/sign_in") => {
                let token = self.mint_token();
                HttpResponse::html(format!(
                    "<html><body><form action=\"/users/sign_in\" method=\"POST\">\n\
                     <input name=\"user\"><input name=\"password\" type=\"password\">\n\
                     <input type=\"hidden\" name=\"authenticity_token\" value=\"{token}\">\n\
                     </form></body></html>"
                ))
            }
            ("POST", "/users/sign_in") => {
                let form = req.form();
                let token = form.get("authenticity_token").cloned().unwrap_or_default();
                if !self.tokens.lock().1.remove(&token) {
                    return HttpResponse::status(403, "invalid authenticity token");
                }
                let user = form.get("user").cloned().unwrap_or_default();
                HttpResponse::html(format!("<html><body>Welcome, {user}!</body></html>"))
            }
            ("GET", "/projects") => match self.query(
                ctx,
                "SELECT name, stars FROM projects ORDER BY stars DESC, name",
            ) {
                Ok(rows) => {
                    let mut body = String::from("<html><body><ul>\n");
                    for row in rows {
                        body.push_str(&format!(
                            "<li>{} ({}★)</li>\n",
                            row.first().map(String::as_str).unwrap_or(""),
                            row.get(1).map(String::as_str).unwrap_or("0")
                        ));
                    }
                    body.push_str("</ul></body></html>");
                    HttpResponse::html(body)
                }
                Err(e) => HttpResponse::status(500, format!("database error: {e}")),
            },
            ("POST", "/projects") => {
                let form = req.form();
                let name = form.get("name").cloned().unwrap_or_default();
                if name.is_empty()
                    || !name
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
                {
                    return HttpResponse::status(400, "invalid project name");
                }
                match self.query(ctx, &format!("INSERT INTO projects VALUES ('{name}', 0)")) {
                    Ok(_) => HttpResponse::status(201, "created"),
                    Err(e) => HttpResponse::status(500, format!("database error: {e}")),
                }
            }
            ("GET", "/api/v4/sql") => {
                // The assumed SQL-injection hole (§V-F2): "We assume the
                // presence of an SQL injection vulnerability in the
                // frontend of the application which enables the attacker
                // to send arbitrary SQL queries to the backend database."
                let raw = req.param("q").map(url_decode).unwrap_or_default();
                match self.query(ctx, &raw) {
                    Ok(rows) => {
                        let lines: Vec<String> = rows.into_iter().map(|r| r.join("|")).collect();
                        HttpResponse::ok(lines.join("\n"))
                    }
                    Err(e) => HttpResponse::status(500, format!("database error: {e}")),
                }
            }
            ("GET", "/-/health") => HttpResponse::ok("GitLab OK"),
            _ => HttpResponse::status(404, "404 Not Found"),
        }
    }
}

impl Service for PumaService {
    fn name(&self) -> &str {
        "puma"
    }

    fn handle(&self, mut conn: BoxStream, ctx: &ServiceCtx) {
        let mut buf = Vec::new();
        loop {
            match read_request(&mut conn, &mut buf) {
                Ok(Some((req, _))) => {
                    let resp = self.dispatch(&req, ctx);
                    if conn.write_all(&resp.to_bytes()).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
    }
}

/// The workhorse/ingress: forwards HTTP to puma (a framed passthrough).
pub struct WorkhorseService {
    puma: ServiceAddr,
}

impl std::fmt::Debug for WorkhorseService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkhorseService").finish()
    }
}

impl Service for WorkhorseService {
    fn name(&self) -> &str {
        "workhorse"
    }

    fn handle(&self, mut conn: BoxStream, ctx: &ServiceCtx) {
        let mut buf = Vec::new();
        loop {
            match read_request(&mut conn, &mut buf) {
                Ok(Some((_req, raw))) => {
                    match crate::haproxy::forward_request(ctx, &self.puma, &raw) {
                        Some(resp) => {
                            if conn.write_all(&resp.to_bytes()).is_err() {
                                return;
                            }
                        }
                        None => {
                            let _ = conn.write_all(
                                &HttpResponse::status(502, "puma unavailable").to_bytes(),
                            );
                            return;
                        }
                    }
                }
                _ => return,
            }
        }
    }
}

/// The SSH front door (decorative: answers a banner per line).
#[derive(Debug, Default)]
pub struct ShellService;

impl Service for ShellService {
    fn name(&self) -> &str {
        "gitlab-shell"
    }

    fn handle(&self, mut conn: BoxStream, _ctx: &ServiceCtx) {
        let mut chunk = [0u8; 1024];
        let _ = conn.write_all(b"GitLab: Welcome to GitLab, @user!\n");
        while conn.read(&mut chunk).map(|n| n > 0).unwrap_or(false) {}
    }
}

/// A running GitLab composite.
pub struct GitlabDeployment {
    /// Service addresses.
    pub addrs: GitlabAddrs,
    /// Container handles (dropping them stops the deployment).
    pub containers: Vec<ContainerHandle>,
}

impl std::fmt::Debug for GitlabDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GitlabDeployment")
            .field("containers", &self.containers.len())
            .finish()
    }
}

/// Deploys the GitLab composite onto a cluster, with puma pointed at
/// `db_addr` (the incoming RDDR proxy in the paper's Figure 3 setup).
///
/// # Errors
///
/// Returns the orchestration error if any container fails to start.
pub fn deploy_gitlab(
    cluster: &Cluster,
    db_addr: ServiceAddr,
) -> rddr_orchestra::Result<GitlabDeployment> {
    let addrs = GitlabAddrs::default();
    let mut containers = vec![cluster.run_container(
        "gitlab-puma-0",
        Image::new("gitlab-rails", "13.0"),
        &addrs.puma,
        Arc::new(PumaService::new(db_addr, 0x917a)),
    )?];
    containers.push(cluster.run_container(
        "gitlab-workhorse-0",
        Image::new("gitlab-workhorse", "13.0"),
        &addrs.workhorse,
        Arc::new(WorkhorseService {
            puma: addrs.puma.clone(),
        }),
    )?);
    containers.push(cluster.run_container(
        "gitlab-shell-0",
        Image::new("gitlab-shell", "13.0"),
        &addrs.shell,
        Arc::new(ShellService),
    )?);
    containers.push(
        cluster.run_container(
            "gitlab-pages-0",
            Image::new("gitlab-pages", "13.0"),
            &addrs.pages,
            Arc::new(
                crate::framework::HttpService::new("pages")
                    .route("GET", "/", |_r, _c| HttpResponse::html("<h1>Pages</h1>")),
            ),
        )?,
    );
    Ok(GitlabDeployment { addrs, containers })
}

/// Seeds the GitLab database schema ("an empty database is initialized with
/// the schema for GitLab", §V-F2) plus the row-secured table the
/// CVE-2019-10130 exploit targets.
///
/// # Errors
///
/// Returns the underlying SQL error if DDL fails.
pub fn seed_gitlab_schema(db: &mut rddr_pgsim::Database) -> Result<(), rddr_pgsim::SqlError> {
    let mut session = db.session("app");
    db.execute(&mut session, "CREATE TABLE projects (name TEXT, stars INT)")?;
    db.execute(
        &mut session,
        "INSERT INTO projects VALUES ('gitlab-ce', 22000), ('runner', 3100), \
         ('pages-daemon', 420)",
    )?;
    db.execute(&mut session, "GRANT SELECT ON projects TO GITLAB")?;
    db.execute(
        &mut session,
        "CREATE TABLE user_secrets (secret_level INT, owner TEXT, token TEXT)",
    )?;
    db.execute(
        &mut session,
        "INSERT INTO user_secrets VALUES (1, 'gitlab', 'glpat-public-ci'), \
         (900, 'root', 'glpat-ROOT-ADMIN-TOKEN'), (901, 'root', 'aws-key-AKIA99')",
    )?;
    db.execute(
        &mut session,
        "ALTER TABLE user_secrets ENABLE ROW LEVEL SECURITY",
    )?;
    db.execute(
        &mut session,
        "CREATE POLICY visible ON user_secrets USING (owner = 'gitlab')",
    )?;
    db.execute(&mut session, "GRANT SELECT ON user_secrets TO GITLAB")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::HttpClient;
    use rddr_pgsim::{Database, PgServer, PgVersion};

    #[test]
    fn gitlab_composite_serves_benign_flows() {
        let cluster = Cluster::new(4);
        let mut db = Database::new(PgVersion::parse("10.7").unwrap());
        seed_gitlab_schema(&mut db).unwrap();
        let db_addr = ServiceAddr::new("gitlab-postgres", 5432);
        let _pg = cluster
            .run_container(
                "gitlab-postgres-0",
                Image::new("postgres", "10.7"),
                &db_addr,
                Arc::new(PgServer::new(db)),
            )
            .unwrap();
        let deployment = deploy_gitlab(&cluster, db_addr).unwrap();
        let net = cluster.net();
        let mut client = HttpClient::connect(&net, &deployment.addrs.workhorse).unwrap();

        // Sign-in flow with CSRF token round trip.
        let page = client.get("/users/sign_in").unwrap();
        let html = page.body_text();
        let token = html
            .split("value=\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("token in page");
        let welcome = client
            .post(
                "/users/sign_in",
                &format!("user=ada&password=pw&authenticity_token={token}"),
            )
            .unwrap();
        assert!(welcome.body_text().contains("Welcome, ada!"));

        // Project list and creation.
        let list = client.get("/projects").unwrap();
        assert!(list.body_text().contains("gitlab-ce"));
        assert_eq!(
            client.post("/projects", "name=new-repo").unwrap().status,
            201
        );
        let list = client.get("/projects").unwrap();
        assert!(list.body_text().contains("new-repo"));

        // Health endpoint.
        assert_eq!(client.get("/-/health").unwrap().body_text(), "GitLab OK");
    }

    #[test]
    fn stale_csrf_token_is_rejected() {
        let cluster = Cluster::new(2);
        let mut db = Database::new(PgVersion::parse("10.7").unwrap());
        seed_gitlab_schema(&mut db).unwrap();
        let db_addr = ServiceAddr::new("gitlab-postgres", 5432);
        let _pg = cluster
            .run_container(
                "gitlab-postgres-0",
                Image::new("postgres", "10.7"),
                &db_addr,
                Arc::new(PgServer::new(db)),
            )
            .unwrap();
        let deployment = deploy_gitlab(&cluster, db_addr).unwrap();
        let net = cluster.net();
        let mut client = HttpClient::connect(&net, &deployment.addrs.puma).unwrap();
        let resp = client
            .post("/users/sign_in", "user=eve&authenticity_token=forged000000")
            .unwrap();
        assert_eq!(resp.status, 403);
    }

    #[test]
    fn rls_hides_secrets_from_gitlab_user() {
        let mut db = Database::new(PgVersion::parse("10.9").unwrap());
        seed_gitlab_schema(&mut db).unwrap();
        let mut session = db.session("gitlab");
        let r = db
            .execute(&mut session, "SELECT token FROM user_secrets")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].to_string(), "glpat-public-ci");
    }
}
