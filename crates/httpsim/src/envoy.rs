//! EnvoySim: a plain passthrough front proxy.
//!
//! The paper's Figure 5 compares RDDR against "a single instance of
//! Postgres with an Envoy front proxy … an optimized and widely used proxy
//! designed to be cloud native". The simulator pumps bytes bidirectionally
//! between client and upstream without inspecting them — the cheapest
//! possible proxy, which is exactly the baseline role it plays.

use rddr_net::{BoxStream, ServiceAddr, Stream};
use rddr_orchestra::{Service, ServiceCtx};

/// The Envoy stand-in: TCP-level bidirectional forwarding.
pub struct EnvoySim {
    upstream: ServiceAddr,
}

impl std::fmt::Debug for EnvoySim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnvoySim")
            .field("upstream", &self.upstream)
            .finish()
    }
}

impl EnvoySim {
    /// Creates a front proxy forwarding to `upstream`.
    pub fn new(upstream: ServiceAddr) -> Self {
        Self { upstream }
    }
}

impl Service for EnvoySim {
    fn name(&self) -> &str {
        "envoy"
    }

    fn handle(&self, mut client: BoxStream, ctx: &ServiceCtx) {
        let Ok(mut upstream) = ctx.net.dial(&self.upstream) else {
            client.shutdown();
            return;
        };
        // Two pump threads: client→upstream here needs a second handle.
        let (Ok(mut client_rx), Ok(mut upstream_rx)) = (client.try_clone(), upstream.try_clone())
        else {
            client.shutdown();
            return;
        };
        let up = std::thread::spawn(move || {
            pump(&mut client_rx, &mut upstream);
        });
        pump(&mut upstream_rx, &mut client);
        let _ = up.join();
    }
}

fn pump(from: &mut dyn Stream, to: &mut dyn Stream) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match from.read(&mut chunk) {
            Ok(0) | Err(_) => {
                to.shutdown();
                return;
            }
            Ok(n) => {
                if to.write_all(&chunk[..n]).is_err() {
                    from.shutdown();
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{HttpClient, HttpResponse, HttpService};
    use rddr_orchestra::{Cluster, Image};
    use std::sync::Arc;

    #[test]
    fn envoy_forwards_transparently() {
        let cluster = Cluster::new(2);
        let backend =
            HttpService::new("api").route("GET", "/ping", |_r, _c| HttpResponse::ok("pong"));
        let api_addr = ServiceAddr::new("api", 80);
        let envoy_addr = ServiceAddr::new("envoy", 80);
        let _b = cluster
            .run_container(
                "api-0",
                Image::new("api", "v1"),
                &api_addr,
                Arc::new(backend),
            )
            .unwrap();
        let _e = cluster
            .run_container(
                "envoy-0",
                Image::new("envoy", "v1"),
                &envoy_addr,
                Arc::new(EnvoySim::new(api_addr)),
            )
            .unwrap();
        let net = cluster.net();
        let mut client = HttpClient::connect(&net, &envoy_addr).unwrap();
        assert_eq!(client.get("/ping").unwrap().body_text(), "pong");
        // Multiple requests over the same proxied connection.
        assert_eq!(client.get("/ping").unwrap().body_text(), "pong");
    }

    #[test]
    fn envoy_with_dead_upstream_closes_client() {
        let cluster = Cluster::new(1);
        let envoy_addr = ServiceAddr::new("envoy", 80);
        let _e = cluster
            .run_container(
                "envoy-0",
                Image::new("envoy", "v1"),
                &envoy_addr,
                Arc::new(EnvoySim::new(ServiceAddr::new("ghost", 80))),
            )
            .unwrap();
        let net = cluster.net();
        let mut client = HttpClient::connect(&net, &envoy_addr).unwrap();
        assert!(client.get("/x").is_err());
    }
}
