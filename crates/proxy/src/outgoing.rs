//! The RDDR Outgoing Request Proxy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::BytesMut;
use crossbeam::channel::unbounded;
use rddr_core::{Direction, EngineConfig, NVersionEngine, PolicyDecision};
use rddr_net::{BoxStream, Network, ServiceAddr, Stream};
use rddr_telemetry::Histogram;

use crate::plumbing::{
    below_survivor_floor, eject_instance, fault_instance, quarantine_instance, remove_instance,
    spawn_reader, DegradedTelemetry, InstanceEvent, ProxyTelemetry, Roster,
};
use crate::{ProtocolFactory, ProxyError, ProxyStats, Result, StatsSnapshot};

/// Latency series the outgoing proxy maintains on top of the engine's
/// counters, under `{prefix}_out_*`.
#[derive(Clone)]
struct SessionTelemetry {
    shared: ProxyTelemetry,
    /// Waiting for all N instances' requests to agree, µs.
    merge_us: Arc<Histogram>,
    /// Merged request written → complete backend response read, µs.
    backend_us: Arc<Histogram>,
    /// Eject/quarantine counters and the degraded-depth gauge. (The rejoin
    /// counter stays zero here: outgoing members are inbound connections, so
    /// a lost member cannot be re-dialed — it rejoins as a fresh session.)
    degraded: Arc<DegradedTelemetry>,
}

impl SessionTelemetry {
    fn new(shared: ProxyTelemetry) -> Self {
        let name = |s: &str| format!("{}_out_{s}", shared.prefix);
        SessionTelemetry {
            merge_us: shared.registry.histogram(&name("merge_latency_us")),
            backend_us: shared.registry.histogram(&name("backend_latency_us")),
            degraded: Arc::new(DegradedTelemetry::new(
                &shared.registry,
                &format!("{}_out", shared.prefix),
            )),
            shared,
        }
    }
}

/// The outgoing request proxy: the N protected instances connect *here*
/// instead of to a downstream microservice. The proxy verifies that all N
/// issue consistent requests, forwards a single merged copy to the real
/// backend, and replicates the backend's response to every instance
/// (Figure 2, bottom half; "one proxy assigned for each distinct
/// microservice" the protected service talks to).
///
/// The proxy groups instance connections into sessions of N in arrival
/// order: Diffy replicates traffic but "does not merge requests to
/// downstream microservices — RDDR addresses this issue with an outgoing
/// proxy to merge traffic streams" (§III-A).
///
/// **Grouping assumption**: the N instances' connections for one logical
/// client flow arrive as a contiguous batch. This holds when the incoming
/// proxy serializes exchanges per client session (instances dial the
/// backend while handling the same replicated request) — the deployments
/// of the paper's evaluation. Highly concurrent frontends should instead
/// hold one persistent backend connection per instance, which pins the
/// grouping for the connection's lifetime.
pub struct OutgoingProxy {
    listen_addr: ServiceAddr,
    stats: Arc<ProxyStats>,
    stop: Arc<AtomicBool>,
    unbind: Box<dyn Fn() + Send + Sync>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for OutgoingProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutgoingProxy")
            .field("listen", &self.listen_addr)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl OutgoingProxy {
    /// Binds `listen` for the N instances and forwards merged traffic to
    /// `backend`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Bind`] if the listen address is taken.
    pub fn start(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        backend: ServiceAddr,
        config: EngineConfig,
        protocol: ProtocolFactory,
    ) -> Result<OutgoingProxy> {
        Self::start_with_telemetry(net, listen, backend, config, protocol, None)
    }

    /// Like [`OutgoingProxy::start`], but every session's engine feeds the
    /// shared [`ProxyTelemetry`] bundle (metric names under
    /// `{prefix}_out_*`, divergences to its audit log).
    pub fn start_with_telemetry(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        backend: ServiceAddr,
        config: EngineConfig,
        protocol: ProtocolFactory,
        telemetry: Option<ProxyTelemetry>,
    ) -> Result<OutgoingProxy> {
        let mut listener = net.listen(listen).map_err(ProxyError::Bind)?;
        // Report the resolved address (TCP port 0 binds to an ephemeral port).
        let bound = listener.local_addr();
        let stats = Arc::new(ProxyStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let n = config.instances();
        let session_telemetry = telemetry.map(SessionTelemetry::new);

        let session_stats = Arc::clone(&stats);
        let session_stop = Arc::clone(&stop);
        let session_net = Arc::clone(&net);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rddr-out-{listen}"))
            .spawn(move || {
                loop {
                    // Group the next N connections into one session.
                    let mut members = Vec::with_capacity(n);
                    while members.len() < n {
                        let Ok(conn) = listener.accept() else {
                            return;
                        };
                        if session_stop.load(Ordering::Relaxed) {
                            return;
                        }
                        members.push(conn);
                    }
                    session_stats.sessions.fetch_add(1, Ordering::Relaxed);
                    let net = Arc::clone(&session_net);
                    let backend = backend.clone();
                    let config = config.clone();
                    let protocol = Arc::clone(&protocol);
                    let stats = Arc::clone(&session_stats);
                    let telemetry = session_telemetry.clone();
                    let spawned = std::thread::Builder::new()
                        .name("rddr-out-session".into())
                        .spawn(move || {
                            run_session(members, net, backend, config, protocol, stats, telemetry)
                        });
                    if spawned.is_err() {
                        // Thread exhaustion: the dropped closure closes the
                        // member connections — a severed session, not a
                        // crashed accept loop.
                        session_stats.severed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
            .map_err(ProxyError::Spawn)?;

        let unbind_net = net;
        let unbind_addr = bound.clone();
        Ok(OutgoingProxy {
            listen_addr: bound,
            stats,
            stop,
            unbind: Box::new(move || {
                unbind_net.unbind_addr(&unbind_addr);
                // Fabrics whose unbind is a no-op (plain TCP) need the
                // accept loop woken so it can observe the stop flag.
                if let Ok(mut conn) = unbind_net.dial(&unbind_addr) {
                    conn.shutdown();
                }
            }),
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the protected instances connect to.
    pub fn listen_addr(&self) -> &ServiceAddr {
        &self.listen_addr
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting new sessions and unbinds the listen address.
    pub fn stop(&mut self) {
        if !self.stop.swap(true, Ordering::Relaxed) {
            (self.unbind)();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for OutgoingProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_session(
    members: Vec<BoxStream>,
    net: Arc<dyn Network>,
    backend: ServiceAddr,
    config: EngineConfig,
    protocol: ProtocolFactory,
    stats: Arc<ProxyStats>,
    telemetry: Option<SessionTelemetry>,
) {
    let deadline = config.response_deadline();
    let degrade = config.degrade();
    let instance_deadline = config.instance_deadline();
    let n = config.instances();
    // The outgoing proxy diffs the instances' *requests*.
    let mut engine =
        NVersionEngine::from_boxed(config, protocol()).diff_direction(Direction::Request);
    if let Some(t) = &telemetry {
        engine = engine.with_telemetry(
            Arc::clone(&t.shared.registry),
            &format!("{}_out", t.shared.prefix),
            Some(Arc::clone(&t.shared.audit)),
        );
    }
    let degraded = telemetry.as_ref().map(|t| Arc::clone(&t.degraded));
    let response_protocol = protocol();

    // Attach a reader to every member connection. Unlike the incoming proxy
    // the members dialed *us*, so a member lost here cannot be re-dialed: no
    // rejoin probes — a recovered replica reappears as a fresh session.
    let mut roster = Roster::new(n);
    let (events_tx, events_rx) = unbounded();
    let mut aborted = false;
    for (i, conn) in members.into_iter().enumerate() {
        let spawned = conn
            .try_clone()
            .map_err(|_| ())
            .and_then(|reader| {
                spawn_reader(i, roster.epoch(i), reader, events_tx.clone(), "out").map_err(|_| ())
            })
            .is_ok();
        if let Some(slot) = roster.writers.get_mut(i) {
            *slot = Some(conn);
        }
        if !spawned {
            if degrade.ejects() {
                eject_instance(i, &mut engine, &mut roster, &stats, degraded.as_deref());
            } else {
                aborted = true;
            }
        }
    }
    if !aborted && below_survivor_floor(engine.active_count(), degrade) {
        aborted = true;
    }
    let mut backend_conn = if aborted {
        None
    } else {
        net.dial(&backend).ok()
    };

    let mut backend_buf = BytesMut::new();
    let mut chunk = [0u8; 16 * 1024];
    // Per-exchange scratch, hoisted out of the session loop so a long-lived
    // session stops allocating once its buffers reach steady-state size.
    let mut closed = vec![false; n];
    let mut failed = vec![false; n];
    let mut response_buf: Vec<u8> = Vec::new();
    let mut replicate_failed: Vec<usize> = Vec::new();
    'session: while let Some(backend_conn) = backend_conn.as_mut() {
        // Collect one complete request from every live member.
        let t0 = Instant::now();
        closed.iter_mut().for_each(|c| *c = false);
        failed.iter_mut().for_each(|f| *f = false);
        let mut first_complete: Option<Instant> = None;
        let mut saw_data = false;
        loop {
            if engine.exchange_ready() || engine.active_count() == 0 {
                break;
            }
            let mut wait = deadline.saturating_sub(t0.elapsed());
            if wait.is_zero() {
                break;
            }
            if let (Some(limit), Some(first)) = (instance_deadline, first_complete) {
                let straggler = limit.saturating_sub(first.elapsed());
                if straggler.is_zero() {
                    // Straggler deadline: incomplete live members are faulted.
                    for i in 0..n {
                        if engine.is_active(i) && !engine.instance_complete(i) {
                            fault_instance(
                                i,
                                degrade,
                                &mut engine,
                                &mut roster,
                                &mut failed,
                                &stats,
                                degraded.as_deref(),
                            );
                        }
                    }
                    break;
                }
                wait = wait.min(straggler);
            }
            match events_rx.recv_timeout(wait) {
                Ok(InstanceEvent::Data(i, epoch, data)) => {
                    if !roster.current(i, epoch) {
                        continue; // stale pre-ejection reader
                    }
                    saw_data = true;
                    if engine.push_response(i, &data).is_err() {
                        fault_instance(
                            i,
                            degrade,
                            &mut engine,
                            &mut roster,
                            &mut failed,
                            &stats,
                            degraded.as_deref(),
                        );
                    } else if first_complete.is_none() && engine.instance_complete(i) {
                        first_complete = Some(Instant::now());
                    }
                }
                Ok(InstanceEvent::Closed(i, epoch)) => {
                    if !roster.current(i, epoch) {
                        continue;
                    }
                    if degrade.ejects() {
                        // A member closing before any request data this
                        // exchange is a clean departure, not a fault.
                        if saw_data {
                            eject_instance(
                                i,
                                &mut engine,
                                &mut roster,
                                &stats,
                                degraded.as_deref(),
                            );
                        } else {
                            remove_instance(i, &mut engine, &mut roster, degraded.as_deref());
                        }
                        if engine.active_count() == 0 {
                            break 'session; // all members gone: session over
                        }
                    } else {
                        if let Some(c) = closed.get_mut(i) {
                            *c = true;
                        }
                        if closed.iter().all(|&c| c) {
                            break 'session; // all instances done: clean end
                        }
                        fault_instance(
                            i,
                            degrade,
                            &mut engine,
                            &mut roster,
                            &mut failed,
                            &stats,
                            degraded.as_deref(),
                        );
                    }
                }
                Err(_) => continue, // timeout: re-checked at loop top
            }
        }
        if let Some(t) = &telemetry {
            t.merge_us.record_duration(t0.elapsed());
        }
        // Members still incomplete at the overall deadline are faulted too.
        if degrade.ejects() && !engine.exchange_ready() {
            for i in 0..n {
                if engine.is_active(i) && !engine.instance_complete(i) {
                    eject_instance(i, &mut engine, &mut roster, &stats, degraded.as_deref());
                }
            }
        }
        if engine.active_count() == 0 {
            break 'session; // nothing left to merge for
        }
        // Survivor floor: merging needs at least two live members.
        if below_survivor_floor(engine.active_count(), degrade) {
            stats.severed.fetch_add(1, Ordering::Relaxed);
            break 'session;
        }
        if engine.active_count() == 1 {
            // Lone-survivor pass-through: its request is forwarded unmerged.
            stats.pass_through.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = degraded.as_deref() {
                t.pass_through.inc();
            }
        }

        // Verify consistency of the merged request.
        let outcome = match engine.finish_exchange() {
            Ok(outcome) => outcome,
            Err(_) => break 'session, // nothing buffered (e.g. idle EOF race)
        };
        stats.exchanges.fetch_add(1, Ordering::Relaxed);
        if outcome.report.diverged() {
            stats.divergences.fetch_add(1, Ordering::Relaxed);
        }
        // Quorum voting: members outvoted by the winning group are
        // quarantined for the rest of the session.
        for &i in &outcome.quarantined {
            quarantine_instance(i, &mut engine, &mut roster, &stats, degraded.as_deref());
        }
        let merged = match (&outcome.decision, outcome.forward) {
            (PolicyDecision::Forward { .. }, Some(bytes)) => bytes,
            _ => {
                stats.severed.fetch_add(1, Ordering::Relaxed);
                break 'session;
            }
        };

        // Forward the single merged request to the real backend.
        let backend_start = Instant::now();
        if backend_conn.write_all(&merged).is_err() {
            break 'session;
        }

        // Read one complete backend response (into the reused scratch
        // buffer) and replicate it to the live members.
        response_buf.clear();
        let complete = loop {
            match response_protocol.split_frames(&mut backend_buf, Direction::Response) {
                Ok(frames) if !frames.is_empty() => {
                    let mut collected = frames;
                    // Keep reading until the response exchange completes
                    // (e.g. PostgreSQL: through ReadyForQuery).
                    while !response_protocol.exchange_complete(&collected, Direction::Response) {
                        match backend_conn.read(&mut chunk) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                let Some(read) = chunk.get(..n) else {
                                    break;
                                };
                                backend_buf.extend_from_slice(read);
                                if let Ok(more) = response_protocol
                                    .split_frames(&mut backend_buf, Direction::Response)
                                {
                                    collected.extend(more);
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                    for f in &collected {
                        response_buf.extend_from_slice(&f.bytes);
                    }
                    break true;
                }
                Ok(_) => {}
                Err(_) => break false,
            }
            match backend_conn.read(&mut chunk) {
                Ok(0) | Err(_) => break false,
                Ok(n) => {
                    let Some(read) = chunk.get(..n) else {
                        break false;
                    };
                    backend_buf.extend_from_slice(read);
                }
            }
        };
        if !complete {
            break 'session;
        }
        if let Some(t) = &telemetry {
            t.backend_us.record_duration(backend_start.elapsed());
        }
        replicate_failed.clear();
        for (i, slot) in roster.writers.iter_mut().enumerate() {
            let Some(w) = slot else {
                continue;
            };
            if w.write_all(&response_buf).is_err() {
                replicate_failed.push(i);
            }
        }
        for &i in &replicate_failed {
            if !degrade.ejects() {
                break 'session;
            }
            eject_instance(i, &mut engine, &mut roster, &stats, degraded.as_deref());
        }
        if engine.active_count() == 0 {
            break 'session;
        }
    }
    if let Some(mut conn) = backend_conn {
        conn.shutdown();
    }
    roster.shutdown_all();
    // The gauge tracks currently-ejected members; a session that ends while
    // degraded returns its contribution.
    if let Some(t) = degraded.as_deref() {
        let depth = n.saturating_sub(engine.active_count());
        if depth > 0 {
            t.degraded_depth.add(-(depth as i64));
        }
    }
}
