//! The RDDR Outgoing Request Proxy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use rddr_core::{
    DegradePolicy, Direction, EngineConfig, Frame, NVersionEngine, PolicyDecision, Protocol,
    RddrError,
};
use rddr_net::{BoxStream, Network, ServiceAddr, Stream, TryRead};
use rddr_telemetry::Histogram;

use crate::plumbing::{
    below_survivor_floor, eject_instance, fault_instance, quarantine_instance, remove_instance,
    DegradedTelemetry, ProxyTelemetry, Roster,
};
use crate::reactor::{default_workers, Ctx, Flow, ReactorPool, SessionTask, SLOT_PRIMARY};
use crate::{ProtocolFactory, ProxyError, ProxyStats, Result, StatsSnapshot};

/// Latency series the outgoing proxy maintains on top of the engine's
/// counters, under `{prefix}_out_*`.
#[derive(Clone)]
struct SessionTelemetry {
    shared: ProxyTelemetry,
    /// Waiting for all N instances' requests to agree, µs.
    merge_us: Arc<Histogram>,
    /// Merged request written → complete backend response read, µs.
    backend_us: Arc<Histogram>,
    /// Eject/quarantine counters and the degraded-depth gauge. (The rejoin
    /// counter stays zero here: outgoing members are inbound connections, so
    /// a lost member cannot be re-dialed — it rejoins as a fresh session.)
    degraded: Arc<DegradedTelemetry>,
}

impl SessionTelemetry {
    fn new(shared: ProxyTelemetry) -> Self {
        let name = |s: &str| format!("{}_out_{s}", shared.prefix);
        SessionTelemetry {
            merge_us: shared.registry.histogram(&name("merge_latency_us")),
            backend_us: shared.registry.histogram(&name("backend_latency_us")),
            degraded: Arc::new(DegradedTelemetry::new(
                &shared.registry,
                &format!("{}_out", shared.prefix),
            )),
            shared,
        }
    }
}

/// The outgoing request proxy: the N protected instances connect *here*
/// instead of to a downstream microservice. The proxy verifies that all N
/// issue consistent requests, forwards a single merged copy to the real
/// backend, and replicates the backend's response to every instance
/// (Figure 2, bottom half; "one proxy assigned for each distinct
/// microservice" the protected service talks to).
///
/// The proxy groups instance connections into sessions of N in arrival
/// order: Diffy replicates traffic but "does not merge requests to
/// downstream microservices — RDDR addresses this issue with an outgoing
/// proxy to merge traffic streams" (§III-A).
///
/// Sessions run as state machines on a shared [`ReactorPool`] of O(cores)
/// worker threads — only the accept loop keeps a thread of its own.
///
/// **Grouping assumption**: the N instances' connections for one logical
/// client flow arrive as a contiguous batch. This holds when the incoming
/// proxy serializes exchanges per client session (instances dial the
/// backend while handling the same replicated request) — the deployments
/// of the paper's evaluation. Highly concurrent frontends should instead
/// hold one persistent backend connection per instance, which pins the
/// grouping for the connection's lifetime.
pub struct OutgoingProxy {
    listen_addr: ServiceAddr,
    stats: Arc<ProxyStats>,
    stop: Arc<AtomicBool>,
    unbind: Box<dyn Fn() + Send + Sync>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Dropped (tearing down any in-flight sessions) after the accept loop
    /// has been joined.
    pool: Option<Arc<ReactorPool>>,
}

impl std::fmt::Debug for OutgoingProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutgoingProxy")
            .field("listen", &self.listen_addr)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl OutgoingProxy {
    /// Binds `listen` for the N instances and forwards merged traffic to
    /// `backend`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Bind`] if the listen address is taken.
    pub fn start(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        backend: ServiceAddr,
        config: EngineConfig,
        protocol: ProtocolFactory,
    ) -> Result<OutgoingProxy> {
        Self::start_with_telemetry(net, listen, backend, config, protocol, None)
    }

    /// Like [`OutgoingProxy::start`], but every session's engine feeds the
    /// shared [`ProxyTelemetry`] bundle (metric names under
    /// `{prefix}_out_*`, divergences to its audit log) and the reactor
    /// exports its worker/session gauges under `{prefix}_out_reactor_*`.
    pub fn start_with_telemetry(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        backend: ServiceAddr,
        config: EngineConfig,
        protocol: ProtocolFactory,
        telemetry: Option<ProxyTelemetry>,
    ) -> Result<OutgoingProxy> {
        let mut listener = net.listen(listen).map_err(ProxyError::Bind)?;
        // Report the resolved address (TCP port 0 binds to an ephemeral port).
        let bound = listener.local_addr();
        let stats = Arc::new(ProxyStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let n = config.instances();
        let pool = {
            let reactor_telemetry = telemetry
                .as_ref()
                .map(|t| (t.registry.as_ref(), format!("{}_out", t.prefix)));
            Arc::new(
                ReactorPool::new(
                    "out",
                    default_workers(),
                    reactor_telemetry.as_ref().map(|(r, s)| (*r, s.as_str())),
                )
                .map_err(ProxyError::Spawn)?,
            )
        };
        let session_telemetry = telemetry.map(SessionTelemetry::new);

        let session_stats = Arc::clone(&stats);
        let session_stop = Arc::clone(&stop);
        let session_net = Arc::clone(&net);
        let session_pool = Arc::clone(&pool);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rddr-out-{listen}"))
            .spawn(move || {
                loop {
                    // Group the next N connections into one session.
                    let mut members = Vec::with_capacity(n);
                    while members.len() < n {
                        let Ok(conn) = listener.accept() else {
                            return;
                        };
                        if session_stop.load(Ordering::Relaxed) {
                            return;
                        }
                        members.push(conn);
                    }
                    session_stats.sessions.fetch_add(1, Ordering::Relaxed);
                    let task = OutSession::new(
                        members,
                        Arc::clone(&session_net),
                        backend.clone(),
                        config.clone(),
                        &protocol,
                        Arc::clone(&session_stats),
                        session_telemetry.clone(),
                    );
                    if !session_pool.submit(Box::new(task)) {
                        // Pool shutting down: the dropped task closes the
                        // member connections — a severed session, not a
                        // crashed accept loop.
                        session_stats.severed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
            .map_err(ProxyError::Spawn)?;

        let unbind_net = net;
        let unbind_addr = bound.clone();
        Ok(OutgoingProxy {
            listen_addr: bound,
            stats,
            stop,
            unbind: Box::new(move || {
                unbind_net.unbind_addr(&unbind_addr);
                // Fabrics whose unbind is a no-op (plain TCP) need the
                // accept loop woken so it can observe the stop flag.
                if let Ok(mut conn) = unbind_net.dial(&unbind_addr) {
                    conn.shutdown();
                }
            }),
            accept_thread: Some(accept_thread),
            pool: Some(pool),
        })
    }

    /// The address the protected instances connect to.
    pub fn listen_addr(&self) -> &ServiceAddr {
        &self.listen_addr
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Number of reactor workers serving this proxy's sessions.
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.worker_count())
    }

    /// Stops accepting new sessions and unbinds the listen address.
    /// In-flight sessions keep running until the proxy is dropped.
    pub fn stop(&mut self) {
        if !self.stop.swap(true, Ordering::Relaxed) {
            (self.unbind)();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for OutgoingProxy {
    fn drop(&mut self) {
        self.stop();
        // Accept loop is down; dropping the pool tears down live sessions.
        self.pool.take();
    }
}

/// Where an outgoing session currently is in its exchange cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutState {
    /// Collecting one complete request from every live member.
    MergeRequests,
    /// Merged request forwarded; reading the backend's complete response.
    BackendRead,
}

/// What one state-machine transition asks the step driver to do next.
enum Advance {
    /// Re-run the state machine immediately (state changed, or buffered
    /// data may complete the next phase without a fresh wake).
    Again,
    /// Park until the next wake (readiness or timer).
    Park,
    /// Session over.
    Finish,
}

/// One merge session of the outgoing proxy, driven by the reactor.
///
/// Mirrors the old per-session thread loop: `MergeRequests` is the
/// `recv_timeout` merge loop over member requests, `BackendRead` is the
/// blocking backend read loop — with waits replaced by poller parks and the
/// per-member reader threads replaced by draining `try_read` on every wake.
struct OutSession {
    /// Member connections held between construction (accept thread) and
    /// `init` (reactor worker), where they move into the roster.
    members: Vec<BoxStream>,
    net: Arc<dyn Network>,
    backend_addr: ServiceAddr,
    deadline: Duration,
    degrade: DegradePolicy,
    instance_deadline: Option<Duration>,
    n: usize,
    engine: NVersionEngine,
    response_protocol: Box<dyn Protocol>,
    roster: Roster,
    stats: Arc<ProxyStats>,
    telemetry: Option<SessionTelemetry>,
    degraded: Option<Arc<DegradedTelemetry>>,

    backend: Option<BoxStream>,
    backend_open: bool,
    backend_buf: BytesMut,

    state: OutState,

    // Per-exchange merge state.
    t0: Instant,
    closed: Vec<bool>,
    failed: Vec<bool>,
    first_complete: Option<Instant>,
    saw_data: bool,
    /// Member data drained while reading the backend counts as this
    /// exchange's traffic once the next merge begins (the thread model
    /// queued it in the channel until then).
    carry_saw_data: bool,

    // Per-exchange backend-read state.
    backend_start: Instant,
    collected: Vec<Frame>,
    response_buf: Vec<u8>,

    // Member EOFs observed during a drain, awaiting processing at the
    // thread-model-equivalent point (the merge loop).
    pending_close: Vec<bool>,
    closed_seen: Vec<bool>,
}

impl OutSession {
    #[allow(clippy::too_many_arguments)]
    fn new(
        members: Vec<BoxStream>,
        net: Arc<dyn Network>,
        backend_addr: ServiceAddr,
        config: EngineConfig,
        protocol: &ProtocolFactory,
        stats: Arc<ProxyStats>,
        telemetry: Option<SessionTelemetry>,
    ) -> Self {
        let deadline = config.response_deadline();
        let degrade = config.degrade();
        let instance_deadline = config.instance_deadline();
        let n = config.instances();
        // The outgoing proxy diffs the instances' *requests*.
        let mut engine =
            NVersionEngine::from_boxed(config, protocol()).diff_direction(Direction::Request);
        if let Some(t) = &telemetry {
            engine = engine.with_telemetry(
                Arc::clone(&t.shared.registry),
                &format!("{}_out", t.shared.prefix),
                Some(Arc::clone(&t.shared.audit)),
            );
        }
        let degraded = telemetry.as_ref().map(|t| Arc::clone(&t.degraded));
        OutSession {
            members,
            net,
            backend_addr,
            deadline,
            degrade,
            instance_deadline,
            n,
            engine,
            response_protocol: protocol(),
            roster: Roster::new(n),
            stats,
            telemetry,
            degraded,
            backend: None,
            backend_open: false,
            backend_buf: BytesMut::new(),
            state: OutState::MergeRequests,
            t0: Instant::now(),
            closed: vec![false; n],
            failed: vec![false; n],
            first_complete: None,
            saw_data: false,
            carry_saw_data: false,
            backend_start: Instant::now(),
            collected: Vec::new(),
            response_buf: Vec::new(),
            pending_close: vec![false; n],
            closed_seen: vec![false; n],
        }
    }

    /// Routes a member fault through the degrade policy, deregistering its
    /// readiness token first when the stream will leave the roster.
    fn fault(&mut self, i: usize, ctx: &Ctx<'_>) {
        if self.degrade.ejects() {
            ctx.deregister(i as u64);
        }
        fault_instance(
            i,
            self.degrade,
            &mut self.engine,
            &mut self.roster,
            &mut self.failed,
            &self.stats,
            self.degraded.as_deref(),
        );
    }

    fn eject(&mut self, i: usize, ctx: &Ctx<'_>) {
        ctx.deregister(i as u64);
        eject_instance(
            i,
            &mut self.engine,
            &mut self.roster,
            &self.stats,
            self.degraded.as_deref(),
        );
    }

    /// Clean departure: the member leaves the diff set without counting as
    /// a fault (no eject counter).
    fn remove(&mut self, i: usize, ctx: &Ctx<'_>) {
        ctx.deregister(i as u64);
        remove_instance(
            i,
            &mut self.engine,
            &mut self.roster,
            self.degraded.as_deref(),
        );
    }

    fn quarantine(&mut self, i: usize, ctx: &Ctx<'_>) {
        ctx.deregister(i as u64);
        quarantine_instance(
            i,
            &mut self.engine,
            &mut self.roster,
            &self.stats,
            self.degraded.as_deref(),
        );
    }

    /// Resets per-exchange merge state (the top of the old `'session` loop).
    fn begin_exchange(&mut self) {
        self.t0 = Instant::now();
        self.closed.iter_mut().for_each(|c| *c = false);
        self.failed.iter_mut().for_each(|f| *f = false);
        self.first_complete = None;
        self.saw_data = self.carry_saw_data;
        self.carry_saw_data = false;
    }

    /// Drains every *woken* stream to `WouldBlock`: member bytes into the
    /// engine, backend bytes into the parse buffer. EOFs are recorded
    /// (`pending_close`) and their tokens deregistered; member close
    /// handling is deferred to the merge step. Streams that did not wake
    /// are left alone — every arrival produces a slot wake.
    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        for &slot in ctx.woken {
            let i = slot as usize;
            if i >= self.roster.writers.len() || self.closed_seen.get(i).copied().unwrap_or(false) {
                continue;
            }
            loop {
                let res = {
                    let Some(conn) = self.roster.writers.get_mut(i).and_then(|s| s.as_mut()) else {
                        break;
                    };
                    conn.try_read(ctx.scratch)
                };
                match res {
                    Ok(TryRead::Data(n)) => {
                        if self.state == OutState::MergeRequests {
                            self.saw_data = true;
                        } else {
                            self.carry_saw_data = true;
                        }
                        let pushed = match ctx.scratch.get(..n) {
                            Some(read) => self.engine.push_response(i, read),
                            None => Err(RddrError::Protocol("scratch underflow".into())),
                        };
                        if pushed.is_err() {
                            self.fault(i, ctx);
                            break;
                        }
                        if self.state == OutState::MergeRequests
                            && self.first_complete.is_none()
                            && self.engine.instance_complete(i)
                        {
                            self.first_complete = Some(Instant::now());
                        }
                    }
                    Ok(TryRead::WouldBlock) => break,
                    Ok(TryRead::Eof) | Err(_) => {
                        // Observed here, processed in the merge step — and
                        // deregistered now so a closed fd can't spin the
                        // poller.
                        ctx.deregister(i as u64);
                        if let Some(p) = self.pending_close.get_mut(i) {
                            *p = true;
                        }
                        if let Some(c) = self.closed_seen.get_mut(i) {
                            *c = true;
                        }
                        break;
                    }
                }
            }
        }
        if self.backend_open && ctx.woken.contains(&SLOT_PRIMARY) {
            loop {
                let res = {
                    let Some(conn) = self.backend.as_mut() else {
                        break;
                    };
                    conn.try_read(ctx.scratch)
                };
                match res {
                    Ok(TryRead::Data(n)) => {
                        if let Some(read) = ctx.scratch.get(..n) {
                            self.backend_buf.extend_from_slice(read);
                        }
                    }
                    Ok(TryRead::WouldBlock) => break,
                    Ok(TryRead::Eof) | Err(_) => {
                        self.backend_open = false;
                        ctx.deregister(SLOT_PRIMARY);
                        break;
                    }
                }
            }
        }
    }

    /// `MergeRequests`: the wait-loop plus completion of one merge exchange.
    fn merge_requests(&mut self, ctx: &mut Ctx<'_>) -> Advance {
        // Deferred member closes: processed exactly where the thread model
        // consumed its `Closed` events, with the clean-departure logic.
        for i in 0..self.pending_close.len() {
            if !self.pending_close.get(i).copied().unwrap_or(false) {
                continue;
            }
            if let Some(p) = self.pending_close.get_mut(i) {
                *p = false;
            }
            if !self.engine.is_active(i) {
                continue;
            }
            if self.degrade.ejects() {
                // A member closing before any request data this exchange is
                // a clean departure, not a fault.
                if self.saw_data {
                    self.eject(i, ctx);
                } else {
                    self.remove(i, ctx);
                }
                if self.engine.active_count() == 0 {
                    return Advance::Finish; // all members gone: session over
                }
            } else {
                if let Some(c) = self.closed.get_mut(i) {
                    *c = true;
                }
                if self.closed.iter().all(|&c| c) {
                    return Advance::Finish; // all instances done: clean end
                }
                self.fault(i, ctx);
            }
        }

        // A member whose request was already fully buffered (drained during
        // the previous backend read) starts the straggler clock now — the
        // thread model set it when it consumed the queued event.
        if self.first_complete.is_none()
            && (0..self.n).any(|i| self.engine.is_active(i) && self.engine.instance_complete(i))
        {
            self.first_complete = Some(Instant::now());
        }

        // Wait-loop equivalent: park (with a deadline timer) while the
        // exchange is incomplete and time remains.
        if !(self.engine.exchange_ready() || self.engine.active_count() == 0) {
            let mut wait = self.deadline.saturating_sub(self.t0.elapsed());
            if !wait.is_zero() {
                let mut straggler_fired = false;
                if let (Some(limit), Some(first)) = (self.instance_deadline, self.first_complete) {
                    let straggler = limit.saturating_sub(first.elapsed());
                    if straggler.is_zero() {
                        // Straggler deadline: incomplete live members are
                        // faulted.
                        for i in 0..self.n {
                            if self.engine.is_active(i) && !self.engine.instance_complete(i) {
                                self.fault(i, ctx);
                            }
                        }
                        straggler_fired = true;
                    } else {
                        wait = wait.min(straggler);
                    }
                }
                if !straggler_fired {
                    ctx.set_timer(wait);
                    return Advance::Park;
                }
            }
            // Overall deadline passed (or stragglers faulted): fall through
            // to completion with whatever arrived.
        }

        // Completion (the code after the old wait loop).
        ctx.clear_timer();
        if let Some(t) = &self.telemetry {
            t.merge_us.record_duration(self.t0.elapsed());
        }
        // Members still incomplete at the overall deadline are faulted too.
        if self.degrade.ejects() && !self.engine.exchange_ready() {
            for i in 0..self.n {
                if self.engine.is_active(i) && !self.engine.instance_complete(i) {
                    self.eject(i, ctx);
                }
            }
        }
        if self.engine.active_count() == 0 {
            return Advance::Finish; // nothing left to merge for
        }
        // Survivor floor: merging needs at least two live members.
        if below_survivor_floor(self.engine.active_count(), self.degrade) {
            self.stats.severed.fetch_add(1, Ordering::Relaxed);
            return Advance::Finish;
        }
        if self.engine.active_count() == 1 {
            // Lone-survivor pass-through: its request is forwarded unmerged.
            self.stats.pass_through.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.degraded.as_deref() {
                t.pass_through.inc();
            }
        }

        // Verify consistency of the merged request.
        let outcome = match self.engine.finish_exchange() {
            Ok(outcome) => outcome,
            Err(_) => return Advance::Finish, // nothing buffered (idle EOF race)
        };
        self.stats.exchanges.fetch_add(1, Ordering::Relaxed);
        if outcome.report.diverged() {
            self.stats.divergences.fetch_add(1, Ordering::Relaxed);
        }
        // Quorum voting: members outvoted by the winning group are
        // quarantined for the rest of the session.
        for &i in &outcome.quarantined {
            self.quarantine(i, ctx);
        }
        let merged = match (&outcome.decision, outcome.forward) {
            (PolicyDecision::Forward { .. }, Some(bytes)) => bytes,
            _ => {
                self.stats.severed.fetch_add(1, Ordering::Relaxed);
                return Advance::Finish;
            }
        };

        // Forward the single merged request to the real backend.
        self.backend_start = Instant::now();
        let written = match self.backend.as_mut() {
            Some(conn) => conn.write_all(&merged).is_ok(),
            None => false,
        };
        if !written {
            return Advance::Finish;
        }
        self.response_buf.clear();
        self.collected.clear();
        self.state = OutState::BackendRead;
        // Backend bytes may already be buffered from the drain.
        Advance::Again
    }

    /// `BackendRead`: parse one complete backend response out of the drain
    /// buffer, then replicate it to the live members. A backend EOF or split
    /// error mid-exchange still replicates the partial frames collected so
    /// far (matching the old blocking read loop); before any frame it ends
    /// the session.
    fn backend_read(&mut self, ctx: &mut Ctx<'_>) -> Advance {
        if self.collected.is_empty() {
            match self
                .response_protocol
                .split_frames(&mut self.backend_buf, Direction::Response)
            {
                Ok(frames) if !frames.is_empty() => self.collected = frames,
                Ok(_) => {
                    if !self.backend_open {
                        return Advance::Finish;
                    }
                    return Advance::Park;
                }
                Err(_) => return Advance::Finish,
            }
        }
        // Keep collecting until the response exchange completes (e.g.
        // PostgreSQL: through ReadyForQuery).
        while !self
            .response_protocol
            .exchange_complete(&self.collected, Direction::Response)
        {
            match self
                .response_protocol
                .split_frames(&mut self.backend_buf, Direction::Response)
            {
                Ok(more) if !more.is_empty() => self.collected.extend(more),
                Ok(_) => {
                    if self.backend_open {
                        return Advance::Park;
                    }
                    break; // EOF mid-exchange: replicate the partial frames
                }
                Err(_) => break, // parse error mid-exchange: same
            }
        }
        for f in &self.collected {
            self.response_buf.extend_from_slice(&f.bytes);
        }
        self.collected.clear();
        if let Some(t) = &self.telemetry {
            t.backend_us.record_duration(self.backend_start.elapsed());
        }

        // Replicate the backend's response to every live member.
        let mut replicate_failed: Vec<usize> = Vec::new();
        for (i, slot) in self.roster.writers.iter_mut().enumerate() {
            let Some(w) = slot else {
                continue;
            };
            if w.write_all(&self.response_buf).is_err() {
                replicate_failed.push(i);
            }
        }
        for i in replicate_failed {
            if !self.degrade.ejects() {
                return Advance::Finish;
            }
            self.eject(i, ctx);
        }
        if self.engine.active_count() == 0 {
            return Advance::Finish;
        }
        self.begin_exchange();
        self.state = OutState::MergeRequests;
        Advance::Again
    }
}

impl SessionTask for OutSession {
    fn init(&mut self, ctx: &mut Ctx<'_>) -> Flow {
        // Adopt the member connections accepted for this session. A member
        // that cannot register for readiness is treated like the old
        // reader-spawn failure: ejected under an eject policy, fatal under
        // sever.
        for (i, conn) in std::mem::take(&mut self.members).into_iter().enumerate() {
            if let Some(slot) = self.roster.writers.get_mut(i) {
                *slot = Some(conn);
            }
        }
        for i in 0..self.n {
            let registered = match self.roster.writers.get_mut(i).and_then(|s| s.as_mut()) {
                Some(conn) => ctx.register(conn, i as u64),
                None => true,
            };
            if !registered {
                if self.degrade.ejects() {
                    self.eject(i, ctx);
                } else {
                    return Flow::Done;
                }
            }
        }
        if below_survivor_floor(self.engine.active_count(), self.degrade) {
            return Flow::Done;
        }
        let Ok(mut backend) = self.net.dial(&self.backend_addr) else {
            return Flow::Done;
        };
        if !ctx.register(&mut backend, SLOT_PRIMARY) {
            return Flow::Done;
        }
        self.backend = Some(backend);
        self.backend_open = true;
        self.begin_exchange();
        Flow::Continue
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Flow {
        self.drain(ctx);
        loop {
            let advance = match self.state {
                OutState::MergeRequests => self.merge_requests(ctx),
                OutState::BackendRead => self.backend_read(ctx),
            };
            match advance {
                Advance::Again => continue,
                Advance::Park => return Flow::Continue,
                Advance::Finish => return Flow::Done,
            }
        }
    }

    fn teardown(&mut self) {
        if let Some(conn) = self.backend.as_mut() {
            conn.shutdown();
        }
        self.roster.shutdown_all();
        // The gauge tracks currently-ejected members; a session that ends
        // while degraded returns its contribution.
        if let Some(t) = self.degraded.as_deref() {
            let depth = self.n.saturating_sub(self.engine.active_count());
            if depth > 0 {
                t.degraded_depth.add(-(depth as i64));
            }
        }
    }

    fn state_ordinal(&self) -> u64 {
        match self.state {
            OutState::MergeRequests => 0,
            OutState::BackendRead => 1,
        }
    }
}
