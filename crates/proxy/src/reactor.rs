//! The shared session reactor: a fixed pool of worker threads, each owning
//! many proxy sessions as explicit state machines.
//!
//! Before this module existed every session cost one thread per direction
//! plus a reader thread per instance connection — O(sessions × N) threads,
//! which re-created the paper's own concurrency ceiling ("pgbench tapers off
//! above 16 simultaneous clients") as scheduler pressure. Now each proxy owns
//! a [`ReactorPool`] of O(cores) workers; the accept loop stays a thread (it
//! must block in `accept`), but everything after the handshake is a
//! [`SessionTask`] driven by readiness events from one
//! [`Poller`](rddr_net::Poller) per worker.
//!
//! The contract between a worker and its sessions:
//!
//! - Every *woken* stream is drained with `try_read` until `WouldBlock` on
//!   every step: wakes may be edge-triggered (duplex pipes) or
//!   level-triggered (TCP fds), and drain-to-`WouldBlock` makes both behave,
//!   while the per-step slot set ([`Ctx::woken`]) spares the session
//!   `try_read`-ing streams that never fired. Early data is pushed into the
//!   engine, which buffers it — exactly what the per-instance reader
//!   threads' channel used to do.
//! - EOF and read errors are *observed* during the drain (and the slot's
//!   token deregistered so a permanently-readable closed fd cannot spin),
//!   but *processed* at the same point in the exchange state machine where
//!   the thread model consumed its `Closed` event — preserving clean-close
//!   vs fault semantics.
//! - Deadlines are poller timers on a dedicated per-session timer slot; a
//!   timer fire re-runs the same checks the blocking `recv_timeout` loop ran
//!   on timeout.
//! - A step never blocks: writes are the only remaining synchronous I/O
//!   (in-memory writes never block; non-blocking TCP writes ride out
//!   `WouldBlock` in a bounded one-shot poll).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use rddr_net::{BoxStream, Poller, Stream, Token};
use rddr_telemetry::{Gauge, Histogram, Registry};

/// Bits of a token reserved for the per-session slot index.
pub(crate) const SLOT_BITS: u32 = 8;
const SLOT_MASK: u64 = 0xff;
/// Slot of the session's primary stream (client for incoming, backend for
/// outgoing). Instance/member streams use slots `0..=SLOT_PRIMARY-1`.
pub(crate) const SLOT_PRIMARY: u64 = 254;
/// Slot reserved for the session's deadline timer.
pub(crate) const SLOT_TIMER: u64 = 255;
/// Token reserved for "new sessions are waiting in the inject queue".
const INJECT_TOKEN: u64 = u64::MAX;

/// Read scratch size: one socket read's worth of bytes, owned per worker
/// (not per session — 10k sessions must not pin 10k read buffers).
const SCRATCH_SIZE: usize = 16 * 1024;

/// What a session step tells the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// The session is parked waiting for wakes; keep it.
    Continue,
    /// The session is finished; tear it down and drop it.
    Done,
}

/// One proxy session, owned by a reactor worker and advanced by wakes.
pub(crate) trait SessionTask: Send {
    /// Runs once when a worker adopts the session: dial/register streams,
    /// arm initial timers. Registration must use [`Ctx::register`] so wakes
    /// route back to this session.
    fn init(&mut self, ctx: &mut Ctx<'_>) -> Flow;

    /// Runs on every wake (stream readiness or timer fire). Must drain the
    /// streams named by [`Ctx::woken`] to `WouldBlock` before parking again.
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Flow;

    /// Tears the session down (shut connections, return gauges). Runs
    /// exactly once, after `init`/`step` returns [`Flow::Done`] or when the
    /// pool shuts down with the session still live.
    fn teardown(&mut self);

    /// Small-integer encoding of the session's current state, recorded into
    /// the reactor's session-state histogram after every step.
    fn state_ordinal(&self) -> u64;
}

/// Worker-side services a session uses during `init`/`step`.
pub(crate) struct Ctx<'a> {
    poller: &'a Poller,
    session: u64,
    /// Shared read scratch, valid for the duration of one step.
    pub(crate) scratch: &'a mut [u8],
    /// Slots whose tokens fired for this step, ascending and deduplicated.
    /// Sessions drain exactly these streams (every empty→non-empty arrival
    /// and every EOF produces a slot wake, and registration re-wakes for
    /// bytes that landed first, so targeted draining observes everything the
    /// old drain-all did without paying O(streams) `try_read` calls per
    /// wake). Empty during `init`.
    pub(crate) woken: &'a [u64],
}

impl Ctx<'_> {
    fn token(&self, slot: u64) -> Token {
        Token((self.session << SLOT_BITS) | (slot & SLOT_MASK))
    }

    /// Registers `stream` so readiness on it wakes this session. Falls back
    /// to a pump thread for transports without native readiness; returns
    /// `false` only if even that fails (caller treats the stream as dead).
    pub(crate) fn register(&self, stream: &mut BoxStream, slot: u64) -> bool {
        if stream.poll_register(self.poller.readiness(self.token(slot))) {
            return true;
        }
        let placeholder: BoxStream = Box::new(ClosedStream);
        let original = std::mem::replace(stream, placeholder);
        match rddr_net::poll::with_read_pump(original) {
            Ok(mut pumped) => {
                let ok = pumped.poll_register(self.poller.readiness(self.token(slot)));
                *stream = pumped;
                ok
            }
            Err(_) => false,
        }
    }

    /// Stops all wakes for `slot` (queued, timers, watched fds). Must run
    /// before the slot's stream is dropped if it registered an fd.
    pub(crate) fn deregister(&self, slot: u64) {
        self.poller.deregister(self.token(slot));
    }

    /// Arms (replacing) the session's deadline timer.
    pub(crate) fn set_timer(&self, after: Duration) {
        self.poller.set_timer(self.token(SLOT_TIMER), after);
    }

    /// Cancels the session's deadline timer.
    pub(crate) fn clear_timer(&self) {
        self.poller.clear_timer(self.token(SLOT_TIMER));
    }
}

/// Stand-in stream while a session's original stream is being wrapped in a
/// read pump; never observable outside `Ctx::register`.
struct ClosedStream;

impl Stream for ClosedStream {
    fn read(&mut self, _buf: &mut [u8]) -> rddr_net::Result<usize> {
        Ok(0)
    }
    fn write_all(&mut self, _buf: &[u8]) -> rddr_net::Result<()> {
        Err(rddr_net::NetError::Closed)
    }
    fn shutdown(&mut self) {}
    fn set_read_timeout(&mut self, _timeout: Option<Duration>) {}
    fn peer(&self) -> String {
        "closed".into()
    }
}

/// Reactor observability, exported through the shared proxy registry:
/// worker count, live sessions (total and per worker), ready-queue depth,
/// and a histogram of session states after each step.
pub(crate) struct ReactorTelemetry {
    pub(crate) workers: Arc<Gauge>,
    pub(crate) sessions: Arc<Gauge>,
    pub(crate) worker_sessions: Vec<Arc<Gauge>>,
    pub(crate) ready_depth: Arc<Gauge>,
    pub(crate) session_state: Arc<Histogram>,
}

impl ReactorTelemetry {
    fn new(registry: &Registry, stem: &str, workers: usize) -> Self {
        let t = ReactorTelemetry {
            workers: registry.gauge(&format!("{stem}_reactor_workers")),
            sessions: registry.gauge(&format!("{stem}_reactor_sessions")),
            worker_sessions: (0..workers)
                .map(|i| registry.gauge(&format!("{stem}_reactor_worker{i}_sessions")))
                .collect(),
            ready_depth: registry.gauge(&format!("{stem}_reactor_ready_depth")),
            session_state: registry.histogram(&format!("{stem}_reactor_session_state")),
        };
        t.workers.set(workers as i64);
        t
    }
}

struct WorkerHandle {
    inject: Sender<Box<dyn SessionTask>>,
    wake: rddr_net::Readiness,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// A fixed pool of reactor workers; one per proxy.
///
/// Sessions are submitted round-robin and stay pinned to their worker for
/// life (session state is not `Sync` and never migrates). Dropping the pool
/// stops the workers and tears down any sessions still live.
pub(crate) struct ReactorPool {
    workers: Vec<WorkerHandle>,
    next: AtomicUsize,
    stop: Arc<AtomicBool>,
}

/// The pool size for one proxy: `RDDR_REACTOR_WORKERS` if set, else the
/// machine's available parallelism, floored at 2 (so a single-core box still
/// overlaps in-flight sessions with accept work) and capped at 32.
pub(crate) fn default_workers() -> usize {
    if let Ok(v) = std::env::var("RDDR_REACTOR_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(256);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 32)
}

impl ReactorPool {
    /// Spawns `workers` reactor threads named `rddr-rx-{label}-{i}`.
    pub(crate) fn new(
        label: &str,
        workers: usize,
        telemetry: Option<(&Registry, &str)>,
    ) -> std::io::Result<Self> {
        let workers = workers.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let telemetry =
            telemetry.map(|(reg, stem)| Arc::new(ReactorTelemetry::new(reg, stem, workers)));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let poller = Poller::new();
            let wake = poller.readiness(Token(INJECT_TOKEN));
            let (inject_tx, inject_rx) = unbounded();
            let stop = Arc::clone(&stop);
            let telemetry = telemetry.clone();
            let thread = std::thread::Builder::new()
                .name(format!("rddr-rx-{label}-{i}"))
                .spawn(move || worker_loop(poller, inject_rx, stop, telemetry, i))?;
            handles.push(WorkerHandle {
                inject: inject_tx,
                wake,
                thread: Some(thread),
            });
        }
        Ok(Self {
            workers: handles,
            next: AtomicUsize::new(0),
            stop,
        })
    }

    /// Number of worker threads in the pool.
    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Hands a session to the next worker (round-robin). Returns `false` if
    /// the pool is already stopping.
    pub(crate) fn submit(&self, task: Box<dyn SessionTask>) -> bool {
        if self.stop.load(Ordering::Relaxed) || self.workers.is_empty() {
            return false;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        let Some(w) = self.workers.get(i) else {
            return false;
        };
        if w.inject.send(task).is_err() {
            return false;
        }
        w.wake.wake();
        true
    }
}

impl Drop for ReactorPool {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for w in &self.workers {
            w.wake.wake();
        }
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                // A worker that panicked already poisoned nothing (all state
                // was thread-local); joining is cleanup only.
                // rddr-analyze: allow(error-swallow)
                let _ = t.join();
            }
        }
    }
}

/// One reactor worker: polls for readiness, adopts injected sessions, and
/// advances woken sessions until the pool stops.
///
/// This is a blocking-hot-path sink for `rddr-analyze`: nothing reachable
/// from here may call `sleep`/`read_to_end`-style blocking primitives,
/// because one blocked worker stalls every session it owns.
pub(crate) fn worker_loop(
    poller: Poller,
    inject: Receiver<Box<dyn SessionTask>>,
    stop: Arc<AtomicBool>,
    telemetry: Option<Arc<ReactorTelemetry>>,
    index: usize,
) {
    use std::collections::BTreeMap;
    let mut sessions: BTreeMap<u64, Box<dyn SessionTask>> = BTreeMap::new();
    let mut next_id: u64 = 1;
    let mut events: Vec<Token> = Vec::new();
    let mut slots: Vec<u64> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_SIZE];
    let worker_gauge = telemetry
        .as_ref()
        .and_then(|t| t.worker_sessions.get(index).cloned());
    'run: loop {
        poller.poll(&mut events, None);
        if let Some(t) = &telemetry {
            t.ready_depth.set(events.len() as i64);
        }
        // `poll` delivers tokens ascending and deduplicated, so one
        // session's slots form a consecutive run (and INJECT_TOKEN sorts
        // last) — wakes collapse into one step per woken session without
        // building per-poll maps. Injections are handled first so a
        // brand-new session's immediate readiness (data already buffered at
        // registration) is stepped this round.
        let injected = events.last().is_some_and(|t| t.0 == INJECT_TOKEN);
        if injected {
            events.pop();
        }
        if stop.load(Ordering::Relaxed) {
            break 'run;
        }
        if injected {
            while let Ok(mut task) = inject.try_recv() {
                let id = next_id;
                next_id += 1;
                let mut ctx = Ctx {
                    poller: &poller,
                    session: id,
                    scratch: &mut scratch,
                    woken: &[],
                };
                match task.init(&mut ctx) {
                    Flow::Continue => {
                        sessions.insert(id, task);
                        if let Some(t) = &telemetry {
                            t.sessions.add(1);
                        }
                        if let Some(g) = &worker_gauge {
                            g.add(1);
                        }
                    }
                    Flow::Done => {
                        poller.deregister_matching(|tok| tok >> SLOT_BITS == id);
                        task.teardown();
                    }
                }
            }
        }
        let mut next = 0;
        while let Some(first) = events.get(next) {
            let id = first.0 >> SLOT_BITS;
            slots.clear();
            while let Some(t) = events.get(next) {
                if t.0 >> SLOT_BITS != id {
                    break;
                }
                slots.push(t.0 & SLOT_MASK);
                next += 1;
            }
            let Some(task) = sessions.get_mut(&id) else {
                // A wake for a session already torn down (e.g. a watcher
                // surviving in a peer's stream handle); ignore.
                continue;
            };
            let mut ctx = Ctx {
                poller: &poller,
                session: id,
                scratch: &mut scratch,
                woken: &slots,
            };
            let flow = task.step(&mut ctx);
            if let Some(t) = &telemetry {
                t.session_state.record(task.state_ordinal());
            }
            if flow == Flow::Done {
                poller.deregister_matching(|tok| tok >> SLOT_BITS == id);
                if let Some(mut task) = sessions.remove(&id) {
                    task.teardown();
                }
                if let Some(t) = &telemetry {
                    t.sessions.add(-1);
                }
                if let Some(g) = &worker_gauge {
                    g.add(-1);
                }
            }
        }
    }
    // Pool teardown: sever whatever is still live.
    for (id, mut task) in std::mem::take(&mut sessions) {
        poller.deregister_matching(|tok| tok >> SLOT_BITS == id);
        task.teardown();
        if let Some(t) = &telemetry {
            t.sessions.add(-1);
        }
        if let Some(g) = &worker_gauge {
            g.add(-1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountdownTask {
        remaining: u32,
        done: Arc<AtomicBool>,
        state: u64,
    }

    impl SessionTask for CountdownTask {
        fn init(&mut self, ctx: &mut Ctx<'_>) -> Flow {
            ctx.set_timer(Duration::from_millis(1));
            Flow::Continue
        }
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Flow {
            self.state += 1;
            if self.remaining == 0 {
                return Flow::Done;
            }
            self.remaining -= 1;
            ctx.set_timer(Duration::from_millis(1));
            Flow::Continue
        }
        fn teardown(&mut self) {
            self.done.store(true, Ordering::SeqCst);
        }
        fn state_ordinal(&self) -> u64 {
            self.state
        }
    }

    #[test]
    fn pool_runs_sessions_to_completion() {
        let registry = Registry::new();
        let pool = ReactorPool::new("test", 2, Some((&registry, "t"))).unwrap();
        let flags: Vec<Arc<AtomicBool>> =
            (0..8).map(|_| Arc::new(AtomicBool::new(false))).collect();
        for f in &flags {
            assert!(pool.submit(Box::new(CountdownTask {
                remaining: 3,
                done: Arc::clone(f),
                state: 0,
            })));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline
            && !flags.iter().all(|f| f.load(Ordering::SeqCst))
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst)));
        let metrics = registry.render_prometheus();
        assert!(metrics.contains("t_reactor_workers 2"), "{metrics}");
        drop(pool);
    }

    #[test]
    fn pool_tears_down_live_sessions_on_drop() {
        let done = Arc::new(AtomicBool::new(false));
        let pool = ReactorPool::new("drop", 1, None).unwrap();
        assert!(pool.submit(Box::new(CountdownTask {
            remaining: u32::MAX,
            done: Arc::clone(&done),
            state: 0,
        })));
        std::thread::sleep(Duration::from_millis(30));
        drop(pool);
        assert!(done.load(Ordering::SeqCst), "teardown must run on drop");
    }

    #[test]
    fn default_workers_is_at_least_two() {
        // Even on a single-core box the pool overlaps accept and session
        // work (unless an explicit env override asks for 1).
        if std::env::var("RDDR_REACTOR_WORKERS").is_err() {
            assert!(default_workers() >= 2);
        }
    }
}
