use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rddr_core::{DegradePolicy, NVersionEngine, Protocol, SurvivorPolicy};
use rddr_net::{BoxStream, NetError, Stream};
use rddr_telemetry::{AuditLog, Counter, Gauge, Registry};

/// Builds a fresh protocol module per proxied connection.
///
/// Protocol modules are stateless, but each engine owns its module boxed,
/// so the proxy is configured with a factory rather than a shared instance.
pub type ProtocolFactory = Arc<dyn Fn() -> Box<dyn Protocol> + Send + Sync>;

/// Resolves a protocol-module name from an RDDR configuration file
/// ([`rddr_core::ConfigFile`]) to its factory.
///
/// Known names: `http`, `postgres` (alias `pg`), `json`, `line`, `raw`.
pub fn protocol_factory(name: &str) -> Option<ProtocolFactory> {
    match name.to_ascii_lowercase().as_str() {
        "http" => Some(Arc::new(|| Box::new(rddr_protocols::HttpProtocol::new()))),
        "postgres" | "pg" => Some(Arc::new(|| Box::new(rddr_protocols::PgProtocol::new()))),
        "json" => Some(Arc::new(|| Box::new(rddr_protocols::JsonProtocol::new()))),
        "line" => Some(Arc::new(|| {
            Box::new(rddr_core::protocol::LineProtocol::new())
        })),
        "raw" => Some(Arc::new(|| {
            Box::new(rddr_core::protocol::RawProtocol::new())
        })),
        _ => None,
    }
}

/// Errors produced while starting or running a proxy.
#[derive(Debug)]
pub enum ProxyError {
    /// The proxy could not bind its listen address.
    Bind(NetError),
    /// An instance address could not be dialed at session start.
    InstanceUnreachable {
        /// Index of the unreachable instance.
        instance: usize,
        /// The underlying network error.
        source: NetError,
    },
    /// The engine configuration was inconsistent with the instance list.
    Config(String),
    /// The accept-loop thread could not be spawned.
    Spawn(std::io::Error),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Bind(e) => write!(f, "proxy failed to bind: {e}"),
            ProxyError::InstanceUnreachable { instance, source } => {
                write!(f, "instance {instance} unreachable: {source}")
            }
            ProxyError::Config(s) => write!(f, "proxy misconfigured: {s}"),
            ProxyError::Spawn(e) => write!(f, "proxy failed to spawn accept loop: {e}"),
        }
    }
}

impl std::error::Error for ProxyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProxyError::Bind(e) => Some(e),
            ProxyError::InstanceUnreachable { source, .. } => Some(source),
            ProxyError::Config(_) => None,
            ProxyError::Spawn(e) => Some(e),
        }
    }
}

/// Default audit-log depth when [`ProxyTelemetry::new`] builds one.
const DEFAULT_AUDIT_CAPACITY: usize = 256;

/// The shared observability surface for one protected service.
///
/// Hand the same bundle to the incoming proxy, the outgoing proxy, and an
/// [`rddr_telemetry::AdminServer`]: every session's engine then feeds one
/// registry (scraped at `/metrics`) and one divergence audit log (served at
/// `/divergences`). Cloning shares the underlying registry and log.
#[derive(Clone)]
pub struct ProxyTelemetry {
    /// Metric series for all sessions, keyed under [`ProxyTelemetry::prefix`].
    pub registry: Arc<Registry>,
    /// Ring of divergence incidents across all sessions.
    pub audit: Arc<AuditLog>,
    /// Metric-name prefix, typically the protected service's name.
    pub prefix: String,
}

impl std::fmt::Debug for ProxyTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyTelemetry")
            .field("prefix", &self.prefix)
            .field("audited", &self.audit.len())
            .finish()
    }
}

impl ProxyTelemetry {
    /// A fresh registry plus a default-sized audit log under `prefix`.
    /// Prefixes should be valid Prometheus name stems (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub fn new(prefix: impl Into<String>) -> Self {
        ProxyTelemetry {
            registry: Arc::new(Registry::new()),
            audit: Arc::new(AuditLog::new(DEFAULT_AUDIT_CAPACITY)),
            prefix: prefix.into(),
        }
    }

    /// Wraps existing telemetry objects (e.g. one registry shared by several
    /// services, each with its own prefix).
    pub fn with(registry: Arc<Registry>, audit: Arc<AuditLog>, prefix: impl Into<String>) -> Self {
        ProxyTelemetry {
            registry,
            audit,
            prefix: prefix.into(),
        }
    }
}

/// Live counters shared by all sessions of one proxy.
#[derive(Debug, Default)]
pub struct ProxyStats {
    pub(crate) sessions: AtomicU64,
    pub(crate) exchanges: AtomicU64,
    pub(crate) divergences: AtomicU64,
    pub(crate) severed: AtomicU64,
    pub(crate) throttled: AtomicU64,
    pub(crate) ejected: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    pub(crate) rejoined: AtomicU64,
    pub(crate) pass_through: AtomicU64,
}

/// A point-in-time copy of a proxy's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Client sessions accepted.
    pub sessions: u64,
    /// Exchanges evaluated across all sessions.
    pub exchanges: u64,
    /// Exchanges that diverged.
    pub divergences: u64,
    /// Connections severed by the Respond phase.
    pub severed: u64,
    /// Requests refused by the divergence-signature throttle.
    pub throttled: u64,
    /// Instances ejected from a session after a fault (degraded mode).
    pub ejected: u64,
    /// Instances quarantined after losing a quorum vote.
    pub quarantined: u64,
    /// Previously ejected instances readmitted into a session.
    pub rejoined: u64,
    /// Exchanges answered from a lone survivor without diffing.
    pub pass_through: u64,
}

impl ProxyStats {
    /// Reads the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions: self.sessions.load(Ordering::Relaxed),
            exchanges: self.exchanges.load(Ordering::Relaxed),
            divergences: self.divergences.load(Ordering::Relaxed),
            severed: self.severed.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            ejected: self.ejected.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            rejoined: self.rejoined.load(Ordering::Relaxed),
            pass_through: self.pass_through.load(Ordering::Relaxed),
        }
    }
}

/// The degraded-mode metric series a proxy maintains alongside its latency
/// histograms, under `{stem}_*`.
pub(crate) struct DegradedTelemetry {
    /// Instances currently ejected across all live sessions (gauge).
    pub(crate) degraded_depth: Arc<Gauge>,
    /// Instance ejections after a fault (dial failure, reset, straggling).
    pub(crate) ejects: Arc<Counter>,
    /// Ejected instances readmitted after a successful warm-up probe.
    pub(crate) rejoins: Arc<Counter>,
    /// Instances quarantined after losing a quorum vote.
    pub(crate) quarantines: Arc<Counter>,
    /// Exchanges answered from a lone survivor without diffing.
    pub(crate) pass_through: Arc<Counter>,
}

impl DegradedTelemetry {
    /// Registers the series under `stem` (e.g. `myservice_in`).
    pub(crate) fn new(registry: &Registry, stem: &str) -> Self {
        DegradedTelemetry {
            degraded_depth: registry.gauge(&format!("{stem}_degraded_depth")),
            ejects: registry.counter(&format!("{stem}_ejects_total")),
            rejoins: registry.counter(&format!("{stem}_rejoins_total")),
            quarantines: registry.counter(&format!("{stem}_quarantines_total")),
            pass_through: registry.counter(&format!("{stem}_pass_through_total")),
        }
    }
}

/// Per-session connection state for the N instance streams.
///
/// A `None` writer slot means the instance is currently ejected from the
/// session.
pub(crate) struct Roster {
    pub(crate) writers: Vec<Option<BoxStream>>,
}

impl Roster {
    /// An empty roster with `n` unfilled slots.
    pub(crate) fn new(n: usize) -> Self {
        Roster {
            writers: (0..n).map(|_| None).collect(),
        }
    }

    /// Closes every remaining connection (session teardown).
    pub(crate) fn shutdown_all(&mut self) {
        for w in self.writers.iter_mut().flatten() {
            w.shutdown();
        }
    }
}

/// Removes instance `i` from the session: the engine stops waiting for it
/// and its connection is shut down. Returns `false` if it was already out.
///
/// Callers pick the counter (eject vs quarantine) via the wrappers below;
/// this records only the shared degraded-depth transition.
pub(crate) fn remove_instance(
    i: usize,
    engine: &mut NVersionEngine,
    roster: &mut Roster,
    degraded: Option<&DegradedTelemetry>,
) -> bool {
    if !engine.is_active(i) {
        return false;
    }
    engine.eject(i);
    if let Some(slot) = roster.writers.get_mut(i) {
        if let Some(conn) = slot.as_mut() {
            conn.shutdown();
        }
        *slot = None;
    }
    if let Some(t) = degraded {
        t.degraded_depth.add(1);
    }
    true
}

/// Ejects a *faulted* instance (failed dial, reset, straggling past its
/// deadline) and counts the transition.
pub(crate) fn eject_instance(
    i: usize,
    engine: &mut NVersionEngine,
    roster: &mut Roster,
    stats: &ProxyStats,
    degraded: Option<&DegradedTelemetry>,
) {
    if remove_instance(i, engine, roster, degraded) {
        stats.ejected.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = degraded {
            t.ejects.inc();
        }
    }
}

/// Ejects an *outvoted* instance (quorum voting picked another group) and
/// counts the quarantine.
pub(crate) fn quarantine_instance(
    i: usize,
    engine: &mut NVersionEngine,
    roster: &mut Roster,
    stats: &ProxyStats,
    degraded: Option<&DegradedTelemetry>,
) {
    if remove_instance(i, engine, roster, degraded) {
        stats.quarantined.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = degraded {
            t.quarantines.inc();
        }
    }
}

/// Routes an instance fault through the degrade policy: eject it (degraded
/// mode) or mark it failed so the diff treats the missing response as a
/// divergence (the paper's sever-on-fault behaviour).
pub(crate) fn fault_instance(
    i: usize,
    degrade: DegradePolicy,
    engine: &mut NVersionEngine,
    roster: &mut Roster,
    failed: &mut [bool],
    stats: &ProxyStats,
    degraded: Option<&DegradedTelemetry>,
) {
    if degrade.ejects() {
        eject_instance(i, engine, roster, stats, degraded);
    } else {
        if let Some(f) = failed.get_mut(i) {
            *f = true;
        }
        engine.mark_failed(i);
    }
}

/// Whether `active` live instances are too few to keep serving under
/// `degrade`: zero always is; a lone survivor is unless the policy says
/// pass-through. (Under [`DegradePolicy::Sever`] nothing is ever ejected,
/// so the count never drops below N in the first place.)
pub(crate) fn below_survivor_floor(active: usize, degrade: DegradePolicy) -> bool {
    match active {
        0 => true,
        1 => degrade.survivor() != Some(SurvivorPolicy::PassThrough),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_snapshot_reads_counters() {
        let stats = ProxyStats::default();
        stats.sessions.store(2, Ordering::Relaxed);
        stats.divergences.store(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.sessions, 2);
        assert_eq!(snap.divergences, 1);
        assert_eq!(snap.exchanges, 0);
    }

    #[test]
    fn proxy_error_display() {
        let e = ProxyError::InstanceUnreachable {
            instance: 1,
            source: NetError::ConnectionRefused("pg:5432".into()),
        };
        assert!(e.to_string().contains("instance 1"));
    }
}
