use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use rddr_core::{DegradePolicy, NVersionEngine, Protocol, SurvivorPolicy};
use rddr_net::{BoxStream, NetError, Stream};
use rddr_telemetry::{AuditLog, Counter, Gauge, Registry};

/// Builds a fresh protocol module per proxied connection.
///
/// Protocol modules are stateless, but each engine owns its module boxed,
/// so the proxy is configured with a factory rather than a shared instance.
pub type ProtocolFactory = Arc<dyn Fn() -> Box<dyn Protocol> + Send + Sync>;

/// Resolves a protocol-module name from an RDDR configuration file
/// ([`rddr_core::ConfigFile`]) to its factory.
///
/// Known names: `http`, `postgres` (alias `pg`), `json`, `line`, `raw`.
pub fn protocol_factory(name: &str) -> Option<ProtocolFactory> {
    match name.to_ascii_lowercase().as_str() {
        "http" => Some(Arc::new(|| Box::new(rddr_protocols::HttpProtocol::new()))),
        "postgres" | "pg" => Some(Arc::new(|| Box::new(rddr_protocols::PgProtocol::new()))),
        "json" => Some(Arc::new(|| Box::new(rddr_protocols::JsonProtocol::new()))),
        "line" => Some(Arc::new(|| {
            Box::new(rddr_core::protocol::LineProtocol::new())
        })),
        "raw" => Some(Arc::new(|| {
            Box::new(rddr_core::protocol::RawProtocol::new())
        })),
        _ => None,
    }
}

/// Errors produced while starting or running a proxy.
#[derive(Debug)]
pub enum ProxyError {
    /// The proxy could not bind its listen address.
    Bind(NetError),
    /// An instance address could not be dialed at session start.
    InstanceUnreachable {
        /// Index of the unreachable instance.
        instance: usize,
        /// The underlying network error.
        source: NetError,
    },
    /// The engine configuration was inconsistent with the instance list.
    Config(String),
    /// The accept-loop thread could not be spawned.
    Spawn(std::io::Error),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Bind(e) => write!(f, "proxy failed to bind: {e}"),
            ProxyError::InstanceUnreachable { instance, source } => {
                write!(f, "instance {instance} unreachable: {source}")
            }
            ProxyError::Config(s) => write!(f, "proxy misconfigured: {s}"),
            ProxyError::Spawn(e) => write!(f, "proxy failed to spawn accept loop: {e}"),
        }
    }
}

impl std::error::Error for ProxyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProxyError::Bind(e) => Some(e),
            ProxyError::InstanceUnreachable { source, .. } => Some(source),
            ProxyError::Config(_) => None,
            ProxyError::Spawn(e) => Some(e),
        }
    }
}

/// Default audit-log depth when [`ProxyTelemetry::new`] builds one.
const DEFAULT_AUDIT_CAPACITY: usize = 256;

/// The shared observability surface for one protected service.
///
/// Hand the same bundle to the incoming proxy, the outgoing proxy, and an
/// [`rddr_telemetry::AdminServer`]: every session's engine then feeds one
/// registry (scraped at `/metrics`) and one divergence audit log (served at
/// `/divergences`). Cloning shares the underlying registry and log.
#[derive(Clone)]
pub struct ProxyTelemetry {
    /// Metric series for all sessions, keyed under [`ProxyTelemetry::prefix`].
    pub registry: Arc<Registry>,
    /// Ring of divergence incidents across all sessions.
    pub audit: Arc<AuditLog>,
    /// Metric-name prefix, typically the protected service's name.
    pub prefix: String,
}

impl std::fmt::Debug for ProxyTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyTelemetry")
            .field("prefix", &self.prefix)
            .field("audited", &self.audit.len())
            .finish()
    }
}

impl ProxyTelemetry {
    /// A fresh registry plus a default-sized audit log under `prefix`.
    /// Prefixes should be valid Prometheus name stems (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub fn new(prefix: impl Into<String>) -> Self {
        ProxyTelemetry {
            registry: Arc::new(Registry::new()),
            audit: Arc::new(AuditLog::new(DEFAULT_AUDIT_CAPACITY)),
            prefix: prefix.into(),
        }
    }

    /// Wraps existing telemetry objects (e.g. one registry shared by several
    /// services, each with its own prefix).
    pub fn with(registry: Arc<Registry>, audit: Arc<AuditLog>, prefix: impl Into<String>) -> Self {
        ProxyTelemetry {
            registry,
            audit,
            prefix: prefix.into(),
        }
    }
}

/// Live counters shared by all sessions of one proxy.
#[derive(Debug, Default)]
pub struct ProxyStats {
    pub(crate) sessions: AtomicU64,
    pub(crate) exchanges: AtomicU64,
    pub(crate) divergences: AtomicU64,
    pub(crate) severed: AtomicU64,
    pub(crate) throttled: AtomicU64,
    pub(crate) ejected: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    pub(crate) rejoined: AtomicU64,
    pub(crate) pass_through: AtomicU64,
}

/// A point-in-time copy of a proxy's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Client sessions accepted.
    pub sessions: u64,
    /// Exchanges evaluated across all sessions.
    pub exchanges: u64,
    /// Exchanges that diverged.
    pub divergences: u64,
    /// Connections severed by the Respond phase.
    pub severed: u64,
    /// Requests refused by the divergence-signature throttle.
    pub throttled: u64,
    /// Instances ejected from a session after a fault (degraded mode).
    pub ejected: u64,
    /// Instances quarantined after losing a quorum vote.
    pub quarantined: u64,
    /// Previously ejected instances readmitted into a session.
    pub rejoined: u64,
    /// Exchanges answered from a lone survivor without diffing.
    pub pass_through: u64,
}

impl ProxyStats {
    /// Reads the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions: self.sessions.load(Ordering::Relaxed),
            exchanges: self.exchanges.load(Ordering::Relaxed),
            divergences: self.divergences.load(Ordering::Relaxed),
            severed: self.severed.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            ejected: self.ejected.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            rejoined: self.rejoined.load(Ordering::Relaxed),
            pass_through: self.pass_through.load(Ordering::Relaxed),
        }
    }
}

/// The degraded-mode metric series a proxy maintains alongside its latency
/// histograms, under `{stem}_*`.
pub(crate) struct DegradedTelemetry {
    /// Instances currently ejected across all live sessions (gauge).
    pub(crate) degraded_depth: Arc<Gauge>,
    /// Instance ejections after a fault (dial failure, reset, straggling).
    pub(crate) ejects: Arc<Counter>,
    /// Ejected instances readmitted after a successful warm-up probe.
    pub(crate) rejoins: Arc<Counter>,
    /// Instances quarantined after losing a quorum vote.
    pub(crate) quarantines: Arc<Counter>,
    /// Exchanges answered from a lone survivor without diffing.
    pub(crate) pass_through: Arc<Counter>,
}

impl DegradedTelemetry {
    /// Registers the series under `stem` (e.g. `myservice_in`).
    pub(crate) fn new(registry: &Registry, stem: &str) -> Self {
        DegradedTelemetry {
            degraded_depth: registry.gauge(&format!("{stem}_degraded_depth")),
            ejects: registry.counter(&format!("{stem}_ejects_total")),
            rejoins: registry.counter(&format!("{stem}_rejoins_total")),
            quarantines: registry.counter(&format!("{stem}_quarantines_total")),
            pass_through: registry.counter(&format!("{stem}_pass_through_total")),
        }
    }
}

/// Per-session connection state for the N instance streams.
///
/// A `None` writer slot means the instance is currently ejected from the
/// session. `epochs[i]` counts connection generations for instance `i`: it
/// is bumped on every ejection so events still draining from the previous
/// connection's reader thread can be discarded by epoch mismatch.
pub(crate) struct Roster {
    pub(crate) writers: Vec<Option<BoxStream>>,
    pub(crate) epochs: Vec<u64>,
}

impl Roster {
    /// An empty roster with `n` unfilled slots (epoch 0 each).
    pub(crate) fn new(n: usize) -> Self {
        Roster {
            writers: (0..n).map(|_| None).collect(),
            epochs: vec![0; n],
        }
    }

    /// Whether an event stamped `epoch` comes from instance `i`'s *current*
    /// connection generation.
    pub(crate) fn current(&self, i: usize, epoch: u64) -> bool {
        self.epochs.get(i).copied() == Some(epoch)
    }

    /// The epoch a freshly spawned reader for instance `i` should stamp.
    pub(crate) fn epoch(&self, i: usize) -> u64 {
        self.epochs.get(i).copied().unwrap_or(0)
    }

    /// Closes every remaining connection (session teardown).
    pub(crate) fn shutdown_all(&mut self) {
        for w in self.writers.iter_mut().flatten() {
            w.shutdown();
        }
    }
}

/// Removes instance `i` from the session: the engine stops waiting for it,
/// its connection is shut down, and its epoch is bumped so stale reader
/// events are discarded from now on. Returns `false` if it was already out.
///
/// Callers pick the counter (eject vs quarantine) via the wrappers below;
/// this records only the shared degraded-depth transition.
pub(crate) fn remove_instance(
    i: usize,
    engine: &mut NVersionEngine,
    roster: &mut Roster,
    degraded: Option<&DegradedTelemetry>,
) -> bool {
    if !engine.is_active(i) {
        return false;
    }
    engine.eject(i);
    if let Some(slot) = roster.writers.get_mut(i) {
        if let Some(conn) = slot.as_mut() {
            conn.shutdown();
        }
        *slot = None;
    }
    if let Some(e) = roster.epochs.get_mut(i) {
        *e += 1;
    }
    if let Some(t) = degraded {
        t.degraded_depth.add(1);
    }
    true
}

/// Ejects a *faulted* instance (failed dial, reset, straggling past its
/// deadline) and counts the transition.
pub(crate) fn eject_instance(
    i: usize,
    engine: &mut NVersionEngine,
    roster: &mut Roster,
    stats: &ProxyStats,
    degraded: Option<&DegradedTelemetry>,
) {
    if remove_instance(i, engine, roster, degraded) {
        stats.ejected.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = degraded {
            t.ejects.inc();
        }
    }
}

/// Ejects an *outvoted* instance (quorum voting picked another group) and
/// counts the quarantine.
pub(crate) fn quarantine_instance(
    i: usize,
    engine: &mut NVersionEngine,
    roster: &mut Roster,
    stats: &ProxyStats,
    degraded: Option<&DegradedTelemetry>,
) {
    if remove_instance(i, engine, roster, degraded) {
        stats.quarantined.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = degraded {
            t.quarantines.inc();
        }
    }
}

/// Routes an instance fault through the degrade policy: eject it (degraded
/// mode) or mark it failed so the diff treats the missing response as a
/// divergence (the paper's sever-on-fault behaviour).
pub(crate) fn fault_instance(
    i: usize,
    degrade: DegradePolicy,
    engine: &mut NVersionEngine,
    roster: &mut Roster,
    failed: &mut [bool],
    stats: &ProxyStats,
    degraded: Option<&DegradedTelemetry>,
) {
    if degrade.ejects() {
        eject_instance(i, engine, roster, stats, degraded);
    } else {
        if let Some(f) = failed.get_mut(i) {
            *f = true;
        }
        engine.mark_failed(i);
    }
}

/// Whether `active` live instances are too few to keep serving under
/// `degrade`: zero always is; a lone survivor is unless the policy says
/// pass-through. (Under [`DegradePolicy::Sever`] nothing is ever ejected,
/// so the count never drops below N in the first place.)
pub(crate) fn below_survivor_floor(active: usize, degrade: DegradePolicy) -> bool {
    match active {
        0 => true,
        1 => degrade.survivor() != Some(SurvivorPolicy::PassThrough),
        _ => false,
    }
}

/// Reader chunk size: one socket read's worth of bytes.
const CHUNK_SIZE: usize = 16 * 1024;

/// Buffers a reader's pool retains for reuse. Beyond this the session loop
/// is holding chunks longer than the reader produces them; extra buffers
/// are simply freed rather than stockpiled.
const POOL_CAP: usize = 8;

/// A per-reader free list of reusable read buffers. In steady state each
/// [`InstanceEvent::Data`] borrows a recycled buffer instead of allocating
/// a fresh `Vec` per socket read; the buffer returns to the pool when the
/// session loop drops the [`Chunk`].
pub(crate) struct ChunkPool {
    free: Mutex<Vec<Vec<u8>>>,
}

impl ChunkPool {
    pub(crate) fn new() -> Self {
        ChunkPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// A buffer of length [`CHUNK_SIZE`], recycled when available.
    pub(crate) fn acquire(&self) -> Vec<u8> {
        let mut buf = self.free.lock().pop().unwrap_or_default();
        buf.resize(CHUNK_SIZE, 0);
        buf
    }
}

/// One socket read's bytes, backed by a pooled buffer. Dereferences to the
/// `len` bytes actually read; dropping it returns the buffer to its pool.
pub(crate) struct Chunk {
    data: Vec<u8>,
    len: usize,
    pool: Arc<ChunkPool>,
}

impl Chunk {
    pub(crate) fn new(data: Vec<u8>, len: usize, pool: Arc<ChunkPool>) -> Self {
        Chunk { data, len, pool }
    }
}

impl Deref for Chunk {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.data.get(..self.len).unwrap_or(&[])
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        let mut free = self.pool.free.lock();
        if free.len() < POOL_CAP {
            free.push(std::mem::take(&mut self.data));
        }
    }
}

impl fmt::Debug for Chunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chunk").field("len", &self.len).finish()
    }
}

/// An event from one instance-connection reader thread. The epoch stamps
/// which connection generation produced the event: after an instance is
/// ejected and rejoined, its old reader thread may still drain a few stale
/// events, which the session loop discards by epoch mismatch.
#[derive(Debug)]
pub(crate) enum InstanceEvent {
    /// Bytes arrived from the instance.
    Data(usize, u64, Chunk),
    /// The instance closed its connection (or errored).
    Closed(usize, u64),
}

/// Spawns a reader thread pumping `conn` into `events`.
///
/// The thread exits on EOF, error, or when the receiver is dropped.
///
/// # Errors
///
/// Returns the OS error when the thread cannot be spawned (resource
/// exhaustion); the caller severs the session instead of panicking.
pub(crate) fn spawn_reader(
    index: usize,
    epoch: u64,
    mut conn: BoxStream,
    events: Sender<InstanceEvent>,
    label: &str,
) -> std::io::Result<()> {
    let name = format!("rddr-reader-{label}-{index}");
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let pool = Arc::new(ChunkPool::new());
            loop {
                // Read straight into a pooled buffer; the session loop drops
                // the Chunk after push_response and the buffer comes back.
                let mut buf = pool.acquire();
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => {
                        // Send failure means the session already tore down the
                        // receiver; the pump exits either way.
                        // rddr-analyze: allow(error-swallow)
                        let _ = events.send(InstanceEvent::Closed(index, epoch));
                        return;
                    }
                    Ok(n) => {
                        let chunk = Chunk::new(buf, n.min(CHUNK_SIZE), Arc::clone(&pool));
                        if events
                            .send(InstanceEvent::Data(index, epoch, chunk))
                            .is_err()
                        {
                            return;
                        }
                    }
                }
            }
        })
        .map(|_handle| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use rddr_net::duplex_pair;

    #[test]
    fn stats_snapshot_reads_counters() {
        let stats = ProxyStats::default();
        stats.sessions.store(2, Ordering::Relaxed);
        stats.divergences.store(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.sessions, 2);
        assert_eq!(snap.divergences, 1);
        assert_eq!(snap.exchanges, 0);
    }

    #[test]
    fn chunk_pool_recycles_buffers() {
        let pool = Arc::new(ChunkPool::new());
        let buf = pool.acquire();
        assert_eq!(buf.len(), CHUNK_SIZE);
        let ptr = buf.as_ptr();
        let chunk = Chunk::new(buf, 3, Arc::clone(&pool));
        assert_eq!(chunk.len(), 3, "chunk derefs to the bytes actually read");
        drop(chunk);
        let again = pool.acquire();
        assert_eq!(again.as_ptr(), ptr, "dropped chunk's buffer is reused");
    }

    #[test]
    fn reader_pumps_data_then_close() {
        let (mut tx_side, rx_side) = duplex_pair("writer", "reader");
        let (events_tx, events_rx) = unbounded();
        spawn_reader(3, 7, Box::new(rx_side), events_tx, "test").unwrap();
        tx_side.write_all(b"abc").unwrap();
        match events_rx.recv().unwrap() {
            InstanceEvent::Data(3, 7, data) => assert_eq!(&data[..], b"abc"),
            other => panic!("unexpected event: {other:?}"),
        }
        tx_side.shutdown();
        assert!(matches!(
            events_rx.recv().unwrap(),
            InstanceEvent::Closed(3, 7)
        ));
    }

    #[test]
    fn proxy_error_display() {
        let e = ProxyError::InstanceUnreachable {
            instance: 1,
            source: NetError::ConnectionRefused("pg:5432".into()),
        };
        assert!(e.to_string().contains("instance 1"));
    }
}
