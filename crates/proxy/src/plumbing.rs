use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use rddr_core::Protocol;
use rddr_net::{BoxStream, NetError, Stream};
use rddr_telemetry::{AuditLog, Registry};

/// Builds a fresh protocol module per proxied connection.
///
/// Protocol modules are stateless, but each engine owns its module boxed,
/// so the proxy is configured with a factory rather than a shared instance.
pub type ProtocolFactory = Arc<dyn Fn() -> Box<dyn Protocol> + Send + Sync>;

/// Resolves a protocol-module name from an RDDR configuration file
/// ([`rddr_core::ConfigFile`]) to its factory.
///
/// Known names: `http`, `postgres` (alias `pg`), `json`, `line`, `raw`.
pub fn protocol_factory(name: &str) -> Option<ProtocolFactory> {
    match name.to_ascii_lowercase().as_str() {
        "http" => Some(Arc::new(|| Box::new(rddr_protocols::HttpProtocol::new()))),
        "postgres" | "pg" => Some(Arc::new(|| Box::new(rddr_protocols::PgProtocol::new()))),
        "json" => Some(Arc::new(|| Box::new(rddr_protocols::JsonProtocol::new()))),
        "line" => Some(Arc::new(|| {
            Box::new(rddr_core::protocol::LineProtocol::new())
        })),
        "raw" => Some(Arc::new(|| {
            Box::new(rddr_core::protocol::RawProtocol::new())
        })),
        _ => None,
    }
}

/// Errors produced while starting or running a proxy.
#[derive(Debug)]
pub enum ProxyError {
    /// The proxy could not bind its listen address.
    Bind(NetError),
    /// An instance address could not be dialed at session start.
    InstanceUnreachable {
        /// Index of the unreachable instance.
        instance: usize,
        /// The underlying network error.
        source: NetError,
    },
    /// The engine configuration was inconsistent with the instance list.
    Config(String),
    /// The accept-loop thread could not be spawned.
    Spawn(std::io::Error),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Bind(e) => write!(f, "proxy failed to bind: {e}"),
            ProxyError::InstanceUnreachable { instance, source } => {
                write!(f, "instance {instance} unreachable: {source}")
            }
            ProxyError::Config(s) => write!(f, "proxy misconfigured: {s}"),
            ProxyError::Spawn(e) => write!(f, "proxy failed to spawn accept loop: {e}"),
        }
    }
}

impl std::error::Error for ProxyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProxyError::Bind(e) => Some(e),
            ProxyError::InstanceUnreachable { source, .. } => Some(source),
            ProxyError::Config(_) => None,
            ProxyError::Spawn(e) => Some(e),
        }
    }
}

/// Default audit-log depth when [`ProxyTelemetry::new`] builds one.
const DEFAULT_AUDIT_CAPACITY: usize = 256;

/// The shared observability surface for one protected service.
///
/// Hand the same bundle to the incoming proxy, the outgoing proxy, and an
/// [`rddr_telemetry::AdminServer`]: every session's engine then feeds one
/// registry (scraped at `/metrics`) and one divergence audit log (served at
/// `/divergences`). Cloning shares the underlying registry and log.
#[derive(Clone)]
pub struct ProxyTelemetry {
    /// Metric series for all sessions, keyed under [`ProxyTelemetry::prefix`].
    pub registry: Arc<Registry>,
    /// Ring of divergence incidents across all sessions.
    pub audit: Arc<AuditLog>,
    /// Metric-name prefix, typically the protected service's name.
    pub prefix: String,
}

impl std::fmt::Debug for ProxyTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyTelemetry")
            .field("prefix", &self.prefix)
            .field("audited", &self.audit.len())
            .finish()
    }
}

impl ProxyTelemetry {
    /// A fresh registry plus a default-sized audit log under `prefix`.
    /// Prefixes should be valid Prometheus name stems (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub fn new(prefix: impl Into<String>) -> Self {
        ProxyTelemetry {
            registry: Arc::new(Registry::new()),
            audit: Arc::new(AuditLog::new(DEFAULT_AUDIT_CAPACITY)),
            prefix: prefix.into(),
        }
    }

    /// Wraps existing telemetry objects (e.g. one registry shared by several
    /// services, each with its own prefix).
    pub fn with(registry: Arc<Registry>, audit: Arc<AuditLog>, prefix: impl Into<String>) -> Self {
        ProxyTelemetry {
            registry,
            audit,
            prefix: prefix.into(),
        }
    }
}

/// Live counters shared by all sessions of one proxy.
#[derive(Debug, Default)]
pub struct ProxyStats {
    pub(crate) sessions: AtomicU64,
    pub(crate) exchanges: AtomicU64,
    pub(crate) divergences: AtomicU64,
    pub(crate) severed: AtomicU64,
    pub(crate) throttled: AtomicU64,
}

/// A point-in-time copy of a proxy's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Client sessions accepted.
    pub sessions: u64,
    /// Exchanges evaluated across all sessions.
    pub exchanges: u64,
    /// Exchanges that diverged.
    pub divergences: u64,
    /// Connections severed by the Respond phase.
    pub severed: u64,
    /// Requests refused by the divergence-signature throttle.
    pub throttled: u64,
}

impl ProxyStats {
    /// Reads the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions: self.sessions.load(Ordering::Relaxed),
            exchanges: self.exchanges.load(Ordering::Relaxed),
            divergences: self.divergences.load(Ordering::Relaxed),
            severed: self.severed.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
        }
    }
}

/// An event from one instance-connection reader thread.
#[derive(Debug)]
pub(crate) enum InstanceEvent {
    /// Bytes arrived from the instance.
    Data(usize, Vec<u8>),
    /// The instance closed its connection (or errored).
    Closed(usize),
}

/// Spawns a reader thread pumping `conn` into `events`.
///
/// The thread exits on EOF, error, or when the receiver is dropped.
///
/// # Errors
///
/// Returns the OS error when the thread cannot be spawned (resource
/// exhaustion); the caller severs the session instead of panicking.
pub(crate) fn spawn_reader(
    index: usize,
    mut conn: BoxStream,
    events: Sender<InstanceEvent>,
    label: &str,
) -> std::io::Result<()> {
    let name = format!("rddr-reader-{label}-{index}");
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let mut buf = [0u8; 16 * 1024];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => {
                        let _ = events.send(InstanceEvent::Closed(index));
                        return;
                    }
                    Ok(n) => {
                        // Reads are clamped to the buffer length by the
                        // Stream contract. rddr-analyze: allow(panic-path)
                        if events
                            .send(InstanceEvent::Data(index, buf[..n].to_vec()))
                            .is_err()
                        {
                            return;
                        }
                    }
                }
            }
        })
        .map(|_handle| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use rddr_net::duplex_pair;

    #[test]
    fn stats_snapshot_reads_counters() {
        let stats = ProxyStats::default();
        stats.sessions.store(2, Ordering::Relaxed);
        stats.divergences.store(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.sessions, 2);
        assert_eq!(snap.divergences, 1);
        assert_eq!(snap.exchanges, 0);
    }

    #[test]
    fn reader_pumps_data_then_close() {
        let (mut tx_side, rx_side) = duplex_pair("writer", "reader");
        let (events_tx, events_rx) = unbounded();
        spawn_reader(3, Box::new(rx_side), events_tx, "test").unwrap();
        tx_side.write_all(b"abc").unwrap();
        match events_rx.recv().unwrap() {
            InstanceEvent::Data(3, data) => assert_eq!(data, b"abc"),
            other => panic!("unexpected event: {other:?}"),
        }
        tx_side.shutdown();
        assert!(matches!(
            events_rx.recv().unwrap(),
            InstanceEvent::Closed(3)
        ));
    }

    #[test]
    fn proxy_error_display() {
        let e = ProxyError::InstanceUnreachable {
            instance: 1,
            source: NetError::ConnectionRefused("pg:5432".into()),
        };
        assert!(e.to_string().contains("instance 1"));
    }
}
