//! One-call N-versioning of a service on a cluster: start the N diverse
//! instances and splice an [`IncomingProxy`] in front of them — the
//! "straightforward implementation path for N-versioned systems" the paper
//! promises for container-orchestration platforms.

use std::sync::Arc;

use rddr_core::EngineConfig;
use rddr_net::ServiceAddr;
use rddr_orchestra::{Cluster, ContainerHandle, Image, Service};

use crate::{IncomingProxy, ProtocolFactory, ProxyError, ProxyTelemetry, Result};

/// One diverse variant of the protected microservice.
pub struct Variant {
    /// Image reference (the tag is how version diversity is expressed).
    pub image: Image,
    /// The service implementation this variant runs.
    pub service: Arc<dyn Service>,
}

impl std::fmt::Debug for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Variant")
            .field("image", &self.image)
            .finish()
    }
}

impl Variant {
    /// Creates a variant.
    pub fn new(image: Image, service: Arc<dyn Service>) -> Self {
        Self { image, service }
    }
}

/// A running N-versioned service: the instances plus their proxy.
///
/// Dropping the handle stops the proxy and all instances.
pub struct NVersionedService {
    /// The address clients connect to (the proxy's listen address).
    pub addr: ServiceAddr,
    /// The instance containers.
    pub containers: Vec<ContainerHandle>,
    /// The RDDR incoming proxy.
    pub proxy: IncomingProxy,
}

impl std::fmt::Debug for NVersionedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NVersionedService")
            .field("addr", &self.addr)
            .field("instances", &self.containers.len())
            .finish()
    }
}

/// Deploys `variants` as an N-versioned service on `cluster`.
///
/// Instances are named `{name}-{i}` and bound on `entry.port() + 1 + i`;
/// the proxy listens at `entry` itself, so existing clients keep their
/// address — the paper's "minimal code changes" property.
///
/// # Errors
///
/// Returns [`ProxyError::Config`] if the config's N differs from the number
/// of variants, or a bind/start error from the orchestration layer.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rddr_core::EngineConfig;
/// use rddr_net::{Network, ServiceAddr};
/// use rddr_orchestra::{Cluster, Image};
/// use rddr_proxy::deploy::{n_version, Variant};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = Cluster::new(4);
/// let echo = |tag: &str| {
///     Variant::new(
///         Image::new("echo", tag),
///         Arc::new(rddr_orchestra::FnService::new("echo", |mut conn, _ctx| {
///             use rddr_net::Stream;
///             let mut buf = [0u8; 64];
///             while let Ok(n) = conn.read(&mut buf) {
///                 if n == 0 || conn.write_all(&buf[..n]).is_err() { break; }
///             }
///         })),
///     )
/// };
/// let service = n_version(
///     &cluster,
///     "echo",
///     &ServiceAddr::new("echo", 7),
///     vec![echo("v1"), echo("v2")],
///     EngineConfig::builder(2).build()?,
///     Arc::new(|| Box::new(rddr_core::protocol::LineProtocol::new())),
/// )?;
/// use rddr_net::Stream;
/// let mut conn = cluster.net().dial(&service.addr)?;
/// conn.write_all(b"ping\n")?;
/// let mut reply = [0u8; 5];
/// conn.read_exact(&mut reply)?;
/// assert_eq!(&reply, b"ping\n");
/// # Ok(())
/// # }
/// ```
pub fn n_version(
    cluster: &Cluster,
    name: &str,
    entry: &ServiceAddr,
    variants: Vec<Variant>,
    config: EngineConfig,
    protocol: ProtocolFactory,
) -> Result<NVersionedService> {
    deploy(cluster, name, entry, variants, config, protocol, None)
}

/// Like [`n_version`], but the deployment feeds the given observability
/// bundle: every exchange updates counters and latency histograms in
/// `telemetry.registry` (series prefixed `{prefix}_in_*`), and divergences
/// are appended to `telemetry.audit`. Serve both with an
/// [`rddr_telemetry::AdminServer`] to get live `/metrics` and
/// `/divergences` endpoints for the protected service.
pub fn n_version_with_telemetry(
    cluster: &Cluster,
    name: &str,
    entry: &ServiceAddr,
    variants: Vec<Variant>,
    config: EngineConfig,
    protocol: ProtocolFactory,
    telemetry: ProxyTelemetry,
) -> Result<NVersionedService> {
    deploy(
        cluster,
        name,
        entry,
        variants,
        config,
        protocol,
        Some(telemetry),
    )
}

fn deploy(
    cluster: &Cluster,
    name: &str,
    entry: &ServiceAddr,
    variants: Vec<Variant>,
    config: EngineConfig,
    protocol: ProtocolFactory,
    telemetry: Option<ProxyTelemetry>,
) -> Result<NVersionedService> {
    if variants.len() != config.instances() {
        return Err(ProxyError::Config(format!(
            "config expects {} instances but {} variants were given",
            config.instances(),
            variants.len()
        )));
    }
    let mut containers = Vec::with_capacity(variants.len());
    let mut instance_addrs = Vec::with_capacity(variants.len());
    for (i, variant) in variants.into_iter().enumerate() {
        let addr = entry.with_port(entry.port() + 1 + i as u16);
        containers.push(
            cluster
                .run_container(format!("{name}-{i}"), variant.image, &addr, variant.service)
                .map_err(|e| ProxyError::Config(format!("instance {i} failed: {e}")))?,
        );
        instance_addrs.push(addr);
    }
    let proxy = IncomingProxy::start_with_telemetry(
        Arc::new(cluster.net()),
        entry,
        instance_addrs,
        config,
        protocol,
        telemetry,
    )?;
    Ok(NVersionedService {
        addr: entry.clone(),
        containers,
        proxy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rddr_core::protocol::LineProtocol;
    use rddr_net::{Network, Stream};
    use rddr_orchestra::FnService;

    fn suffix_echo(suffix: &'static str) -> Arc<dyn Service> {
        Arc::new(FnService::new("echo", move |mut conn, _ctx| {
            let mut buf = Vec::new();
            let mut chunk = [0u8; 256];
            loop {
                match conn.read(&mut chunk) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                }
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let mut reply = line[..line.len() - 1].to_vec();
                    reply.extend_from_slice(suffix.as_bytes());
                    reply.push(b'\n');
                    if conn.write_all(&reply).is_err() {
                        return;
                    }
                }
            }
        }))
    }

    fn line() -> ProtocolFactory {
        Arc::new(|| Box::new(LineProtocol::new()))
    }

    #[test]
    fn n_version_deploys_and_serves() {
        let cluster = Cluster::new(4);
        let service = n_version(
            &cluster,
            "search",
            &ServiceAddr::new("search", 8080),
            vec![
                Variant::new(Image::new("search", "v1"), suffix_echo("")),
                Variant::new(Image::new("search", "v2"), suffix_echo("")),
                Variant::new(Image::new("search", "v3"), suffix_echo("")),
            ],
            EngineConfig::builder(3).build().unwrap(),
            line(),
        )
        .unwrap();
        assert_eq!(service.containers.len(), 3);
        assert_eq!(service.containers[1].name(), "search-1");
        let mut conn = cluster.net().dial(&service.addr).unwrap();
        conn.write_all(b"query\n").unwrap();
        let mut reply = [0u8; 6];
        conn.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"query\n");
    }

    #[test]
    fn n_version_detects_divergent_variant() {
        let cluster = Cluster::new(4);
        let service = n_version(
            &cluster,
            "svc",
            &ServiceAddr::new("svc", 9000),
            vec![
                Variant::new(Image::new("svc", "good"), suffix_echo("")),
                Variant::new(Image::new("svc", "evil"), suffix_echo(" LEAK")),
            ],
            EngineConfig::builder(2).build().unwrap(),
            line(),
        )
        .unwrap();
        let mut conn = cluster.net().dial(&service.addr).unwrap();
        conn.write_all(b"x\n").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(conn.read(&mut buf).unwrap(), 0, "divergence must sever");
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(service.proxy.stats().divergences, 1);
    }

    #[test]
    fn telemetry_records_divergence_and_metrics() {
        let cluster = Cluster::new(4);
        let telemetry = ProxyTelemetry::new("svc");
        let service = n_version_with_telemetry(
            &cluster,
            "svc",
            &ServiceAddr::new("svc", 9050),
            vec![
                Variant::new(Image::new("svc", "good"), suffix_echo("")),
                Variant::new(Image::new("svc", "evil"), suffix_echo(" LEAK")),
            ],
            EngineConfig::builder(2).build().unwrap(),
            line(),
            telemetry.clone(),
        )
        .unwrap();
        let mut conn = cluster.net().dial(&service.addr).unwrap();
        conn.write_all(b"x\n").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(conn.read(&mut buf).unwrap(), 0, "divergence must sever");
        std::thread::sleep(std::time::Duration::from_millis(30));
        let page = telemetry.registry.render_prometheus();
        assert!(
            page.contains("svc_in_exchanges_total 1"),
            "metrics:\n{page}"
        );
        assert!(
            page.contains("svc_in_divergences_total 1"),
            "metrics:\n{page}"
        );
        assert!(
            page.contains("svc_in_exchange_latency_us"),
            "metrics:\n{page}"
        );
        assert_eq!(telemetry.audit.len(), 1);
        let record = &telemetry.audit.recent()[0];
        assert_eq!(record.service, "svc_in");
        assert!(
            !record.timeline.is_empty(),
            "span timeline should be attached"
        );
    }

    #[test]
    fn variant_count_must_match_config() {
        let cluster = Cluster::new(2);
        let err = n_version(
            &cluster,
            "svc",
            &ServiceAddr::new("svc", 9100),
            vec![Variant::new(Image::new("svc", "v1"), suffix_echo(""))],
            EngineConfig::builder(2).build().unwrap(),
            line(),
        );
        assert!(err.is_err());
    }
}
