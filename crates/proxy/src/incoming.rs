//! The RDDR Incoming Request Proxy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::BytesMut;
use crossbeam::channel::unbounded;
use rddr_core::{Direction, EngineConfig, NVersionEngine, RddrError, INTERVENTION_PAGE};
use rddr_net::{BoxStream, Network, ServiceAddr, Stream};
use rddr_telemetry::Span;

use crate::plumbing::{spawn_reader, InstanceEvent, ProxyTelemetry};
use crate::{ProtocolFactory, ProxyError, ProxyStats, Result, StatsSnapshot};

/// Per-session handles to the shared telemetry bundle: the latency series
/// the incoming proxy maintains on top of the engine's own counters.
#[derive(Clone)]
struct SessionTelemetry {
    shared: ProxyTelemetry,
    /// Client request accepted → response forwarded (or severed), µs.
    exchange_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Writing the N replicated request copies, µs.
    fanout_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Waiting for instance responses until the exchange is ready, µs.
    merge_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Arrival lag of instance response data after fan-out, µs (all
    /// instances pooled).
    instance_us: std::sync::Arc<rddr_telemetry::Histogram>,
}

impl SessionTelemetry {
    fn new(shared: ProxyTelemetry) -> Self {
        let name = |s: &str| format!("{}_in_{s}", shared.prefix);
        SessionTelemetry {
            exchange_us: shared.registry.histogram(&name("exchange_latency_us")),
            fanout_us: shared.registry.histogram(&name("fanout_latency_us")),
            merge_us: shared.registry.histogram(&name("merge_latency_us")),
            instance_us: shared.registry.histogram(&name("instance_response_us")),
            shared,
        }
    }
}

/// The incoming request proxy: clients connect here instead of to the
/// protected microservice; every request is replicated to the N instances
/// and their responses are diffed (Figure 2, top half).
///
/// Start with [`IncomingProxy::start`]; the returned handle owns the accept
/// loop and stops it on drop.
pub struct IncomingProxy {
    listen_addr: ServiceAddr,
    stats: Arc<ProxyStats>,
    stop: Arc<AtomicBool>,
    unbind: Box<dyn Fn() + Send + Sync>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for IncomingProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncomingProxy")
            .field("listen", &self.listen_addr)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl IncomingProxy {
    /// Binds `listen` and starts proxying to `instances`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Config`] if the instance list length differs
    /// from the configured N, or [`ProxyError::Bind`] if the listen address
    /// is taken.
    pub fn start(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        instances: Vec<ServiceAddr>,
        config: EngineConfig,
        protocol: ProtocolFactory,
    ) -> Result<IncomingProxy> {
        Self::start_with_telemetry(net, listen, instances, config, protocol, None)
    }

    /// Like [`IncomingProxy::start`], but every session's engine feeds the
    /// shared [`ProxyTelemetry`] bundle: exchange/divergence counters and
    /// fan-out/merge latency histograms go to its registry (metric names
    /// under `{prefix}_in_*`), divergence incidents to its audit log.
    pub fn start_with_telemetry(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        instances: Vec<ServiceAddr>,
        config: EngineConfig,
        protocol: ProtocolFactory,
        telemetry: Option<ProxyTelemetry>,
    ) -> Result<IncomingProxy> {
        if instances.len() != config.instances() {
            return Err(ProxyError::Config(format!(
                "config expects {} instances but {} addresses were given",
                config.instances(),
                instances.len()
            )));
        }
        let mut listener = net.listen(listen).map_err(ProxyError::Bind)?;
        // Report the resolved address (TCP port 0 binds to an ephemeral port).
        let bound = listener.local_addr();
        let stats = Arc::new(ProxyStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let session_telemetry = telemetry.map(SessionTelemetry::new);

        let session_stats = Arc::clone(&stats);
        let session_stop = Arc::clone(&stop);
        let session_net = Arc::clone(&net);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rddr-in-{listen}"))
            .spawn(move || {
                while !session_stop.load(Ordering::Relaxed) {
                    let Ok(client) = listener.accept() else {
                        break;
                    };
                    if session_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    session_stats.sessions.fetch_add(1, Ordering::Relaxed);
                    let net = Arc::clone(&session_net);
                    let instances = instances.clone();
                    let config = config.clone();
                    let protocol = Arc::clone(&protocol);
                    let stats = Arc::clone(&session_stats);
                    let telemetry = session_telemetry.clone();
                    let spawned = std::thread::Builder::new()
                        .name("rddr-in-session".into())
                        .spawn(move || {
                            run_session(client, net, &instances, config, protocol, stats, telemetry)
                        });
                    if spawned.is_err() {
                        // Thread exhaustion: the dropped closure closes the
                        // client connection — a severed session, not a
                        // crashed accept loop.
                        session_stats.severed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
            .map_err(ProxyError::Spawn)?;

        let unbind_net = net;
        let unbind_addr = bound.clone();
        Ok(IncomingProxy {
            listen_addr: bound,
            stats,
            stop,
            unbind: Box::new(move || {
                unbind_net.unbind_addr(&unbind_addr);
                // Fabrics whose unbind is a no-op (plain TCP) need the
                // accept loop woken so it can observe the stop flag.
                if let Ok(mut conn) = unbind_net.dial(&unbind_addr) {
                    conn.shutdown();
                }
            }),
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn listen_addr(&self) -> &ServiceAddr {
        &self.listen_addr
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting new sessions and unbinds the listen address.
    pub fn stop(&mut self) {
        if !self.stop.swap(true, Ordering::Relaxed) {
            (self.unbind)();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for IncomingProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_session(
    mut client: BoxStream,
    net: Arc<dyn Network>,
    instances: &[ServiceAddr],
    config: EngineConfig,
    protocol: ProtocolFactory,
    stats: Arc<ProxyStats>,
    telemetry: Option<SessionTelemetry>,
) {
    let deadline = config.response_deadline();
    let mut engine = NVersionEngine::from_boxed(config, protocol());
    if let Some(t) = &telemetry {
        engine = engine.with_telemetry(
            Arc::clone(&t.shared.registry),
            &format!("{}_in", t.shared.prefix),
            Some(Arc::clone(&t.shared.audit)),
        );
    }
    let request_protocol = protocol();
    let is_http = request_protocol.name() == "http";

    // Dial every instance; abort the session if any is unreachable.
    let mut writers: Vec<BoxStream> = Vec::with_capacity(instances.len());
    let (events_tx, events_rx) = unbounded();
    for (i, addr) in instances.iter().enumerate() {
        match net.dial(addr) {
            Ok(conn) => {
                match conn.try_clone() {
                    Ok(reader) => {
                        if spawn_reader(i, reader, events_tx.clone(), "in").is_err() {
                            client.shutdown();
                            return;
                        }
                    }
                    Err(_) => {
                        client.shutdown();
                        return;
                    }
                }
                writers.push(conn);
            }
            Err(_) => {
                client.shutdown();
                return;
            }
        }
    }

    let mut request_buf = BytesMut::new();
    let mut chunk = [0u8; 16 * 1024];
    'session: loop {
        // Read from the client until at least one complete request frame.
        let request_frames = loop {
            match request_protocol.split_frames(&mut request_buf, Direction::Request) {
                Ok(frames) if !frames.is_empty() => break frames,
                Ok(_) => {}
                Err(_) => break 'session,
            }
            match client.read(&mut chunk) {
                Ok(0) | Err(_) => break 'session,
                Ok(n) => request_buf.extend_from_slice(&chunk[..n]),
            }
        };

        for frame in request_frames {
            // One span per exchange: it travels into the engine, shows up in
            // any divergence audit record, and times the proxy's own phases.
            let exchange_start = Instant::now();
            let span = telemetry
                .as_ref()
                .map(|_| Arc::new(Span::start("exchange")));
            if let Some(span) = &span {
                engine.set_span(Arc::clone(span));
            }

            // Replicate.
            let copies = match engine.replicate_request(&frame.bytes) {
                Ok(copies) => copies,
                Err(RddrError::Throttled) => {
                    stats.throttled.fetch_add(1, Ordering::Relaxed);
                    sever(&mut client, &mut writers, is_http);
                    break 'session;
                }
                Err(_) => break 'session,
            };
            let fanout_start = Instant::now();
            for (writer, copy) in writers.iter_mut().zip(&copies) {
                if writer.write_all(copy).is_err() {
                    sever(&mut client, &mut writers, is_http);
                    break 'session;
                }
            }
            if let Some(t) = &telemetry {
                t.fanout_us.record_duration(fanout_start.elapsed());
                if let Some(span) = &span {
                    span.event("fanout:done");
                }
            }

            // Collect responses until every instance completes or the
            // deadline passes (the paper's DoS timeout, §IV-D).
            let t0 = Instant::now();
            let mut failed = vec![false; writers.len()];
            while !engine.exchange_ready() {
                let remaining = deadline.saturating_sub(t0.elapsed());
                if remaining.is_zero() {
                    break;
                }
                match events_rx.recv_timeout(remaining) {
                    Ok(InstanceEvent::Data(i, data)) => {
                        if let Some(t) = &telemetry {
                            t.instance_us.record_duration(t0.elapsed());
                            if let Some(span) = &span {
                                span.event(format!("instance:{i}:data"));
                            }
                        }
                        if engine.push_response(i, &data).is_err() {
                            if let Some(f) = failed.get_mut(i) {
                                *f = true;
                            }
                            engine.mark_failed(i);
                        }
                    }
                    Ok(InstanceEvent::Closed(i)) => {
                        if let Some(span) = &span {
                            span.event(format!("instance:{i}:closed"));
                        }
                        if let Some(f) = failed.get_mut(i) {
                            *f = true;
                        }
                        engine.mark_failed(i);
                        if failed.iter().all(|&f| f) {
                            break;
                        }
                    }
                    Err(_) => break, // deadline
                }
            }
            if let Some(t) = &telemetry {
                t.merge_us.record_duration(t0.elapsed());
            }
            // De-noise + Diff + Respond.
            let outcome = match engine.finish_exchange() {
                Ok(outcome) => outcome,
                Err(_) => {
                    sever(&mut client, &mut writers, is_http);
                    break 'session;
                }
            };
            stats.exchanges.fetch_add(1, Ordering::Relaxed);
            if outcome.report.diverged() {
                stats.divergences.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t) = &telemetry {
                t.exchange_us.record_duration(exchange_start.elapsed());
            }
            match outcome.forward {
                Some(bytes) => {
                    if client.write_all(&bytes).is_err() {
                        break 'session;
                    }
                }
                None => {
                    stats.severed.fetch_add(1, Ordering::Relaxed);
                    sever(&mut client, &mut writers, is_http);
                    break 'session;
                }
            }
        }
    }
    client.shutdown();
    for w in &mut writers {
        w.shutdown();
    }
}

/// Severs the session: optionally sends the HTTP intervention page, then
/// closes the client and all instance connections.
fn sever(client: &mut BoxStream, writers: &mut [BoxStream], is_http: bool) {
    if is_http {
        let _ = client.write_all(INTERVENTION_PAGE.as_bytes());
    }
    client.shutdown();
    for w in writers.iter_mut() {
        w.shutdown();
    }
}
