//! The RDDR Incoming Request Proxy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Sender};
use rddr_core::{Direction, EngineConfig, NVersionEngine, RddrError, INTERVENTION_PAGE};
use rddr_net::{BoxStream, Network, ServiceAddr, Stream};
use rddr_telemetry::Span;

use crate::plumbing::{
    below_survivor_floor, eject_instance, fault_instance, quarantine_instance, spawn_reader,
    DegradedTelemetry, InstanceEvent, ProxyTelemetry, Roster,
};
use crate::{ProtocolFactory, ProxyError, ProxyStats, Result, StatsSnapshot};

/// Per-session handles to the shared telemetry bundle: the latency series
/// the incoming proxy maintains on top of the engine's own counters.
#[derive(Clone)]
struct SessionTelemetry {
    shared: ProxyTelemetry,
    /// Client request accepted → response forwarded (or severed), µs.
    exchange_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Writing the N replicated request copies, µs.
    fanout_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Waiting for instance responses until the exchange is ready, µs.
    merge_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Arrival lag of instance response data after fan-out, µs (all
    /// instances pooled).
    instance_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Eject/rejoin/quarantine counters and the degraded-depth gauge.
    degraded: std::sync::Arc<DegradedTelemetry>,
}

impl SessionTelemetry {
    fn new(shared: ProxyTelemetry) -> Self {
        let name = |s: &str| format!("{}_in_{s}", shared.prefix);
        SessionTelemetry {
            exchange_us: shared.registry.histogram(&name("exchange_latency_us")),
            fanout_us: shared.registry.histogram(&name("fanout_latency_us")),
            merge_us: shared.registry.histogram(&name("merge_latency_us")),
            instance_us: shared.registry.histogram(&name("instance_response_us")),
            degraded: std::sync::Arc::new(DegradedTelemetry::new(
                &shared.registry,
                &format!("{}_in", shared.prefix),
            )),
            shared,
        }
    }
}

/// The incoming request proxy: clients connect here instead of to the
/// protected microservice; every request is replicated to the N instances
/// and their responses are diffed (Figure 2, top half).
///
/// Start with [`IncomingProxy::start`]; the returned handle owns the accept
/// loop and stops it on drop.
pub struct IncomingProxy {
    listen_addr: ServiceAddr,
    stats: Arc<ProxyStats>,
    stop: Arc<AtomicBool>,
    unbind: Box<dyn Fn() + Send + Sync>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for IncomingProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncomingProxy")
            .field("listen", &self.listen_addr)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl IncomingProxy {
    /// Binds `listen` and starts proxying to `instances`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Config`] if the instance list length differs
    /// from the configured N, or [`ProxyError::Bind`] if the listen address
    /// is taken.
    pub fn start(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        instances: Vec<ServiceAddr>,
        config: EngineConfig,
        protocol: ProtocolFactory,
    ) -> Result<IncomingProxy> {
        Self::start_with_telemetry(net, listen, instances, config, protocol, None)
    }

    /// Like [`IncomingProxy::start`], but every session's engine feeds the
    /// shared [`ProxyTelemetry`] bundle: exchange/divergence counters and
    /// fan-out/merge latency histograms go to its registry (metric names
    /// under `{prefix}_in_*`), divergence incidents to its audit log.
    pub fn start_with_telemetry(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        instances: Vec<ServiceAddr>,
        config: EngineConfig,
        protocol: ProtocolFactory,
        telemetry: Option<ProxyTelemetry>,
    ) -> Result<IncomingProxy> {
        if instances.len() != config.instances() {
            return Err(ProxyError::Config(format!(
                "config expects {} instances but {} addresses were given",
                config.instances(),
                instances.len()
            )));
        }
        let mut listener = net.listen(listen).map_err(ProxyError::Bind)?;
        // Report the resolved address (TCP port 0 binds to an ephemeral port).
        let bound = listener.local_addr();
        let stats = Arc::new(ProxyStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let session_telemetry = telemetry.map(SessionTelemetry::new);

        let session_stats = Arc::clone(&stats);
        let session_stop = Arc::clone(&stop);
        let session_net = Arc::clone(&net);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rddr-in-{listen}"))
            .spawn(move || {
                while !session_stop.load(Ordering::Relaxed) {
                    let Ok(client) = listener.accept() else {
                        break;
                    };
                    if session_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    session_stats.sessions.fetch_add(1, Ordering::Relaxed);
                    let net = Arc::clone(&session_net);
                    let instances = instances.clone();
                    let config = config.clone();
                    let protocol = Arc::clone(&protocol);
                    let stats = Arc::clone(&session_stats);
                    let telemetry = session_telemetry.clone();
                    let spawned = std::thread::Builder::new()
                        .name("rddr-in-session".into())
                        .spawn(move || {
                            run_session(client, net, &instances, config, protocol, stats, telemetry)
                        });
                    if spawned.is_err() {
                        // Thread exhaustion: the dropped closure closes the
                        // client connection — a severed session, not a
                        // crashed accept loop.
                        session_stats.severed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
            .map_err(ProxyError::Spawn)?;

        let unbind_net = net;
        let unbind_addr = bound.clone();
        Ok(IncomingProxy {
            listen_addr: bound,
            stats,
            stop,
            unbind: Box::new(move || {
                unbind_net.unbind_addr(&unbind_addr);
                // Fabrics whose unbind is a no-op (plain TCP) need the
                // accept loop woken so it can observe the stop flag.
                if let Ok(mut conn) = unbind_net.dial(&unbind_addr) {
                    conn.shutdown();
                }
            }),
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn listen_addr(&self) -> &ServiceAddr {
        &self.listen_addr
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting new sessions and unbinds the listen address.
    pub fn stop(&mut self) {
        if !self.stop.swap(true, Ordering::Relaxed) {
            (self.unbind)();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for IncomingProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_session(
    mut client: BoxStream,
    net: Arc<dyn Network>,
    instances: &[ServiceAddr],
    config: EngineConfig,
    protocol: ProtocolFactory,
    stats: Arc<ProxyStats>,
    telemetry: Option<SessionTelemetry>,
) {
    let deadline = config.response_deadline();
    let degrade = config.degrade();
    let instance_deadline = config.instance_deadline();
    let mut engine = NVersionEngine::from_boxed(config, protocol());
    if let Some(t) = &telemetry {
        engine = engine.with_telemetry(
            Arc::clone(&t.shared.registry),
            &format!("{}_in", t.shared.prefix),
            Some(Arc::clone(&t.shared.audit)),
        );
    }
    let degraded = telemetry.as_ref().map(|t| Arc::clone(&t.degraded));
    let request_protocol = protocol();
    let is_http = request_protocol.name() == "http";

    // Dial every instance. Under the default sever policy any unreachable
    // instance aborts the whole session; under an eject policy it is ejected
    // and the session starts degraded, as long as enough survivors remain.
    let mut roster = Roster::new(instances.len());
    let (events_tx, events_rx) = unbounded();
    let mut aborted = false;
    for (i, addr) in instances.iter().enumerate() {
        let attached = net.dial(addr).ok().and_then(|conn| {
            let reader = conn.try_clone().ok()?;
            spawn_reader(i, roster.epoch(i), reader, events_tx.clone(), "in").ok()?;
            Some(conn)
        });
        match attached {
            Some(conn) => {
                if let Some(slot) = roster.writers.get_mut(i) {
                    *slot = Some(conn);
                }
            }
            None if degrade.ejects() => {
                eject_instance(i, &mut engine, &mut roster, &stats, degraded.as_deref());
            }
            None => {
                aborted = true;
                break;
            }
        }
    }
    if !aborted && below_survivor_floor(engine.active_count(), degrade) {
        aborted = true;
    }

    let mut request_buf = BytesMut::new();
    let mut chunk = [0u8; 16 * 1024];
    // Scratch reused across the whole session: per-instance fan-out buffers
    // for batched writes, accumulated forward bytes for the client, and the
    // per-unit failure flags.
    let mut fanout_bufs: Vec<Vec<u8>> = (0..instances.len()).map(|_| Vec::new()).collect();
    let mut forward_buf: Vec<u8> = Vec::new();
    let mut failed = vec![false; instances.len()];
    'serve: {
        if aborted {
            break 'serve;
        }
        'session: loop {
            // Read from the client until at least one complete request frame.
            let request_frames = loop {
                match request_protocol.split_frames(&mut request_buf, Direction::Request) {
                    Ok(frames) if !frames.is_empty() => break frames,
                    Ok(_) => {}
                    Err(_) => break 'session,
                }
                match client.read(&mut chunk) {
                    Ok(0) | Err(_) => break 'session,
                    Ok(n) => {
                        let Some(read) = chunk.get(..n) else {
                            break 'session;
                        };
                        request_buf.extend_from_slice(read);
                    }
                }
            };

            // Pipelining-capable protocols (strict 1:1 framing, no ephemeral
            // capture) fan out every buffered request frame in one write per
            // instance and evaluate responses unit by unit; everything else
            // runs the classic one-frame-per-cycle path.
            let pipelined = request_frames.len() > 1 && request_protocol.supports_pipelining();
            let mut next_frame = 0;
            while next_frame < request_frames.len() {
                // Once the signature throttle has recorded a divergence the
                // batch depth clamps to one frame: every frame then meets a
                // fully up-to-date throttle instead of the lagging
                // whole-batch check (the PR-introducing caveat in
                // DESIGN.md's pipelined-batching note).
                let batch_end = if pipelined && !engine.session().throttle_engaged() {
                    request_frames.len()
                } else {
                    next_frame + 1
                };
                let Some(batch) = request_frames.get(next_frame..batch_end) else {
                    break 'session;
                };
                next_frame = batch_end;

                // A replica ejected in an earlier exchange gets a rejoin
                // probe before each new batch: a successful re-dial readmits
                // it into the diff set.
                if degrade.ejects() && engine.active_count() < instances.len() {
                    attempt_rejoins(
                        &net,
                        instances,
                        &mut engine,
                        &mut roster,
                        &events_tx,
                        &stats,
                        degraded.as_deref(),
                    );
                }

                // One span per batch: it travels into the engine, shows up
                // in any divergence audit record, and times the proxy's own
                // phases.
                let exchange_start = Instant::now();
                let span = telemetry
                    .as_ref()
                    .map(|_| Arc::new(Span::start("exchange")));
                if let Some(span) = &span {
                    engine.set_span(Arc::clone(span));
                }

                // Replicate every frame of the batch up front. The signature
                // throttle is consulted per frame at fan-out time; a
                // throttled frame severs the session once the units already
                // on the wire have been answered (the throttle state lags
                // within a batch — see DESIGN.md).
                let mut unit_copies: Vec<Vec<rddr_core::RequestCopy>> =
                    Vec::with_capacity(batch.len());
                let mut throttled_stop = false;
                let mut hard_stop = false;
                for frame in batch {
                    match engine.replicate_request(&frame.bytes) {
                        Ok(copies) => unit_copies.push(copies),
                        Err(RddrError::Throttled) => {
                            stats.throttled.fetch_add(1, Ordering::Relaxed);
                            throttled_stop = true;
                            break;
                        }
                        Err(_) => {
                            hard_stop = true;
                            break;
                        }
                    }
                }
                if unit_copies.is_empty() {
                    if throttled_stop {
                        sever(&mut client, &mut roster, is_http);
                    }
                    break 'session;
                }

                // Fan out: one write per instance covering the whole batch.
                let fanout_start = Instant::now();
                let mut fanout_failed: Vec<usize> = Vec::new();
                if let [copies] = unit_copies.as_slice() {
                    for (i, (slot, copy)) in roster.writers.iter_mut().zip(copies).enumerate() {
                        let Some(writer) = slot else {
                            continue;
                        };
                        if writer.write_all(copy).is_err() {
                            fanout_failed.push(i);
                        }
                    }
                } else {
                    for (i, (slot, buf)) in roster
                        .writers
                        .iter_mut()
                        .zip(fanout_bufs.iter_mut())
                        .enumerate()
                    {
                        let Some(writer) = slot else {
                            continue;
                        };
                        buf.clear();
                        for copies in &unit_copies {
                            if let Some(copy) = copies.get(i) {
                                buf.extend_from_slice(copy);
                            }
                        }
                        if writer.write_all(buf).is_err() {
                            fanout_failed.push(i);
                        }
                    }
                }
                for i in fanout_failed {
                    if !degrade.ejects() {
                        sever(&mut client, &mut roster, is_http);
                        break 'session;
                    }
                    eject_instance(i, &mut engine, &mut roster, &stats, degraded.as_deref());
                }
                if let Some(t) = &telemetry {
                    t.fanout_us.record_duration(fanout_start.elapsed());
                    if let Some(span) = &span {
                        span.event("fanout:done");
                    }
                }

                let units = unit_copies.len();
                forward_buf.clear();
                for _unit in 0..units {
                    // Collect responses until every live instance completes or a
                    // deadline passes (the paper's DoS timeout, §IV-D). The
                    // per-instance straggler deadline starts counting when the
                    // first instance finishes its exchange.
                    let t0 = Instant::now();
                    failed.iter_mut().for_each(|f| *f = false);
                    let mut first_complete: Option<Instant> = None;
                    loop {
                        if engine.exchange_ready() || engine.active_count() == 0 {
                            break;
                        }
                        let mut wait = deadline.saturating_sub(t0.elapsed());
                        if wait.is_zero() {
                            break;
                        }
                        if let (Some(limit), Some(first)) = (instance_deadline, first_complete) {
                            let straggler = limit.saturating_sub(first.elapsed());
                            if straggler.is_zero() {
                                // Straggler deadline: every incomplete live
                                // instance is now treated as faulted.
                                for i in 0..instances.len() {
                                    if engine.is_active(i) && !engine.instance_complete(i) {
                                        fault_instance(
                                            i,
                                            degrade,
                                            &mut engine,
                                            &mut roster,
                                            &mut failed,
                                            &stats,
                                            degraded.as_deref(),
                                        );
                                    }
                                }
                                break;
                            }
                            wait = wait.min(straggler);
                        }
                        match events_rx.recv_timeout(wait) {
                            Ok(InstanceEvent::Data(i, epoch, data)) => {
                                if !roster.current(i, epoch) {
                                    continue; // stale pre-ejection reader
                                }
                                if let Some(t) = &telemetry {
                                    t.instance_us.record_duration(t0.elapsed());
                                    if let Some(span) = &span {
                                        span.event(format!("instance:{i}:data"));
                                    }
                                }
                                if engine.push_response(i, &data).is_err() {
                                    fault_instance(
                                        i,
                                        degrade,
                                        &mut engine,
                                        &mut roster,
                                        &mut failed,
                                        &stats,
                                        degraded.as_deref(),
                                    );
                                } else if first_complete.is_none() && engine.instance_complete(i) {
                                    first_complete = Some(Instant::now());
                                }
                            }
                            Ok(InstanceEvent::Closed(i, epoch)) => {
                                if !roster.current(i, epoch) {
                                    continue;
                                }
                                if let Some(span) = &span {
                                    span.event(format!("instance:{i}:closed"));
                                }
                                fault_instance(
                                    i,
                                    degrade,
                                    &mut engine,
                                    &mut roster,
                                    &mut failed,
                                    &stats,
                                    degraded.as_deref(),
                                );
                                if !degrade.ejects() && failed.iter().all(|&f| f) {
                                    break;
                                }
                            }
                            Err(_) => continue, // timeout: re-checked at loop top
                        }
                    }
                    if let Some(t) = &telemetry {
                        t.merge_us.record_duration(t0.elapsed());
                    }
                    // Anything still incomplete at the overall deadline is
                    // faulted too: ejected in degraded mode, left for the diff
                    // to flag as divergent (partial frames) under sever.
                    if degrade.ejects() && !engine.exchange_ready() {
                        for i in 0..instances.len() {
                            if engine.is_active(i) && !engine.instance_complete(i) {
                                eject_instance(
                                    i,
                                    &mut engine,
                                    &mut roster,
                                    &stats,
                                    degraded.as_deref(),
                                );
                            }
                        }
                    }
                    // Survivor floor: diffing needs at least two live instances.
                    if below_survivor_floor(engine.active_count(), degrade) {
                        stats.severed.fetch_add(1, Ordering::Relaxed);
                        flush_forwards(&mut client, &mut forward_buf);
                        sever(&mut client, &mut roster, is_http);
                        break 'session;
                    }
                    if engine.active_count() == 1 {
                        // Lone-survivor pass-through: the exchange is answered
                        // unchecked and counted as a warning.
                        stats.pass_through.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = degraded.as_deref() {
                            t.pass_through.inc();
                        }
                    }
                    // De-noise + Diff + Respond. Pipelined batches consume one
                    // exchange unit per pass; the classic path takes everything
                    // buffered, so a surplus frame still diffs against the
                    // exchange that provoked it.
                    let finished = if pipelined {
                        engine.finish_exchange_unit()
                    } else {
                        engine.finish_exchange()
                    };
                    let outcome = match finished {
                        Ok(outcome) => outcome,
                        Err(_) => {
                            flush_forwards(&mut client, &mut forward_buf);
                            sever(&mut client, &mut roster, is_http);
                            break 'session;
                        }
                    };
                    stats.exchanges.fetch_add(1, Ordering::Relaxed);
                    if outcome.report.diverged() {
                        stats.divergences.fetch_add(1, Ordering::Relaxed);
                    }
                    // Quorum voting: instances outvoted by the winning group are
                    // quarantined (eligible for a rejoin probe next exchange).
                    for &i in &outcome.quarantined {
                        quarantine_instance(
                            i,
                            &mut engine,
                            &mut roster,
                            &stats,
                            degraded.as_deref(),
                        );
                    }
                    if let Some(t) = &telemetry {
                        t.exchange_us.record_duration(exchange_start.elapsed());
                    }
                    match outcome.forward {
                        Some(bytes) => {
                            // Forwards for a batch accumulate and reach the
                            // client in one write once every unit is answered.
                            forward_buf.extend_from_slice(&bytes);
                        }
                        None => {
                            stats.severed.fetch_add(1, Ordering::Relaxed);
                            flush_forwards(&mut client, &mut forward_buf);
                            sever(&mut client, &mut roster, is_http);
                            break 'session;
                        }
                    }
                } // end per-unit loop
                if !forward_buf.is_empty() {
                    let flushed = client.write_all(&forward_buf);
                    forward_buf.clear();
                    if flushed.is_err() {
                        break 'session;
                    }
                }
                if throttled_stop {
                    sever(&mut client, &mut roster, is_http);
                    break 'session;
                }
                if hard_stop {
                    break 'session;
                }
            }
        }
    }
    client.shutdown();
    roster.shutdown_all();
    // The gauge tracks currently-ejected instances; a session that ends
    // while degraded returns its contribution.
    if let Some(t) = degraded.as_deref() {
        let depth = instances.len().saturating_sub(engine.active_count());
        if depth > 0 {
            t.degraded_depth.add(-(depth as i64));
        }
    }
}

/// Probes every ejected instance once: a successful re-dial plus reader
/// spawn is the warm-up check that readmits the replica into the diff set.
/// A failed probe leaves the instance ejected until the next exchange.
fn attempt_rejoins(
    net: &Arc<dyn Network>,
    instances: &[ServiceAddr],
    engine: &mut NVersionEngine,
    roster: &mut Roster,
    events_tx: &Sender<InstanceEvent>,
    stats: &ProxyStats,
    degraded: Option<&DegradedTelemetry>,
) {
    for (i, addr) in instances.iter().enumerate() {
        if engine.is_active(i) {
            continue;
        }
        let attached = net.dial(addr).ok().and_then(|conn| {
            let reader = conn.try_clone().ok()?;
            spawn_reader(i, roster.epoch(i), reader, events_tx.clone(), "in").ok()?;
            Some(conn)
        });
        let Some(conn) = attached else {
            continue;
        };
        if let Some(slot) = roster.writers.get_mut(i) {
            *slot = Some(conn);
        }
        engine.readmit(i);
        stats.rejoined.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = degraded {
            t.rejoins.inc();
            t.degraded_depth.add(-1);
        }
    }
}

/// Writes any accumulated batch forwards to the client before the session
/// is torn down, so units answered ahead of a mid-batch sever still reach
/// the client in order.
fn flush_forwards(client: &mut BoxStream, forward_buf: &mut Vec<u8>) {
    if !forward_buf.is_empty() {
        // Best-effort on a session being severed anyway; a failed write
        // changes nothing. rddr-analyze: allow(error-swallow)
        let _ = client.write_all(forward_buf);
        forward_buf.clear();
    }
}

/// Severs the session: optionally sends the HTTP intervention page, then
/// closes the client and all remaining instance connections.
fn sever(client: &mut BoxStream, roster: &mut Roster, is_http: bool) {
    if is_http {
        // Best-effort courtesy page on a connection being severed anyway; a
        // failed write changes nothing. rddr-analyze: allow(error-swallow)
        let _ = client.write_all(INTERVENTION_PAGE.as_bytes());
    }
    client.shutdown();
    roster.shutdown_all();
}
