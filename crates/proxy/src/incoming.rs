//! The RDDR Incoming Request Proxy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use rddr_core::{
    DegradePolicy, Direction, EngineConfig, Frame, NVersionEngine, Protocol, RddrError,
    INTERVENTION_PAGE,
};
use rddr_net::{BoxStream, Network, ServiceAddr, Stream, TryRead};
use rddr_telemetry::Span;

use crate::plumbing::{
    below_survivor_floor, eject_instance, fault_instance, quarantine_instance, DegradedTelemetry,
    ProxyTelemetry, Roster,
};
use crate::reactor::{default_workers, Ctx, Flow, ReactorPool, SessionTask, SLOT_PRIMARY};
use crate::{ProtocolFactory, ProxyError, ProxyStats, Result, StatsSnapshot};

/// Per-session handles to the shared telemetry bundle: the latency series
/// the incoming proxy maintains on top of the engine's own counters.
#[derive(Clone)]
struct SessionTelemetry {
    shared: ProxyTelemetry,
    /// Client request accepted → response forwarded (or severed), µs.
    exchange_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Writing the N replicated request copies, µs.
    fanout_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Waiting for instance responses until the exchange is ready, µs.
    merge_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Arrival lag of instance response data after fan-out, µs (all
    /// instances pooled).
    instance_us: std::sync::Arc<rddr_telemetry::Histogram>,
    /// Eject/rejoin/quarantine counters and the degraded-depth gauge.
    degraded: std::sync::Arc<DegradedTelemetry>,
}

impl SessionTelemetry {
    fn new(shared: ProxyTelemetry) -> Self {
        let name = |s: &str| format!("{}_in_{s}", shared.prefix);
        SessionTelemetry {
            exchange_us: shared.registry.histogram(&name("exchange_latency_us")),
            fanout_us: shared.registry.histogram(&name("fanout_latency_us")),
            merge_us: shared.registry.histogram(&name("merge_latency_us")),
            instance_us: shared.registry.histogram(&name("instance_response_us")),
            degraded: std::sync::Arc::new(DegradedTelemetry::new(
                &shared.registry,
                &format!("{}_in", shared.prefix),
            )),
            shared,
        }
    }
}

/// The incoming request proxy: clients connect here instead of to the
/// protected microservice; every request is replicated to the N instances
/// and their responses are diffed (Figure 2, top half).
///
/// Sessions run as state machines on a shared [`ReactorPool`] of O(cores)
/// worker threads — only the accept loop keeps a thread of its own, so
/// thread count stays flat as concurrent client sessions grow.
///
/// Start with [`IncomingProxy::start`]; the returned handle owns the accept
/// loop and the reactor pool, and stops both on drop.
pub struct IncomingProxy {
    listen_addr: ServiceAddr,
    stats: Arc<ProxyStats>,
    stop: Arc<AtomicBool>,
    unbind: Box<dyn Fn() + Send + Sync>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Dropped (tearing down any in-flight sessions) after the accept loop
    /// has been joined.
    pool: Option<Arc<ReactorPool>>,
}

impl std::fmt::Debug for IncomingProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncomingProxy")
            .field("listen", &self.listen_addr)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl IncomingProxy {
    /// Binds `listen` and starts proxying to `instances`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Config`] if the instance list length differs
    /// from the configured N, or [`ProxyError::Bind`] if the listen address
    /// is taken.
    pub fn start(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        instances: Vec<ServiceAddr>,
        config: EngineConfig,
        protocol: ProtocolFactory,
    ) -> Result<IncomingProxy> {
        Self::start_with_telemetry(net, listen, instances, config, protocol, None)
    }

    /// Like [`IncomingProxy::start`], but every session's engine feeds the
    /// shared [`ProxyTelemetry`] bundle: exchange/divergence counters and
    /// fan-out/merge latency histograms go to its registry (metric names
    /// under `{prefix}_in_*`), divergence incidents to its audit log, and
    /// the reactor exports its worker/session gauges under
    /// `{prefix}_in_reactor_*`.
    pub fn start_with_telemetry(
        net: Arc<dyn Network>,
        listen: &ServiceAddr,
        instances: Vec<ServiceAddr>,
        config: EngineConfig,
        protocol: ProtocolFactory,
        telemetry: Option<ProxyTelemetry>,
    ) -> Result<IncomingProxy> {
        if instances.len() != config.instances() {
            return Err(ProxyError::Config(format!(
                "config expects {} instances but {} addresses were given",
                config.instances(),
                instances.len()
            )));
        }
        let mut listener = net.listen(listen).map_err(ProxyError::Bind)?;
        // Report the resolved address (TCP port 0 binds to an ephemeral port).
        let bound = listener.local_addr();
        let stats = Arc::new(ProxyStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let pool = {
            let reactor_telemetry = telemetry
                .as_ref()
                .map(|t| (t.registry.as_ref(), format!("{}_in", t.prefix)));
            Arc::new(
                ReactorPool::new(
                    "in",
                    default_workers(),
                    reactor_telemetry.as_ref().map(|(r, s)| (*r, s.as_str())),
                )
                .map_err(ProxyError::Spawn)?,
            )
        };
        let session_telemetry = telemetry.map(SessionTelemetry::new);

        let session_stats = Arc::clone(&stats);
        let session_stop = Arc::clone(&stop);
        let session_net = Arc::clone(&net);
        let session_pool = Arc::clone(&pool);
        let instances = Arc::new(instances);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rddr-in-{listen}"))
            .spawn(move || {
                while !session_stop.load(Ordering::Relaxed) {
                    let Ok(client) = listener.accept() else {
                        break;
                    };
                    if session_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    session_stats.sessions.fetch_add(1, Ordering::Relaxed);
                    let task = InSession::new(
                        client,
                        Arc::clone(&session_net),
                        Arc::clone(&instances),
                        config.clone(),
                        &protocol,
                        Arc::clone(&session_stats),
                        session_telemetry.clone(),
                    );
                    if !session_pool.submit(Box::new(task)) {
                        // Pool shutting down: the dropped task closes the
                        // client connection — a severed session, not a
                        // crashed accept loop.
                        session_stats.severed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
            .map_err(ProxyError::Spawn)?;

        let unbind_net = net;
        let unbind_addr = bound.clone();
        Ok(IncomingProxy {
            listen_addr: bound,
            stats,
            stop,
            unbind: Box::new(move || {
                unbind_net.unbind_addr(&unbind_addr);
                // Fabrics whose unbind is a no-op (plain TCP) need the
                // accept loop woken so it can observe the stop flag.
                if let Ok(mut conn) = unbind_net.dial(&unbind_addr) {
                    conn.shutdown();
                }
            }),
            accept_thread: Some(accept_thread),
            pool: Some(pool),
        })
    }

    /// The address clients connect to.
    pub fn listen_addr(&self) -> &ServiceAddr {
        &self.listen_addr
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Number of reactor workers serving this proxy's sessions.
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.worker_count())
    }

    /// Stops accepting new sessions and unbinds the listen address.
    /// In-flight sessions keep running until the proxy is dropped.
    pub fn stop(&mut self) {
        if !self.stop.swap(true, Ordering::Relaxed) {
            (self.unbind)();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for IncomingProxy {
    fn drop(&mut self) {
        self.stop();
        // Accept loop is down; dropping the pool tears down live sessions.
        self.pool.take();
    }
}

/// Where an incoming session currently is in its exchange cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InState {
    /// Reading client bytes until at least one complete request frame.
    Gather,
    /// A batch is fanned out; merging instance responses unit by unit.
    Merge,
}

/// What one state-machine transition asks the step driver to do next.
enum Advance {
    /// Re-run the state machine immediately (state changed, or buffered
    /// data may complete the next unit without a fresh wake).
    Again,
    /// Park until the next wake (readiness or timer).
    Park,
    /// Session over.
    Finish,
}

/// One client session of the incoming proxy, driven by the reactor.
///
/// The state machine mirrors the old per-session thread loop exactly:
/// `Gather` is the blocking client `read` loop, `Merge` is the per-unit
/// `recv_timeout` merge loop — with waits replaced by poller parks and the
/// per-instance reader threads replaced by draining `try_read` on every
/// wake. Data arriving "early" (before its unit starts merging) is pushed
/// straight into the engine, which buffers it just as the reader channel
/// used to.
struct InSession {
    client: BoxStream,
    client_open: bool,
    net: Arc<dyn Network>,
    instances: Arc<Vec<ServiceAddr>>,
    deadline: Duration,
    degrade: DegradePolicy,
    instance_deadline: Option<Duration>,
    is_http: bool,
    engine: NVersionEngine,
    request_protocol: Box<dyn Protocol>,
    roster: Roster,
    stats: Arc<ProxyStats>,
    telemetry: Option<SessionTelemetry>,
    degraded: Option<Arc<DegradedTelemetry>>,

    state: InState,
    request_buf: BytesMut,
    request_frames: Vec<Frame>,
    next_frame: usize,
    pipelined: bool,

    // Per-batch state (valid while `state == Merge`).
    exchange_start: Instant,
    span: Option<Arc<Span>>,
    throttled_stop: bool,
    hard_stop: bool,
    units: usize,
    units_done: usize,
    forward_buf: Vec<u8>,
    fanout_bufs: Vec<Vec<u8>>,

    // Per-unit merge state.
    t0: Instant,
    failed: Vec<bool>,
    first_complete: Option<Instant>,

    // Instance EOFs observed during a drain, awaiting processing at the
    // thread-model-equivalent point (the merge loop).
    pending_close: Vec<bool>,
    closed_seen: Vec<bool>,
}

impl InSession {
    #[allow(clippy::too_many_arguments)]
    fn new(
        client: BoxStream,
        net: Arc<dyn Network>,
        instances: Arc<Vec<ServiceAddr>>,
        config: EngineConfig,
        protocol: &ProtocolFactory,
        stats: Arc<ProxyStats>,
        telemetry: Option<SessionTelemetry>,
    ) -> Self {
        let deadline = config.response_deadline();
        let degrade = config.degrade();
        let instance_deadline = config.instance_deadline();
        let mut engine = NVersionEngine::from_boxed(config, protocol());
        if let Some(t) = &telemetry {
            engine = engine.with_telemetry(
                Arc::clone(&t.shared.registry),
                &format!("{}_in", t.shared.prefix),
                Some(Arc::clone(&t.shared.audit)),
            );
        }
        let degraded = telemetry.as_ref().map(|t| Arc::clone(&t.degraded));
        let request_protocol = protocol();
        let is_http = request_protocol.name() == "http";
        let n = instances.len();
        InSession {
            client,
            client_open: true,
            net,
            instances,
            deadline,
            degrade,
            instance_deadline,
            is_http,
            engine,
            request_protocol,
            roster: Roster::new(n),
            stats,
            telemetry,
            degraded,
            state: InState::Gather,
            request_buf: BytesMut::new(),
            request_frames: Vec::new(),
            next_frame: 0,
            pipelined: false,
            exchange_start: Instant::now(),
            span: None,
            throttled_stop: false,
            hard_stop: false,
            units: 0,
            units_done: 0,
            forward_buf: Vec::new(),
            fanout_bufs: (0..n).map(|_| Vec::new()).collect(),
            t0: Instant::now(),
            failed: vec![false; n],
            first_complete: None,
            pending_close: vec![false; n],
            closed_seen: vec![false; n],
        }
    }

    /// Routes an instance fault through the degrade policy, deregistering
    /// its readiness token first when the stream will leave the roster.
    fn fault(&mut self, i: usize, ctx: &Ctx<'_>) {
        if self.degrade.ejects() {
            ctx.deregister(i as u64);
        }
        fault_instance(
            i,
            self.degrade,
            &mut self.engine,
            &mut self.roster,
            &mut self.failed,
            &self.stats,
            self.degraded.as_deref(),
        );
    }

    fn eject(&mut self, i: usize, ctx: &Ctx<'_>) {
        ctx.deregister(i as u64);
        eject_instance(
            i,
            &mut self.engine,
            &mut self.roster,
            &self.stats,
            self.degraded.as_deref(),
        );
    }

    fn quarantine(&mut self, i: usize, ctx: &Ctx<'_>) {
        ctx.deregister(i as u64);
        quarantine_instance(
            i,
            &mut self.engine,
            &mut self.roster,
            &self.stats,
            self.degraded.as_deref(),
        );
    }

    /// Drains every *woken* stream to `WouldBlock`: client bytes into the
    /// request buffer, instance bytes into the engine. EOFs are recorded
    /// (`pending_close`) and their tokens deregistered, but close handling
    /// is deferred to the merge step. Streams that did not wake are left
    /// alone — every arrival produces a slot wake, so nothing is missed.
    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        if self.client_open && ctx.woken.contains(&SLOT_PRIMARY) {
            loop {
                let res = self.client.try_read(ctx.scratch);
                match res {
                    Ok(TryRead::Data(n)) => {
                        if let Some(read) = ctx.scratch.get(..n) {
                            self.request_buf.extend_from_slice(read);
                        }
                    }
                    Ok(TryRead::WouldBlock) => break,
                    Ok(TryRead::Eof) | Err(_) => {
                        self.client_open = false;
                        ctx.deregister(SLOT_PRIMARY);
                        break;
                    }
                }
            }
        }
        let merging = self.state == InState::Merge;
        for &slot in ctx.woken {
            let i = slot as usize;
            if i >= self.roster.writers.len() || self.closed_seen.get(i).copied().unwrap_or(false) {
                continue;
            }
            loop {
                let res = {
                    let Some(conn) = self.roster.writers.get_mut(i).and_then(|s| s.as_mut()) else {
                        break;
                    };
                    conn.try_read(ctx.scratch)
                };
                match res {
                    Ok(TryRead::Data(n)) => {
                        if merging {
                            if let Some(t) = &self.telemetry {
                                t.instance_us.record_duration(self.t0.elapsed());
                                if let Some(span) = &self.span {
                                    span.event(format!("instance:{i}:data"));
                                }
                            }
                        }
                        let pushed = match ctx.scratch.get(..n) {
                            Some(read) => self.engine.push_response(i, read),
                            None => Err(RddrError::Protocol("scratch underflow".into())),
                        };
                        if pushed.is_err() {
                            self.fault(i, ctx);
                            break;
                        }
                        if merging
                            && self.first_complete.is_none()
                            && self.engine.instance_complete(i)
                        {
                            self.first_complete = Some(Instant::now());
                        }
                    }
                    Ok(TryRead::WouldBlock) => break,
                    Ok(TryRead::Eof) | Err(_) => {
                        // Observed here, processed in the merge step — and
                        // deregistered now so a closed fd can't spin the
                        // poller.
                        ctx.deregister(i as u64);
                        if let Some(p) = self.pending_close.get_mut(i) {
                            *p = true;
                        }
                        if let Some(c) = self.closed_seen.get_mut(i) {
                            *c = true;
                        }
                        break;
                    }
                }
            }
        }
    }

    /// `Gather`: split complete request frames out of the buffer and start
    /// the next fan-out window, or park until more client bytes arrive.
    fn gather(&mut self, ctx: &mut Ctx<'_>) -> Advance {
        if self.next_frame < self.request_frames.len() {
            return self.start_window(ctx);
        }
        match self
            .request_protocol
            .split_frames(&mut self.request_buf, Direction::Request)
        {
            Ok(frames) if !frames.is_empty() => {
                self.pipelined = frames.len() > 1 && self.request_protocol.supports_pipelining();
                self.request_frames = frames;
                self.next_frame = 0;
                self.start_window(ctx)
            }
            Ok(_) => {
                if !self.client_open {
                    return Advance::Finish;
                }
                Advance::Park
            }
            Err(_) => Advance::Finish,
        }
    }

    /// Replicates and fans out the next window of buffered request frames,
    /// then enters `Merge`. Mirrors the batch preamble of the old session
    /// loop: rejoin probes, span, throttle clamp, replicate, fan-out.
    fn start_window(&mut self, ctx: &mut Ctx<'_>) -> Advance {
        // Once the signature throttle has recorded a divergence the batch
        // depth clamps to one frame: every frame then meets a fully
        // up-to-date throttle instead of the lagging whole-batch check.
        let batch_end = if self.pipelined && !self.engine.session().throttle_engaged() {
            self.request_frames.len()
        } else {
            self.next_frame + 1
        };

        // A replica ejected in an earlier exchange gets a rejoin probe
        // before each new batch: a successful re-dial readmits it.
        if self.degrade.ejects() && self.engine.active_count() < self.instances.len() {
            self.attempt_rejoins(ctx);
        }

        // One span per batch: it travels into the engine, shows up in any
        // divergence audit record, and times the proxy's own phases.
        self.exchange_start = Instant::now();
        self.span = self
            .telemetry
            .as_ref()
            .map(|_| Arc::new(Span::start("exchange")));
        if let Some(span) = &self.span {
            self.engine.set_span(Arc::clone(span));
        }

        // Replicate every frame of the batch up front. The signature
        // throttle is consulted per frame at fan-out time; a throttled
        // frame severs the session once the units already on the wire have
        // been answered.
        let mut unit_copies: Vec<Vec<rddr_core::RequestCopy>> = Vec::new();
        self.throttled_stop = false;
        self.hard_stop = false;
        let Some(batch) = self.request_frames.get(self.next_frame..batch_end) else {
            return Advance::Finish;
        };
        self.next_frame = batch_end;
        let mut replicated: Vec<&Frame> = Vec::with_capacity(batch.len());
        replicated.extend(batch.iter());
        for frame in replicated {
            match self.engine.replicate_request(&frame.bytes) {
                Ok(copies) => unit_copies.push(copies),
                Err(RddrError::Throttled) => {
                    self.stats.throttled.fetch_add(1, Ordering::Relaxed);
                    self.throttled_stop = true;
                    break;
                }
                Err(_) => {
                    self.hard_stop = true;
                    break;
                }
            }
        }
        if unit_copies.is_empty() {
            if self.throttled_stop {
                self.sever();
            }
            return Advance::Finish;
        }

        // Fan out: one write per instance covering the whole batch.
        let fanout_start = Instant::now();
        let mut fanout_failed: Vec<usize> = Vec::new();
        if let [copies] = unit_copies.as_slice() {
            for (i, (slot, copy)) in self.roster.writers.iter_mut().zip(copies).enumerate() {
                let Some(writer) = slot else {
                    continue;
                };
                if writer.write_all(copy).is_err() {
                    fanout_failed.push(i);
                }
            }
        } else {
            for (i, (slot, buf)) in self
                .roster
                .writers
                .iter_mut()
                .zip(self.fanout_bufs.iter_mut())
                .enumerate()
            {
                let Some(writer) = slot else {
                    continue;
                };
                buf.clear();
                for copies in &unit_copies {
                    if let Some(copy) = copies.get(i) {
                        buf.extend_from_slice(copy);
                    }
                }
                if writer.write_all(buf).is_err() {
                    fanout_failed.push(i);
                }
            }
        }
        for i in fanout_failed {
            if !self.degrade.ejects() {
                self.sever();
                return Advance::Finish;
            }
            self.eject(i, ctx);
        }
        if let Some(t) = &self.telemetry {
            t.fanout_us.record_duration(fanout_start.elapsed());
            if let Some(span) = &self.span {
                span.event("fanout:done");
            }
        }

        self.units = unit_copies.len();
        self.units_done = 0;
        self.forward_buf.clear();
        self.state = InState::Merge;
        self.begin_unit();
        Advance::Again
    }

    /// Resets per-unit merge state (the top of the old per-unit loop).
    fn begin_unit(&mut self) {
        self.t0 = Instant::now();
        self.failed.iter_mut().for_each(|f| *f = false);
        self.first_complete = None;
    }

    /// `Merge`: the wait-loop plus completion of one exchange unit. Runs the
    /// same checks the old `recv_timeout` loop ran — on data wakes, close
    /// processing, and timer fires alike.
    fn merge(&mut self, ctx: &mut Ctx<'_>) -> Advance {
        // Deferred instance closes: processed exactly where the thread
        // model consumed its `Closed` events.
        for i in 0..self.pending_close.len() {
            if !self.pending_close.get(i).copied().unwrap_or(false) {
                continue;
            }
            if let Some(p) = self.pending_close.get_mut(i) {
                *p = false;
            }
            if !self.engine.is_active(i) {
                continue;
            }
            if let Some(span) = &self.span {
                span.event(format!("instance:{i}:closed"));
            }
            self.fault(i, ctx);
        }

        // Under the sever policy a session whose every instance has faulted
        // has nothing left to wait for: evaluate immediately (the diff over
        // the failure markers severs it), as the thread loop did when the
        // last `Closed` event arrived.
        let all_failed = !self.degrade.ejects() && self.failed.iter().all(|&f| f);

        // Wait-loop equivalent: park (with a deadline timer) while the unit
        // is incomplete and time remains.
        if !(all_failed || self.engine.exchange_ready() || self.engine.active_count() == 0) {
            let mut wait = self.deadline.saturating_sub(self.t0.elapsed());
            if !wait.is_zero() {
                let mut straggler_fired = false;
                if let (Some(limit), Some(first)) = (self.instance_deadline, self.first_complete) {
                    let straggler = limit.saturating_sub(first.elapsed());
                    if straggler.is_zero() {
                        // Straggler deadline: every incomplete live instance
                        // is now treated as faulted.
                        for i in 0..self.instances.len() {
                            if self.engine.is_active(i) && !self.engine.instance_complete(i) {
                                self.fault(i, ctx);
                            }
                        }
                        straggler_fired = true;
                    } else {
                        wait = wait.min(straggler);
                    }
                }
                if !straggler_fired {
                    ctx.set_timer(wait);
                    return Advance::Park;
                }
            }
            // Overall deadline passed (or stragglers faulted): fall through
            // to completion with whatever arrived.
        }

        // Completion (the code after the old wait loop).
        ctx.clear_timer();
        if let Some(t) = &self.telemetry {
            t.merge_us.record_duration(self.t0.elapsed());
        }
        // Anything still incomplete at the overall deadline is faulted too:
        // ejected in degraded mode, left for the diff to flag under sever.
        if self.degrade.ejects() && !self.engine.exchange_ready() {
            for i in 0..self.instances.len() {
                if self.engine.is_active(i) && !self.engine.instance_complete(i) {
                    self.eject(i, ctx);
                }
            }
        }
        // Survivor floor: diffing needs at least two live instances.
        if below_survivor_floor(self.engine.active_count(), self.degrade) {
            self.stats.severed.fetch_add(1, Ordering::Relaxed);
            self.flush_forwards();
            self.sever();
            return Advance::Finish;
        }
        if self.engine.active_count() == 1 {
            // Lone-survivor pass-through: the exchange is answered
            // unchecked and counted as a warning.
            self.stats.pass_through.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.degraded.as_deref() {
                t.pass_through.inc();
            }
        }
        // De-noise + Diff + Respond. Pipelined batches consume one exchange
        // unit per pass; the classic path takes everything buffered, so a
        // surplus frame still diffs against the exchange that provoked it.
        let finished = if self.pipelined {
            self.engine.finish_exchange_unit()
        } else {
            self.engine.finish_exchange()
        };
        let outcome = match finished {
            Ok(outcome) => outcome,
            Err(_) => {
                self.flush_forwards();
                self.sever();
                return Advance::Finish;
            }
        };
        self.stats.exchanges.fetch_add(1, Ordering::Relaxed);
        if outcome.report.diverged() {
            self.stats.divergences.fetch_add(1, Ordering::Relaxed);
        }
        // Quorum voting: instances outvoted by the winning group are
        // quarantined (eligible for a rejoin probe next exchange).
        for &i in &outcome.quarantined {
            self.quarantine(i, ctx);
        }
        if let Some(t) = &self.telemetry {
            t.exchange_us.record_duration(self.exchange_start.elapsed());
        }
        match outcome.forward {
            Some(bytes) => {
                // Forwards for a batch accumulate and reach the client in
                // one write once every unit is answered.
                self.forward_buf.extend_from_slice(&bytes);
            }
            None => {
                self.stats.severed.fetch_add(1, Ordering::Relaxed);
                self.flush_forwards();
                self.sever();
                return Advance::Finish;
            }
        }
        self.units_done += 1;
        if self.units_done < self.units {
            self.begin_unit();
            // Data for the next unit may already be buffered in the engine.
            return Advance::Again;
        }

        // Batch complete: flush forwards, then back to gathering (or stop).
        if !self.forward_buf.is_empty() {
            let flushed = self.client.write_all(&self.forward_buf);
            self.forward_buf.clear();
            if flushed.is_err() {
                return Advance::Finish;
            }
        }
        if self.throttled_stop {
            self.sever();
            return Advance::Finish;
        }
        if self.hard_stop {
            return Advance::Finish;
        }
        self.state = InState::Gather;
        Advance::Again
    }

    /// Probes every ejected instance once: a successful re-dial plus
    /// readiness registration is the warm-up check that readmits the
    /// replica into the diff set.
    fn attempt_rejoins(&mut self, ctx: &mut Ctx<'_>) {
        let instances = Arc::clone(&self.instances);
        for (i, addr) in instances.iter().enumerate() {
            if self.engine.is_active(i) {
                continue;
            }
            let Ok(mut conn) = self.net.dial(addr) else {
                continue;
            };
            if !ctx.register(&mut conn, i as u64) {
                continue;
            }
            if let Some(p) = self.pending_close.get_mut(i) {
                *p = false;
            }
            if let Some(c) = self.closed_seen.get_mut(i) {
                *c = false;
            }
            if let Some(slot) = self.roster.writers.get_mut(i) {
                *slot = Some(conn);
            }
            self.engine.readmit(i);
            self.stats.rejoined.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.degraded.as_deref() {
                t.rejoins.inc();
                t.degraded_depth.add(-1);
            }
        }
    }

    /// Writes any accumulated batch forwards to the client before the
    /// session is severed, so units answered ahead of a mid-batch sever
    /// still reach the client in order.
    fn flush_forwards(&mut self) {
        if !self.forward_buf.is_empty() {
            // Best-effort on a session being severed anyway; a failed write
            // changes nothing. rddr-analyze: allow(error-swallow)
            let _ = self.client.write_all(&self.forward_buf);
            self.forward_buf.clear();
        }
    }

    /// Severs the session: optionally sends the HTTP intervention page, then
    /// closes the client and all remaining instance connections.
    fn sever(&mut self) {
        if self.is_http {
            // Best-effort courtesy page on a connection being severed
            // anyway; a failed write changes nothing.
            // rddr-analyze: allow(error-swallow)
            let _ = self.client.write_all(INTERVENTION_PAGE.as_bytes());
        }
        self.client.shutdown();
        self.roster.shutdown_all();
    }
}

impl SessionTask for InSession {
    fn init(&mut self, ctx: &mut Ctx<'_>) -> Flow {
        // Dial every instance. Under the default sever policy any
        // unreachable instance aborts the whole session; under an eject
        // policy it is ejected and the session starts degraded, as long as
        // enough survivors remain.
        let instances = Arc::clone(&self.instances);
        for (i, addr) in instances.iter().enumerate() {
            match self.net.dial(addr) {
                Ok(conn) => {
                    if let Some(slot) = self.roster.writers.get_mut(i) {
                        *slot = Some(conn);
                    }
                }
                Err(_) if self.degrade.ejects() => self.eject(i, ctx),
                Err(_) => return Flow::Done,
            }
        }
        if below_survivor_floor(self.engine.active_count(), self.degrade) {
            return Flow::Done;
        }
        if !ctx.register(&mut self.client, SLOT_PRIMARY) {
            return Flow::Done;
        }
        for i in 0..self.roster.writers.len() {
            let registered = match self.roster.writers.get_mut(i).and_then(|s| s.as_mut()) {
                Some(conn) => ctx.register(conn, i as u64),
                None => true, // already ejected
            };
            if !registered {
                if self.degrade.ejects() {
                    self.eject(i, ctx);
                } else {
                    return Flow::Done;
                }
            }
        }
        if below_survivor_floor(self.engine.active_count(), self.degrade) {
            return Flow::Done;
        }
        Flow::Continue
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Flow {
        self.drain(ctx);
        loop {
            let advance = match self.state {
                InState::Gather => self.gather(ctx),
                InState::Merge => self.merge(ctx),
            };
            match advance {
                Advance::Again => continue,
                Advance::Park => return Flow::Continue,
                Advance::Finish => return Flow::Done,
            }
        }
    }

    fn teardown(&mut self) {
        self.client.shutdown();
        self.roster.shutdown_all();
        // The gauge tracks currently-ejected instances; a session that ends
        // while degraded returns its contribution.
        if let Some(t) = self.degraded.as_deref() {
            let depth = self
                .instances
                .len()
                .saturating_sub(self.engine.active_count());
            if depth > 0 {
                t.degraded_depth.add(-(depth as i64));
            }
        }
    }

    fn state_ordinal(&self) -> u64 {
        match self.state {
            InState::Gather => 0,
            InState::Merge => 1,
        }
    }
}
