//! The `rddr` command-line proxy — the deployable artifact shape of the
//! paper's open-source release: one container image, configured by file,
//! speaking real TCP.
//!
//! ```text
//! rddr incoming --config rddr.conf --listen 0.0.0.0:8080 \
//!      --instances 10.0.0.1:8080,10.0.0.2:8080,10.0.0.3:8080
//!
//! rddr outgoing --config rddr.conf --listen 0.0.0.0:5432 \
//!      --backend 10.0.0.9:5432
//! ```
//!
//! The config file format is documented on [`rddr_core::ConfigFile`]; the
//! `instances` count in the file must match the `--instances` list.

use std::sync::Arc;

use rddr_core::ConfigFile;
use rddr_net::{ServiceAddr, TcpNet};
use rddr_proxy::{protocol_factory, IncomingProxy, OutgoingProxy};

fn usage() -> ! {
    eprintln!(
        "usage:\n  rddr incoming --config <file> --listen <host:port> --instances <a:p,b:p,…>\n  rddr outgoing --config <file> --listen <host:port> --backend <host:port>"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_addr(text: &str) -> ServiceAddr {
    text.parse().unwrap_or_else(|e| {
        eprintln!("bad address {text:?}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().cloned() else {
        usage();
    };
    let Some(config_path) = arg_value(&args, "--config") else {
        usage();
    };
    let Some(listen) = arg_value(&args, "--listen") else {
        usage();
    };
    let config_text = std::fs::read_to_string(&config_path).unwrap_or_else(|e| {
        eprintln!("cannot read {config_path}: {e}");
        std::process::exit(2);
    });
    let config = ConfigFile::parse(&config_text).unwrap_or_else(|e| {
        eprintln!("bad config {config_path}: {e}");
        std::process::exit(2);
    });
    let Some(protocol) = protocol_factory(&config.protocol) else {
        eprintln!("unknown protocol module {:?}", config.protocol);
        std::process::exit(2);
    };
    let listen = parse_addr(&listen);
    let net = Arc::new(TcpNet::new());

    match mode.as_str() {
        "incoming" => {
            let Some(instances) = arg_value(&args, "--instances") else {
                usage();
            };
            let instances: Vec<ServiceAddr> =
                instances.split(',').map(|a| parse_addr(a.trim())).collect();
            let proxy = IncomingProxy::start(net, &listen, instances, config.engine, protocol)
                .unwrap_or_else(|e| {
                    eprintln!("failed to start incoming proxy: {e}");
                    std::process::exit(1);
                });
            eprintln!(
                "rddr incoming proxy listening on {} ({} protocol)",
                proxy.listen_addr(),
                config.protocol
            );
            report_loop(|| format!("{:?}", proxy.stats()));
        }
        "outgoing" => {
            let Some(backend) = arg_value(&args, "--backend") else {
                usage();
            };
            let proxy =
                OutgoingProxy::start(net, &listen, parse_addr(&backend), config.engine, protocol)
                    .unwrap_or_else(|e| {
                        eprintln!("failed to start outgoing proxy: {e}");
                        std::process::exit(1);
                    });
            eprintln!(
                "rddr outgoing proxy listening on {} ({} protocol)",
                proxy.listen_addr(),
                config.protocol
            );
            report_loop(|| format!("{:?}", proxy.stats()));
        }
        _ => usage(),
    }
}

/// Blocks forever, logging proxy stats once a minute.
fn report_loop(stats: impl Fn() -> String) -> ! {
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
        eprintln!("rddr: {}", stats());
    }
}
