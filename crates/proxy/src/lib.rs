//! The RDDR proxies (§IV-B, Figure 2 of the paper).
//!
//! "Architecturally, RDDR can be visualized as a set of proxies which sit on
//! either side of the N instances of the protected microservice. Both
//! proxies operate at the transport/socket layer."
//!
//! * [`IncomingProxy`] — "handles request traffic sent to the protected
//!   microservices": replicates each client request to all N instances,
//!   diffs their responses through an [`rddr_core::NVersionEngine`], and
//!   either forwards the unanimous answer or severs the connection.
//! * [`OutgoingProxy`] — "a dual of the Incoming Request Proxy": accepts the
//!   N instances' connections to a downstream microservice, verifies their
//!   requests agree, forwards a single merged copy to the real backend, and
//!   replicates the backend's answer to every instance. One outgoing proxy
//!   is deployed per distinct downstream service.
//!
//! Both proxies run their sessions as explicit state machines on a
//! readiness-driven reactor (a fixed pool of O(cores) worker threads per
//! proxy; see `reactor`): only the accept loop keeps a dedicated thread, so
//! thread count stays flat as concurrent sessions grow. They are
//! transport-agnostic: they run over the in-memory [`rddr_net::SimNet`] or
//! real TCP unchanged.
//!
//! # Examples
//!
//! Protecting a 2-version echo service:
//!
//! ```
//! use std::sync::Arc;
//! use rddr_core::EngineConfig;
//! use rddr_net::{Network, SimNet, ServiceAddr, Stream};
//! use rddr_proxy::{IncomingProxy, ProtocolFactory};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = SimNet::new();
//! // Two diverse "instances" that happen to agree.
//! for port in [9000, 9001] {
//!     let mut l = net.listen(&ServiceAddr::new("echo", port))?;
//!     std::thread::spawn(move || {
//!         while let Ok(mut conn) = l.accept() {
//!             std::thread::spawn(move || {
//!                 let mut buf = [0u8; 64];
//!                 while let Ok(n) = conn.read(&mut buf) {
//!                     if n == 0 { break; }
//!                     if conn.write_all(&buf[..n]).is_err() { break; }
//!                 }
//!             });
//!         }
//!     });
//! }
//! let protocol: ProtocolFactory =
//!     Arc::new(|| Box::new(rddr_core::protocol::LineProtocol::new()));
//! let proxy = IncomingProxy::start(
//!     Arc::new(net.clone()),
//!     &ServiceAddr::new("rddr", 80),
//!     vec![ServiceAddr::new("echo", 9000), ServiceAddr::new("echo", 9001)],
//!     EngineConfig::builder(2).build()?,
//!     protocol,
//! )?;
//! let mut client = net.dial(&ServiceAddr::new("rddr", 80))?;
//! client.write_all(b"ping\n")?;
//! let mut buf = [0u8; 5];
//! client.read_exact(&mut buf)?;
//! assert_eq!(&buf, b"ping\n");
//! drop(proxy);
//! # Ok(())
//! # }
//! ```

pub mod deploy;
mod incoming;
mod outgoing;
mod plumbing;
mod reactor;

pub use deploy::{n_version, n_version_with_telemetry, NVersionedService, Variant};
pub use incoming::IncomingProxy;
pub use outgoing::OutgoingProxy;
pub use plumbing::{
    protocol_factory, ProtocolFactory, ProxyError, ProxyStats, ProxyTelemetry, StatsSnapshot,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ProxyError>;
