//! Smoke tests for the `rddr` CLI binary: argument handling, config-file
//! loading, and an end-to-end run over real TCP.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};

fn rddr_bin() -> &'static str {
    env!("CARGO_BIN_EXE_rddr")
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let out = Command::new(rddr_bin()).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn bad_config_is_reported() {
    let dir = std::env::temp_dir().join("rddr-cli-test-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let config = dir.join("bad.conf");
    std::fs::write(&config, "instances = banana").unwrap();
    let out = Command::new(rddr_bin())
        .args([
            "incoming",
            "--config",
            config.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--instances",
            "127.0.0.1:1",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad config"));
}

/// Starts a real TCP line-echo server, returning its port.
fn spawn_echo(transform: &'static str) -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(conn) = conn else { return };
            std::thread::spawn(move || {
                let mut reader = BufReader::new(conn.try_clone().unwrap());
                let mut conn = conn;
                let mut line = String::new();
                while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                    let reply = format!("{transform}:{}", line.trim_end());
                    if conn.write_all(format!("{reply}\n").as_bytes()).is_err() {
                        return;
                    }
                    line.clear();
                }
            });
        }
    });
    port
}

#[test]
fn incoming_proxy_runs_end_to_end_over_tcp() {
    let port_a = spawn_echo("echo");
    let port_b = spawn_echo("echo");

    let dir = std::env::temp_dir().join("rddr-cli-test-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let config = dir.join("rddr.conf");
    std::fs::write(
        &config,
        "instances = 2\nprotocol = line\nresponse_deadline_ms = 3000\n",
    )
    .unwrap();

    let mut child = Command::new(rddr_bin())
        .args([
            "incoming",
            "--config",
            config.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--instances",
            &format!("127.0.0.1:{port_a},127.0.0.1:{port_b}"),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("proxy starts");

    // The proxy announces its resolved address on stderr.
    let mut stderr = BufReaderLine::new(child.stderr.take().unwrap());
    let announce = stderr.next_line();
    let port: u16 = announce
        .split("127.0.0.1:")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|p| p.parse().ok())
        .unwrap_or_else(|| panic!("no port in announcement: {announce}"));

    let mut conn = TcpStream::connect(("127.0.0.1", port)).expect("dial proxy");
    conn.write_all(b"ping\n").unwrap();
    let mut reply = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = conn.read(&mut byte).unwrap();
        assert!(n > 0, "proxy closed unexpectedly");
        if byte[0] == b'\n' {
            break;
        }
        reply.push(byte[0]);
    }
    assert_eq!(reply, b"echo:ping");

    child.kill().unwrap();
    let _ = child.wait();
}

/// Line-reader over a child's stderr.
struct BufReaderLine<R> {
    inner: BufReader<R>,
}

impl<R: std::io::Read> BufReaderLine<R> {
    fn new(r: R) -> Self {
        Self {
            inner: BufReader::new(r),
        }
    }

    fn next_line(&mut self) -> String {
        let mut line = String::new();
        self.inner.read_line(&mut line).expect("stderr line");
        line
    }
}
