//! End-to-end tests for the RDDR proxies over the simulated network.

use std::sync::Arc;
use std::time::Duration;

use rddr_core::protocol::LineProtocol;
use rddr_core::EngineConfig;
use rddr_net::{BoxStream, Network, ServiceAddr, SimNet, Stream};
use rddr_proxy::{IncomingProxy, OutgoingProxy, ProtocolFactory};

fn line_protocol() -> ProtocolFactory {
    Arc::new(|| Box::new(LineProtocol::new()))
}

/// Serves `f(line) -> reply-line` per request line, one thread per client.
fn spawn_line_server(
    net: &SimNet,
    addr: ServiceAddr,
    f: impl Fn(&str) -> String + Send + Sync + Clone + 'static,
) {
    let mut listener = net.listen(&addr).unwrap();
    std::thread::spawn(move || {
        while let Ok(conn) = listener.accept() {
            let f = f.clone();
            std::thread::spawn(move || serve_lines(conn, f));
        }
    });
}

fn serve_lines(mut conn: BoxStream, f: impl Fn(&str) -> String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let reply = f(&text);
            if conn.write_all(format!("{reply}\n").as_bytes()).is_err() {
                return;
            }
        }
    }
}

fn read_line(conn: &mut BoxStream) -> Option<String> {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match conn.read(&mut byte) {
            Ok(0) | Err(_) => {
                return if out.is_empty() {
                    None
                } else {
                    Some(lossy(&out))
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Some(lossy(&out));
                }
                out.push(byte[0]);
            }
        }
    }
}

fn lossy(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

#[test]
fn incoming_proxy_forwards_unanimous_responses() {
    let net = SimNet::new();
    for port in [9000, 9001, 9002] {
        spawn_line_server(&net, ServiceAddr::new("svc", port), |req| {
            format!("echo:{req}")
        });
    }
    let _proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        (9000..9003).map(|p| ServiceAddr::new("svc", p)).collect(),
        EngineConfig::builder(3).build().unwrap(),
        line_protocol(),
    )
    .unwrap();

    let mut client = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    for i in 0..5 {
        client.write_all(format!("req{i}\n").as_bytes()).unwrap();
        assert_eq!(
            read_line(&mut client).as_deref(),
            Some(format!("echo:req{i}").as_str())
        );
    }
}

#[test]
fn incoming_proxy_severs_on_divergence() {
    let net = SimNet::new();
    spawn_line_server(&net, ServiceAddr::new("svc", 9000), |req| {
        format!("ok:{req}")
    });
    spawn_line_server(&net, ServiceAddr::new("svc", 9001), |req| {
        if req.contains("exploit") {
            format!("ok:{req} AND-THE-WHOLE-USER-TABLE")
        } else {
            format!("ok:{req}")
        }
    });
    let proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        vec![ServiceAddr::new("svc", 9000), ServiceAddr::new("svc", 9001)],
        EngineConfig::builder(2).build().unwrap(),
        line_protocol(),
    )
    .unwrap();

    // Benign request passes.
    let mut client = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    client.write_all(b"hello\n").unwrap();
    assert_eq!(read_line(&mut client).as_deref(), Some("ok:hello"));

    // Exploit diverges: connection severed, leak never reaches the client.
    client.write_all(b"exploit\n").unwrap();
    let leaked = read_line(&mut client);
    assert!(
        leaked.is_none() || !leaked.as_deref().unwrap().contains("USER-TABLE"),
        "leak must not reach the client: {leaked:?}"
    );
    // Poll the stats until the session thread records the severance.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        let s = proxy.stats();
        if s.severed == 1 && s.divergences == 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "stats: {s:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn incoming_proxy_filter_pair_suppresses_noise() {
    let net = SimNet::new();
    // Filter pair: same "software", per-instance random session suffix.
    for (port, salt) in [(9000, "aaa111"), (9001, "bbb222"), (9002, "ccc333")] {
        spawn_line_server(&net, ServiceAddr::new("svc", port), move |req| {
            format!("body:{req} sid={salt}")
        });
    }
    let _proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        (9000..9003).map(|p| ServiceAddr::new("svc", p)).collect(),
        EngineConfig::builder(3).filter_pair(0, 1).build().unwrap(),
        line_protocol(),
    )
    .unwrap();

    let mut client = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    client.write_all(b"x\n").unwrap();
    let reply = read_line(&mut client).expect("noise must be filtered, not severed");
    assert!(reply.starts_with("body:x sid="));
}

#[test]
fn incoming_proxy_times_out_hung_instance() {
    let net = SimNet::new();
    spawn_line_server(&net, ServiceAddr::new("svc", 9000), |req| {
        format!("ok:{req}")
    });
    // Instance 1 accepts but never answers (runaway CPU bug, §IV-D).
    let mut hung = net.listen(&ServiceAddr::new("svc", 9001)).unwrap();
    std::thread::spawn(move || {
        let mut conns = Vec::new();
        while let Ok(conn) = hung.accept() {
            conns.push(conn); // hold the connection open, never reply
        }
    });
    let proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        vec![ServiceAddr::new("svc", 9000), ServiceAddr::new("svc", 9001)],
        EngineConfig::builder(2)
            .response_deadline(Duration::from_millis(200))
            .build()
            .unwrap(),
        line_protocol(),
    )
    .unwrap();

    let mut client = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    client.write_all(b"probe\n").unwrap();
    let t0 = std::time::Instant::now();
    let reply = read_line(&mut client);
    assert!(reply.is_none(), "timeout must sever, got {reply:?}");
    assert!(t0.elapsed() < Duration::from_secs(5));
    let s = proxy.stats();
    assert_eq!(s.exchanges, 1);
}

#[test]
fn incoming_proxy_throttles_repeated_diverging_input() {
    let net = SimNet::new();
    spawn_line_server(&net, ServiceAddr::new("svc", 9000), |req| {
        format!("a:{req}")
    });
    spawn_line_server(&net, ServiceAddr::new("svc", 9001), |req| {
        if req == "evil" {
            "DIVERGE".to_string()
        } else {
            format!("a:{req}")
        }
    });
    let proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        vec![ServiceAddr::new("svc", 9000), ServiceAddr::new("svc", 9001)],
        EngineConfig::builder(2).throttle(0).build().unwrap(),
        line_protocol(),
    )
    .unwrap();

    // First exploit: detected and severed.
    let mut c1 = net.dial(&ServiceAddr::new("rddr", 80)).unwrap();
    c1.write_all(b"evil\n").unwrap();
    assert!(read_line(&mut c1).is_none());

    // NOTE: the throttle is per-connection state in this implementation —
    // per the paper's signature-generation sketch, repeats *on the same
    // session* are refused without replication.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while proxy.stats().severed < 1 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn outgoing_proxy_merges_consistent_requests() {
    let net = SimNet::new();
    // Backend counts requests; identical queries from N instances must reach
    // it exactly once.
    let backend_hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let hits = Arc::clone(&backend_hits);
    let mut backend_listener = net.listen(&ServiceAddr::new("db", 5432)).unwrap();
    std::thread::spawn(move || {
        while let Ok(conn) = backend_listener.accept() {
            let hits = Arc::clone(&hits);
            std::thread::spawn(move || {
                serve_lines(conn, move |req| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    format!("result:{req}")
                })
            });
        }
    });

    let _proxy = OutgoingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr-out", 5432),
        ServiceAddr::new("db", 5432),
        EngineConfig::builder(3).build().unwrap(),
        line_protocol(),
    )
    .unwrap();

    // Three "instances" connect and issue the same query.
    let mut instances: Vec<BoxStream> = (0..3)
        .map(|_| net.dial(&ServiceAddr::new("rddr-out", 5432)).unwrap())
        .collect();
    for inst in &mut instances {
        inst.write_all(b"SELECT 1\n").unwrap();
    }
    for inst in &mut instances {
        assert_eq!(read_line(inst).as_deref(), Some("result:SELECT 1"));
    }
    assert_eq!(
        backend_hits.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "requests must be merged, not triplicated"
    );
}

#[test]
fn outgoing_proxy_severs_on_request_divergence() {
    let net = SimNet::new();
    spawn_line_server(&net, ServiceAddr::new("db", 5432), |req| format!("r:{req}"));
    let proxy = OutgoingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr-out", 5432),
        ServiceAddr::new("db", 5432),
        EngineConfig::builder(2)
            .response_deadline(Duration::from_millis(300))
            .build()
            .unwrap(),
        line_protocol(),
    )
    .unwrap();

    let mut a = net.dial(&ServiceAddr::new("rddr-out", 5432)).unwrap();
    let mut b = net.dial(&ServiceAddr::new("rddr-out", 5432)).unwrap();
    // The sanitizing instance sends a clean query; the vulnerable one sends
    // the injected query (the paper's DVWA SQL-injection scenario §V-B).
    a.write_all(b"SELECT name FROM users WHERE id='1'\n")
        .unwrap();
    b.write_all(b"SELECT name FROM users WHERE id='1' OR 1=1\n")
        .unwrap();
    assert!(
        read_line(&mut a).is_none(),
        "divergent query must be blocked"
    );
    assert!(read_line(&mut b).is_none());
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while proxy.stats().severed < 1 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn proxy_rejects_mismatched_instance_count() {
    let net = SimNet::new();
    let err = IncomingProxy::start(
        Arc::new(net),
        &ServiceAddr::new("rddr", 80),
        vec![ServiceAddr::new("svc", 1)],
        EngineConfig::builder(2).build().unwrap(),
        line_protocol(),
    );
    assert!(err.is_err());
}

#[test]
fn proxy_stop_unbinds_listen_address() {
    let net = SimNet::new();
    spawn_line_server(&net, ServiceAddr::new("svc", 9000), |r| r.to_string());
    spawn_line_server(&net, ServiceAddr::new("svc", 9001), |r| r.to_string());
    let mut proxy = IncomingProxy::start(
        Arc::new(net.clone()),
        &ServiceAddr::new("rddr", 80),
        vec![ServiceAddr::new("svc", 9000), ServiceAddr::new("svc", 9001)],
        EngineConfig::builder(2).build().unwrap(),
        line_protocol(),
    )
    .unwrap();
    proxy.stop();
    assert!(net.dial(&ServiceAddr::new("rddr", 80)).is_err());
}
