//! Transport substrate for the RDDR reproduction.
//!
//! The paper's proxies "operate at the transport/socket layer, bind to an IP
//! and one or more ports to await incoming connections" (§IV-B). This crate
//! provides that layer twice behind one set of traits:
//!
//! * [`SimNet`] — an in-memory network with named endpoints, deterministic
//!   optional latency, and per-network byte counters. All evaluation harnesses
//!   run on it so results are reproducible on any machine.
//! * [`TcpNet`] — a thin adapter over `std::net` for running the same
//!   deployments over real sockets.
//!
//! A toy authenticated keystream channel ([`secure::SecureStream`]) stands in
//! for the paper's SSL/TLS support (see `DESIGN.md`, substitution ledger).
//!
//! # Examples
//!
//! ```
//! use rddr_net::{Network, SimNet, ServiceAddr};
//!
//! # fn main() -> Result<(), rddr_net::NetError> {
//! let net = SimNet::new();
//! let addr = ServiceAddr::new("echo", 7);
//! let mut listener = net.listen(&addr)?;
//! let handle = std::thread::spawn(move || {
//!     let mut conn = listener.accept().unwrap();
//!     let mut buf = [0u8; 5];
//!     conn.read_exact(&mut buf).unwrap();
//!     conn.write_all(&buf).unwrap();
//! });
//! let mut client = net.dial(&addr)?;
//! client.write_all(b"hello")?;
//! let mut buf = [0u8; 5];
//! client.read_exact(&mut buf)?;
//! assert_eq!(&buf, b"hello");
//! handle.join().unwrap();
//! # Ok(())
//! # }
//! ```

mod addr;
mod duplex;
mod error;
pub mod fault;
pub mod poll;
pub mod secure;
mod sim;
mod stream;
mod tcp;

pub use addr::ServiceAddr;
pub use duplex::{duplex_pair, DuplexStream};
pub use error::NetError;
pub use fault::{
    ChaosProfile, ConnSelector, Fault, FaultNet, FaultPlan, FaultStats, StorageChaosProfile,
    StorageFault,
};
pub use poll::{Poller, Readiness, Token, TryRead};
pub use secure::{PresharedKey, SecureListener, SecureNet, SecureStream};
pub use sim::{LatencyModel, NetStats, SimNet};
pub use stream::{BoxListener, BoxStream, Listener, Network, Stream};
pub use tcp::TcpNet;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;
