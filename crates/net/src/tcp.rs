use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

use crate::{BoxListener, BoxStream, Listener, Network, Result, ServiceAddr, Stream};

/// A [`Network`] backed by the operating system's TCP stack.
///
/// Deployments written against [`Network`] run unchanged over real sockets;
/// this is the backend a production RDDR deployment would use (one proxy
/// container per protected service, as in the paper's Kubernetes setup).
///
/// # Examples
///
/// ```
/// use rddr_net::{Network, TcpNet, ServiceAddr};
///
/// # fn main() -> Result<(), rddr_net::NetError> {
/// let net = TcpNet::new();
/// let mut listener = net.listen(&ServiceAddr::new("127.0.0.1", 0))?;
/// let bound = listener.local_addr();
/// let handle = std::thread::spawn(move || {
///     let mut conn = listener.accept().unwrap();
///     let mut buf = [0u8; 2];
///     conn.read_exact(&mut buf).unwrap();
///     conn.write_all(&buf).unwrap();
/// });
/// let mut client = net.dial(&bound)?;
/// client.write_all(b"ok")?;
/// let mut buf = [0u8; 2];
/// client.read_exact(&mut buf)?;
/// handle.join().unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpNet;

impl TcpNet {
    /// Creates the TCP backend.
    pub fn new() -> Self {
        TcpNet
    }
}

struct TcpConn {
    inner: TcpStream,
    peer: String,
}

impl Stream for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        Ok(self.inner.read(buf)?)
    }

    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        Ok(self.inner.write_all(buf)?)
    }

    fn shutdown(&mut self) {
        let _ = self.inner.shutdown(Shutdown::Both);
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        let _ = self.inner.set_read_timeout(timeout);
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn try_clone(&self) -> Result<crate::BoxStream> {
        let inner = self.inner.try_clone()?;
        Ok(Box::new(TcpConn {
            inner,
            peer: self.peer.clone(),
        }))
    }
}

struct TcpAcceptor {
    inner: TcpListener,
    addr: ServiceAddr,
}

impl Listener for TcpAcceptor {
    fn accept(&mut self) -> Result<BoxStream> {
        let (stream, peer) = self.inner.accept()?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpConn {
            inner: stream,
            peer: peer.to_string(),
        }))
    }

    fn local_addr(&self) -> ServiceAddr {
        self.addr.clone()
    }
}

impl Network for TcpNet {
    fn listen(&self, addr: &ServiceAddr) -> Result<BoxListener> {
        let listener = TcpListener::bind((addr.host(), addr.port()))?;
        let local = listener.local_addr()?;
        Ok(Box::new(TcpAcceptor {
            inner: listener,
            addr: ServiceAddr::new(addr.host(), local.port()),
        }))
    }

    fn dial(&self, addr: &ServiceAddr) -> Result<BoxStream> {
        let stream = TcpStream::connect((addr.host(), addr.port()))?;
        stream.set_nodelay(true).ok();
        let peer = addr.to_string();
        Ok(Box::new(TcpConn {
            inner: stream,
            peer,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trip() {
        let net = TcpNet::new();
        let mut listener = net.listen(&ServiceAddr::new("127.0.0.1", 0)).unwrap();
        let bound = listener.local_addr();
        assert_ne!(bound.port(), 0, "ephemeral port must be resolved");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(b"world").unwrap();
        });
        let mut client = net.dial(&bound).unwrap();
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");
        server.join().unwrap();
    }

    #[test]
    fn dial_refused_port_errors() {
        let net = TcpNet::new();
        // Bind then immediately drop to find a very likely free port.
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = l.local_addr().unwrap().port();
        drop(l);
        let err = net.dial(&ServiceAddr::new("127.0.0.1", port));
        assert!(err.is_err());
    }
}
