use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

use crate::poll::{Readiness, TryRead};
use crate::{BoxListener, BoxStream, Listener, NetError, Network, Result, ServiceAddr, Stream};

/// A [`Network`] backed by the operating system's TCP stack.
///
/// Deployments written against [`Network`] run unchanged over real sockets;
/// this is the backend a production RDDR deployment would use (one proxy
/// container per protected service, as in the paper's Kubernetes setup).
///
/// # Examples
///
/// ```
/// use rddr_net::{Network, TcpNet, ServiceAddr};
///
/// # fn main() -> Result<(), rddr_net::NetError> {
/// let net = TcpNet::new();
/// let mut listener = net.listen(&ServiceAddr::new("127.0.0.1", 0))?;
/// let bound = listener.local_addr();
/// let handle = std::thread::spawn(move || {
///     let mut conn = listener.accept().unwrap();
///     let mut buf = [0u8; 2];
///     conn.read_exact(&mut buf).unwrap();
///     conn.write_all(&buf).unwrap();
/// });
/// let mut client = net.dial(&bound)?;
/// client.write_all(b"ok")?;
/// let mut buf = [0u8; 2];
/// client.read_exact(&mut buf)?;
/// handle.join().unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpNet;

impl TcpNet {
    /// Creates the TCP backend.
    pub fn new() -> Self {
        TcpNet
    }
}

struct TcpConn {
    inner: TcpStream,
    peer: String,
    /// Set once the socket has been switched to non-blocking for reactor
    /// use; `write_all` then has to ride out `WouldBlock` itself.
    nonblocking: bool,
}

impl Stream for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        Ok(self.inner.read(buf)?)
    }

    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        if !self.nonblocking {
            return Ok(self.inner.write_all(buf)?);
        }
        // Non-blocking socket: a full kernel send buffer surfaces as
        // WouldBlock; park in a one-shot poll(2) until writable. Reactor
        // sessions write merged responses inline, so this bounds the stall
        // to genuine peer backpressure.
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let mut rest = buf;
            while !rest.is_empty() {
                match self.inner.write(rest) {
                    Ok(0) => return Err(NetError::Closed),
                    Ok(n) => rest = rest.get(n..).unwrap_or(&[]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        crate::poll::wait_writable(
                            self.inner.as_raw_fd(),
                            Duration::from_secs(30),
                        )?;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            }
            Ok(())
        }
        #[cfg(not(unix))]
        Ok(self.inner.write_all(buf)?)
    }

    fn shutdown(&mut self) {
        let _ = self.inner.shutdown(Shutdown::Both);
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        let _ = self.inner.set_read_timeout(timeout);
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn try_clone(&self) -> Result<crate::BoxStream> {
        let inner = self.inner.try_clone()?;
        Ok(Box::new(TcpConn {
            inner,
            peer: self.peer.clone(),
            nonblocking: self.nonblocking,
        }))
    }

    #[cfg(unix)]
    fn poll_register(&mut self, readiness: Readiness) -> bool {
        use std::os::unix::io::AsRawFd;
        if self.inner.set_nonblocking(true).is_err() {
            return false;
        }
        self.nonblocking = true;
        readiness.register_fd(self.inner.as_raw_fd());
        true
    }

    fn try_read(&mut self, buf: &mut [u8]) -> Result<TryRead> {
        match self.inner.read(buf) {
            Ok(0) => Ok(TryRead::Eof),
            Ok(n) => Ok(TryRead::Data(n)),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                Ok(TryRead::WouldBlock)
            }
            Err(e) => Err(e.into()),
        }
    }
}

struct TcpAcceptor {
    inner: TcpListener,
    addr: ServiceAddr,
}

impl Listener for TcpAcceptor {
    fn accept(&mut self) -> Result<BoxStream> {
        let (stream, peer) = self.inner.accept()?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpConn {
            inner: stream,
            peer: peer.to_string(),
            nonblocking: false,
        }))
    }

    fn local_addr(&self) -> ServiceAddr {
        self.addr.clone()
    }
}

impl Network for TcpNet {
    fn listen(&self, addr: &ServiceAddr) -> Result<BoxListener> {
        let listener = TcpListener::bind((addr.host(), addr.port()))?;
        let local = listener.local_addr()?;
        Ok(Box::new(TcpAcceptor {
            inner: listener,
            addr: ServiceAddr::new(addr.host(), local.port()),
        }))
    }

    fn dial(&self, addr: &ServiceAddr) -> Result<BoxStream> {
        let stream = TcpStream::connect((addr.host(), addr.port()))?;
        stream.set_nodelay(true).ok();
        let peer = addr.to_string();
        Ok(Box::new(TcpConn {
            inner: stream,
            peer,
            nonblocking: false,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trip() {
        let net = TcpNet::new();
        let mut listener = net.listen(&ServiceAddr::new("127.0.0.1", 0)).unwrap();
        let bound = listener.local_addr();
        assert_ne!(bound.port(), 0, "ephemeral port must be resolved");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(b"world").unwrap();
        });
        let mut client = net.dial(&bound).unwrap();
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");
        server.join().unwrap();
    }

    #[test]
    fn dial_refused_port_errors() {
        let net = TcpNet::new();
        // Bind then immediately drop to find a very likely free port.
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = l.local_addr().unwrap().port();
        drop(l);
        let err = net.dial(&ServiceAddr::new("127.0.0.1", port));
        assert!(err.is_err());
    }
}
