use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::duplex::duplex_pair_counted;
use crate::{
    BoxListener, BoxStream, DuplexStream, Listener, NetError, Network, Result, ServiceAddr,
};

/// Connection-establishment latency injected by [`SimNet`].
///
/// Latency is applied once per `dial`, modelling in-cluster connection setup.
/// Jitter is drawn from a seeded RNG so runs are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyModel {
    /// No injected latency (the default).
    #[default]
    None,
    /// A fixed delay per connection.
    Fixed(Duration),
    /// A fixed delay plus uniform jitter in `[0, jitter]`.
    Jittered {
        /// Base delay applied to every connection.
        base: Duration,
        /// Maximum additional random delay.
        jitter: Duration,
    },
}

/// Aggregate traffic counters for a [`SimNet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total connections successfully established.
    pub connections: u64,
    /// Total bytes carried (both directions summed).
    pub bytes: u64,
    /// Dials that failed because nothing was listening.
    pub refused: u64,
}

struct Registry {
    listeners: HashMap<ServiceAddr, Sender<BoxStream>>,
    latency: LatencyModel,
    rng: StdRng,
}

/// An in-memory network fabric with named endpoints.
///
/// `SimNet` plays the role of the cluster network: services bind listeners
/// under `name:port` addresses and clients dial them by name, exactly as
/// containers resolve Kubernetes service names. All traffic stays in-process,
/// which makes the evaluation harnesses deterministic and portable.
///
/// Cloning is cheap; clones share the same fabric.
#[derive(Clone)]
pub struct SimNet {
    registry: Arc<Mutex<Registry>>,
    connections: Arc<AtomicU64>,
    bytes_a: Arc<AtomicU64>,
    bytes_b: Arc<AtomicU64>,
    refused: Arc<AtomicU64>,
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for SimNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNet {
    /// Creates an empty fabric with no injected latency.
    pub fn new() -> Self {
        Self::with_latency(LatencyModel::None)
    }

    /// Creates a fabric that injects the given connection latency.
    pub fn with_latency(latency: LatencyModel) -> Self {
        Self {
            registry: Arc::new(Mutex::new(Registry {
                listeners: HashMap::new(),
                latency,
                rng: StdRng::seed_from_u64(0x5eed_cafe),
            })),
            connections: Arc::new(AtomicU64::new(0)),
            bytes_a: Arc::new(AtomicU64::new(0)),
            bytes_b: Arc::new(AtomicU64::new(0)),
            refused: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Snapshot of the fabric-wide traffic counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            connections: self.connections.load(Ordering::Relaxed),
            bytes: self.bytes_a.load(Ordering::Relaxed) + self.bytes_b.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
        }
    }

    /// Removes the listener bound at `addr`, if any. Pending `accept`s see EOF.
    pub fn unbind(&self, addr: &ServiceAddr) {
        self.registry.lock().listeners.remove(addr);
    }

    fn latency_delay(&self) -> Option<Duration> {
        let mut reg = self.registry.lock();
        match reg.latency {
            LatencyModel::None => None,
            LatencyModel::Fixed(d) => Some(d),
            LatencyModel::Jittered { base, jitter } => {
                let extra = if jitter.is_zero() {
                    Duration::ZERO
                } else {
                    Duration::from_nanos(reg.rng.gen_range(0..=jitter.as_nanos() as u64))
                };
                Some(base + extra)
            }
        }
    }
}

struct SimListener {
    addr: ServiceAddr,
    incoming: Receiver<BoxStream>,
}

impl Listener for SimListener {
    fn accept(&mut self) -> Result<BoxStream> {
        self.incoming.recv().map_err(|_| NetError::Closed)
    }

    fn local_addr(&self) -> ServiceAddr {
        self.addr.clone()
    }
}

impl Network for SimNet {
    fn listen(&self, addr: &ServiceAddr) -> Result<BoxListener> {
        let (tx, rx) = unbounded();
        let mut reg = self.registry.lock();
        if reg.listeners.contains_key(addr) {
            return Err(NetError::AddressInUse(addr.to_string()));
        }
        reg.listeners.insert(addr.clone(), tx);
        Ok(Box::new(SimListener {
            addr: addr.clone(),
            incoming: rx,
        }))
    }

    fn dial(&self, addr: &ServiceAddr) -> Result<BoxStream> {
        let sender = {
            let reg = self.registry.lock();
            reg.listeners.get(addr).cloned()
        };
        let Some(sender) = sender else {
            self.refused.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::ConnectionRefused(addr.to_string()));
        };
        if let Some(delay) = self.latency_delay() {
            // Injected dial latency. rddr-analyze: allow(blocking-hot-path)
            std::thread::sleep(delay);
        }
        let (client, server): (DuplexStream, DuplexStream) = duplex_pair_counted(
            "client",
            &addr.to_string(),
            Arc::clone(&self.bytes_a),
            Arc::clone(&self.bytes_b),
        );
        sender
            .send(Box::new(server))
            .map_err(|_| NetError::ConnectionRefused(addr.to_string()))?;
        self.connections.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(client))
    }

    fn unbind_addr(&self, addr: &ServiceAddr) {
        self.unbind(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(name: &str) -> ServiceAddr {
        ServiceAddr::new(name, 80)
    }

    #[test]
    fn dial_unbound_is_refused() {
        let net = SimNet::new();
        assert!(matches!(
            net.dial(&addr("ghost")),
            Err(NetError::ConnectionRefused(_))
        ));
        assert_eq!(net.stats().refused, 1);
    }

    #[test]
    fn double_bind_is_rejected() {
        let net = SimNet::new();
        let _l = net.listen(&addr("svc")).unwrap();
        assert!(matches!(
            net.listen(&addr("svc")),
            Err(NetError::AddressInUse(_))
        ));
    }

    #[test]
    fn same_host_different_ports_coexist() {
        let net = SimNet::new();
        let _a = net.listen(&ServiceAddr::new("svc", 80)).unwrap();
        let _b = net.listen(&ServiceAddr::new("svc", 81)).unwrap();
    }

    #[test]
    fn end_to_end_echo_counts_bytes() {
        let net = SimNet::new();
        let mut listener = net.listen(&addr("echo")).unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 4];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(&buf).unwrap();
        });
        let mut client = net.dial(&addr("echo")).unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        client.read_exact(&mut buf).unwrap();
        server.join().unwrap();
        let stats = net.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.bytes, 8);
    }

    #[test]
    fn unbind_refuses_future_dials() {
        let net = SimNet::new();
        let _l = net.listen(&addr("svc")).unwrap();
        net.unbind(&addr("svc"));
        assert!(net.dial(&addr("svc")).is_err());
    }

    #[test]
    fn fixed_latency_slows_dial() {
        let net = SimNet::with_latency(LatencyModel::Fixed(Duration::from_millis(20)));
        let _l = net.listen(&addr("svc")).unwrap();
        let t0 = std::time::Instant::now();
        let _c = net.dial(&addr("svc")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn many_concurrent_clients() {
        let net = SimNet::new();
        let mut listener = net.listen(&addr("svc")).unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..16 {
                let mut conn = listener.accept().unwrap();
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1];
                    conn.read_exact(&mut buf).unwrap();
                    conn.write_all(&[buf[0] + 1]).unwrap();
                });
            }
        });
        let mut handles = Vec::new();
        for i in 0..16u8 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = net.dial(&addr("svc")).unwrap();
                c.write_all(&[i]).unwrap();
                let mut buf = [0u8; 1];
                c.read_exact(&mut buf).unwrap();
                assert_eq!(buf[0], i + 1);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.join().unwrap();
        assert_eq!(net.stats().connections, 16);
    }
}
