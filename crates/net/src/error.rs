use std::fmt;

/// Errors produced by the transport layer.
#[derive(Debug)]
pub enum NetError {
    /// The address string could not be parsed as `host:port`.
    BadAddress(String),
    /// No listener is registered for the dialed address.
    ConnectionRefused(String),
    /// The peer closed the connection (EOF where data was required).
    Closed,
    /// The connection was torn down mid-stream (injected fault or RST),
    /// as opposed to a clean shutdown-then-EOF ([`NetError::Closed`]).
    Reset,
    /// A blocking read exceeded the configured deadline.
    TimedOut,
    /// The address is already bound by another listener.
    AddressInUse(String),
    /// An underlying OS socket error (TCP backend only).
    Io(std::io::Error),
    /// Secure-channel handshake or integrity failure.
    Secure(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadAddress(s) => write!(f, "invalid address syntax: {s:?}"),
            NetError::ConnectionRefused(s) => write!(f, "connection refused: {s}"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Reset => write!(f, "connection reset mid-stream"),
            NetError::TimedOut => write!(f, "read timed out"),
            NetError::AddressInUse(s) => write!(f, "address already in use: {s}"),
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Secure(s) => write!(f, "secure channel failure: {s}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::TimedOut,
            std::io::ErrorKind::UnexpectedEof => NetError::Closed,
            std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => NetError::Reset,
            std::io::ErrorKind::ConnectionRefused => NetError::ConnectionRefused(e.to_string()),
            std::io::ErrorKind::AddrInUse => NetError::AddressInUse(e.to_string()),
            _ => NetError::Io(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }

    #[test]
    fn io_timeout_maps_to_timed_out() {
        let e: NetError = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into();
        assert!(matches!(e, NetError::TimedOut));
    }

    #[test]
    fn display_is_lowercase_and_concise() {
        let s = NetError::Closed.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
    }
}
