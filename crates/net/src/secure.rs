//! A toy authenticated keystream channel standing in for SSL/TLS.
//!
//! The paper's RDDR terminates SSL/TLS at the incoming proxy (§IV-B1, via
//! Python's `ssl` module). Real TLS is unavailable offline, so this module
//! implements the *shape* of that feature — a handshake that derives a session
//! key from a pre-shared secret, a per-byte keystream cipher, and a running
//! integrity check — over any [`Stream`]. It exercises the same code path in
//! the proxies (decrypt at ingress, diff plaintext, re-encrypt at egress).
//!
//! **This is not cryptographically secure.** It is an explicitly documented
//! simulation substitute; see `DESIGN.md`.

use crate::{NetError, Result, Stream};
use std::time::Duration;

const MAGIC: &[u8; 4] = b"RDR1";

/// Validates a 12-byte greeting (`MAGIC` + LE nonce) and extracts the nonce.
fn parse_greeting(greet: &[u8; 12]) -> Result<u64> {
    let (magic, nonce) = greet.split_at(4);
    if magic != MAGIC.as_slice() {
        return Err(NetError::Secure("peer is not an RDR1 endpoint".into()));
    }
    <[u8; 8]>::try_from(nonce)
        .map(u64::from_le_bytes)
        .map_err(|_| NetError::Secure("malformed greeting".into()))
}

/// A pre-shared secret from which session keys are derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresharedKey(Vec<u8>);

impl PresharedKey {
    /// Creates a key from arbitrary secret bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Secure`] if `secret` is empty.
    pub fn new(secret: impl Into<Vec<u8>>) -> Result<Self> {
        let secret = secret.into();
        if secret.is_empty() {
            return Err(NetError::Secure("empty pre-shared key".into()));
        }
        Ok(Self(secret))
    }
}

/// A splitmix64-based keystream generator. Deterministic per (key, nonce).
#[derive(Debug, Clone)]
struct Keystream {
    state: u64,
    buf: [u8; 8],
    used: usize,
}

impl Keystream {
    fn new(key: &[u8], nonce: u64) -> Self {
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ nonce;
        for &b in key {
            state = state
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(b));
        }
        Self {
            state,
            buf: [0; 8],
            used: 8,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_byte(&mut self) -> u8 {
        if self.used >= 8 {
            self.buf = self.next_u64().to_le_bytes();
            self.used = 0;
        }
        let b = self.buf.get(self.used).copied().unwrap_or(0);
        self.used += 1;
        b
    }

    fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            *b ^= self.next_byte();
        }
    }
}

/// A [`Stream`] wrapper that encrypts written bytes and decrypts read bytes.
///
/// Both peers must wrap their end with the same [`PresharedKey`]; the
/// initiator calls [`SecureStream::connect`], the acceptor
/// [`SecureStream::accept`]. The two sides exchange nonces during the
/// handshake and derive independent keystreams per direction. The
/// keystreams are shared behind locks so [`Stream::try_clone`] works — the
/// RDDR proxies need a read handle for their per-instance reader threads.
pub struct SecureStream<S> {
    inner: S,
    tx: std::sync::Arc<parking_lot::Mutex<Keystream>>,
    rx: std::sync::Arc<parking_lot::Mutex<Keystream>>,
}

impl<S: std::fmt::Debug> std::fmt::Debug for SecureStream<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureStream")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<S: Stream> SecureStream<S> {
    /// Performs the initiator side of the handshake.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Secure`] if the peer's greeting is malformed
    /// (e.g. the peer is not speaking this protocol or has a different key).
    pub fn connect(mut inner: S, key: &PresharedKey, nonce: u64) -> Result<Self> {
        inner.write_all(MAGIC)?;
        inner.write_all(&nonce.to_le_bytes())?;
        let mut greet = [0u8; 12];
        inner.read_exact(&mut greet)?;
        let peer_nonce = parse_greeting(&greet)?;
        let mut s = Self {
            inner,
            tx: std::sync::Arc::new(parking_lot::Mutex::new(Keystream::new(&key.0, nonce))),
            rx: std::sync::Arc::new(parking_lot::Mutex::new(Keystream::new(&key.0, peer_nonce))),
        };
        s.verify(key, nonce, peer_nonce)?;
        Ok(s)
    }

    /// Performs the acceptor side of the handshake.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Secure`] on a malformed greeting or key mismatch.
    pub fn accept(mut inner: S, key: &PresharedKey, nonce: u64) -> Result<Self> {
        let mut greet = [0u8; 12];
        inner.read_exact(&mut greet)?;
        let peer_nonce = parse_greeting(&greet)?;
        inner.write_all(MAGIC)?;
        inner.write_all(&nonce.to_le_bytes())?;
        let mut s = Self {
            inner,
            tx: std::sync::Arc::new(parking_lot::Mutex::new(Keystream::new(&key.0, nonce))),
            rx: std::sync::Arc::new(parking_lot::Mutex::new(Keystream::new(&key.0, peer_nonce))),
        };
        s.verify(key, nonce, peer_nonce)?;
        Ok(s)
    }

    /// Key-confirmation: each side sends an encrypted probe derived from both
    /// nonces; a mismatch means the pre-shared keys differ.
    fn verify(&mut self, key: &PresharedKey, my_nonce: u64, peer_nonce: u64) -> Result<()> {
        let _ = key;
        let mut probe = (my_nonce ^ peer_nonce ^ 0xA5A5_A5A5_A5A5_A5A5).to_le_bytes();
        self.tx.lock().apply(&mut probe);
        self.inner.write_all(&probe)?;
        let mut theirs = [0u8; 8];
        self.inner.read_exact(&mut theirs)?;
        self.rx.lock().apply(&mut theirs);
        let expected = (my_nonce ^ peer_nonce ^ 0xA5A5_A5A5_A5A5_A5A5).to_le_bytes();
        if theirs != expected {
            return Err(NetError::Secure("key confirmation failed".into()));
        }
        Ok(())
    }

    /// Consumes the wrapper, returning the underlying stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Stream> Stream for SecureStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.inner.read(buf)?;
        if let Some(filled) = buf.get_mut(..n) {
            self.rx.lock().apply(filled);
        }
        Ok(n)
    }

    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        let mut out = buf.to_vec();
        self.tx.lock().apply(&mut out);
        self.inner.write_all(&out)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.inner.set_read_timeout(timeout)
    }

    fn peer(&self) -> String {
        format!("secure({})", self.inner.peer())
    }

    fn try_clone(&self) -> Result<crate::BoxStream> {
        // The clone shares the keystream state, so reads and writes may be
        // split across threads (each direction's cipher stays in sequence
        // as long as only one thread uses that direction — exactly the
        // proxies' reader/writer split).
        Ok(Box::new(SecureStream {
            inner: self.inner.try_clone()?,
            tx: std::sync::Arc::clone(&self.tx),
            rx: std::sync::Arc::clone(&self.rx),
        }))
    }

    fn poll_register(&mut self, readiness: crate::poll::Readiness) -> bool {
        // The handshake already ran in connect/accept, so readiness is just
        // the inner transport's; decryption happens per try_read.
        self.inner.poll_register(readiness)
    }

    fn try_read(&mut self, buf: &mut [u8]) -> Result<crate::poll::TryRead> {
        let r = self.inner.try_read(buf)?;
        if let crate::poll::TryRead::Data(n) = r {
            if let Some(filled) = buf.get_mut(..n) {
                self.rx.lock().apply(filled);
            }
        }
        Ok(r)
    }
}

impl SecureStream<crate::BoxStream> {
    fn from_parts(
        inner: crate::BoxStream,
        tx: std::sync::Arc<parking_lot::Mutex<Keystream>>,
        rx: std::sync::Arc<parking_lot::Mutex<Keystream>>,
    ) -> Self {
        Self { inner, tx, rx }
    }
}

/// A [`crate::Listener`] that performs the acceptor-side handshake on every
/// inbound connection — "the Incoming Request Proxy … maintains the state
/// required to handle SSL/TLS connections" (§IV-B).
pub struct SecureListener {
    inner: crate::BoxListener,
    key: PresharedKey,
    nonce_counter: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for SecureListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureListener")
            .field("addr", &self.inner.local_addr())
            .finish()
    }
}

impl SecureListener {
    /// Wraps a listener; every accepted connection is handshaked with `key`.
    pub fn new(inner: crate::BoxListener, key: PresharedKey) -> Self {
        Self {
            inner,
            key,
            nonce_counter: std::sync::atomic::AtomicU64::new(1),
        }
    }
}

impl crate::Listener for SecureListener {
    fn accept(&mut self) -> Result<crate::BoxStream> {
        let conn = self.inner.accept()?;
        let nonce = self
            .nonce_counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let secured = SecureStream::accept(conn, &self.key, nonce)?;
        Ok(Box::new(secured))
    }

    fn local_addr(&self) -> crate::ServiceAddr {
        self.inner.local_addr()
    }
}

/// A [`crate::Network`] adapter that secures every connection with one
/// pre-shared key: `listen` wraps listeners in [`SecureListener`], `dial`
/// performs the initiator handshake. Running a whole deployment over
/// `SecureNet` exercises the paper's encrypted-transport path end to end.
pub struct SecureNet<N> {
    inner: N,
    key: PresharedKey,
    nonce_counter: std::sync::atomic::AtomicU64,
}

impl<N: std::fmt::Debug> std::fmt::Debug for SecureNet<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureNet")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<N: crate::Network> SecureNet<N> {
    /// Secures `inner` with `key`.
    pub fn new(inner: N, key: PresharedKey) -> Self {
        Self {
            inner,
            key,
            nonce_counter: std::sync::atomic::AtomicU64::new(0x1000_0001),
        }
    }
}

impl<N: crate::Network> crate::Network for SecureNet<N> {
    fn listen(&self, addr: &crate::ServiceAddr) -> Result<crate::BoxListener> {
        let inner = self.inner.listen(addr)?;
        Ok(Box::new(SecureListener::new(inner, self.key.clone())))
    }

    fn dial(&self, addr: &crate::ServiceAddr) -> Result<crate::BoxStream> {
        let conn = self.inner.dial(addr)?;
        let nonce = self
            .nonce_counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            .wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        let secured = SecureStream::connect(conn, &self.key, nonce)?;
        let (tx, rx) = (secured.tx, secured.rx);
        let inner = secured.inner;
        Ok(Box::new(SecureStream::from_parts(inner, tx, rx)))
    }

    fn unbind_addr(&self, addr: &crate::ServiceAddr) {
        self.inner.unbind_addr(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplex_pair;

    #[test]
    fn encrypted_round_trip() {
        let key = PresharedKey::new("hunter2").unwrap();
        let (a, b) = duplex_pair("a", "b");
        let key2 = key.clone();
        let server = std::thread::spawn(move || {
            let mut s = SecureStream::accept(b, &key2, 42).unwrap();
            let mut buf = [0u8; 6];
            s.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"secret");
            s.write_all(b"reply!").unwrap();
        });
        let mut c = SecureStream::connect(a, &key, 7).unwrap();
        c.write_all(b"secret").unwrap();
        let mut buf = [0u8; 6];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"reply!");
        server.join().unwrap();
    }

    #[test]
    fn bytes_on_the_wire_are_not_plaintext() {
        let key = PresharedKey::new("k").unwrap();
        let (a, mut b) = duplex_pair("a", "b");
        let writer = std::thread::spawn(move || {
            // Raw peer: just consume the handshake and capture ciphertext.
            let mut greet = [0u8; 12];
            b.read_exact(&mut greet).unwrap();
            b.write_all(b"RDR1").unwrap();
            b.write_all(&99u64.to_le_bytes()).unwrap();
            let mut probe = [0u8; 8];
            b.read_exact(&mut probe).unwrap();
            // Don't bother completing confirmation correctly; capture payload.
            b.write_all(&[0u8; 8]).unwrap();
            let mut wire = [0u8; 9];
            let _ = b.read_exact(&mut wire);
            wire
        });
        // Connect will fail key confirmation against our fake acceptor —
        // that's fine, we only assert ciphertext != plaintext when written.
        let res = SecureStream::connect(a, &key, 1);
        assert!(res.is_err(), "fake acceptor must fail confirmation");
        let _ = writer.join();
    }

    #[test]
    fn mismatched_keys_fail_confirmation() {
        let (a, b) = duplex_pair("a", "b");
        let server = std::thread::spawn(move || {
            let key = PresharedKey::new("alpha").unwrap();
            SecureStream::accept(b, &key, 2).is_err()
        });
        let key = PresharedKey::new("beta").unwrap();
        let client_err = SecureStream::connect(a, &key, 3).is_err();
        let server_err = server.join().unwrap();
        assert!(client_err && server_err);
    }

    #[test]
    fn empty_key_is_rejected() {
        assert!(PresharedKey::new(Vec::new()).is_err());
    }

    #[test]
    fn keystream_is_deterministic_per_key_nonce() {
        let mut a = Keystream::new(b"key", 5);
        let mut b = Keystream::new(b"key", 5);
        let mut x = [1u8, 2, 3, 4];
        let mut y = [1u8, 2, 3, 4];
        a.apply(&mut x);
        b.apply(&mut y);
        assert_eq!(x, y);
        let mut c = Keystream::new(b"key", 6);
        let mut z = [1u8, 2, 3, 4];
        c.apply(&mut z);
        assert_ne!(x, z, "different nonce must give different stream");
    }
}
