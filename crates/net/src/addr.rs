use std::fmt;
use std::str::FromStr;

use crate::NetError;

/// A named network endpoint: a service name plus a port.
///
/// In the simulated network, names play the role that DNS plays inside a
/// Kubernetes cluster: containers dial `postgres:5432` rather than an IP.
/// When running over [`crate::TcpNet`], the name must resolve via the host
/// resolver (use `"127.0.0.1"` for local tests).
///
/// # Examples
///
/// ```
/// use rddr_net::ServiceAddr;
///
/// let addr = ServiceAddr::new("postgres", 5432);
/// assert_eq!(addr.to_string(), "postgres:5432");
/// let parsed: ServiceAddr = "postgres:5432".parse().unwrap();
/// assert_eq!(parsed, addr);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceAddr {
    host: String,
    port: u16,
}

impl ServiceAddr {
    /// Creates an address from a host name and port.
    pub fn new(host: impl Into<String>, port: u16) -> Self {
        Self {
            host: host.into(),
            port,
        }
    }

    /// The host (service) name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port number.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Returns a copy of this address with a different port.
    ///
    /// Useful when a deployment exposes several related endpoints (the RDDR
    /// incoming proxy binds "one or more ports").
    pub fn with_port(&self, port: u16) -> Self {
        Self {
            host: self.host.clone(),
            port,
        }
    }
}

impl fmt::Display for ServiceAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

impl FromStr for ServiceAddr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (host, port) = s
            .rsplit_once(':')
            .ok_or_else(|| NetError::BadAddress(s.to_string()))?;
        if host.is_empty() {
            return Err(NetError::BadAddress(s.to_string()));
        }
        let port = port
            .parse::<u16>()
            .map_err(|_| NetError::BadAddress(s.to_string()))?;
        Ok(Self::new(host, port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        let a = ServiceAddr::new("gitlab-postgres", 5432);
        let b: ServiceAddr = a.to_string().parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_missing_port() {
        assert!("nginx".parse::<ServiceAddr>().is_err());
    }

    #[test]
    fn rejects_empty_host() {
        assert!(":80".parse::<ServiceAddr>().is_err());
    }

    #[test]
    fn rejects_non_numeric_port() {
        assert!("svc:http".parse::<ServiceAddr>().is_err());
    }

    #[test]
    fn with_port_keeps_host() {
        let a = ServiceAddr::new("db", 5432);
        let b = a.with_port(5433);
        assert_eq!(b.host(), "db");
        assert_eq!(b.port(), 5433);
    }
}
