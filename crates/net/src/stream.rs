use std::time::Duration;

use crate::poll::{Readiness, TryRead};
use crate::{NetError, Result, ServiceAddr};

/// A bidirectional, blocking byte stream — the socket abstraction both RDDR
/// proxies are written against.
///
/// Implementations must be [`Send`] so connections can be handed to worker
/// threads (the proxies are thread-per-connection, mirroring the paper's
/// Python implementation).
pub trait Stream: Send {
    /// Reads up to `buf.len()` bytes, blocking until at least one byte is
    /// available, EOF, or the configured read deadline expires.
    ///
    /// Returns `Ok(0)` on a clean EOF.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::TimedOut`] if a read deadline was set and expired.
    fn read(&mut self, buf: &mut [u8]) -> Result<usize>;

    /// Writes the entire buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] if the peer has hung up.
    fn write_all(&mut self, buf: &[u8]) -> Result<()>;

    /// Shuts the stream down in both directions. Subsequent peer reads see EOF.
    fn shutdown(&mut self);

    /// Sets (or clears) the deadline applied to each subsequent [`read`](Stream::read).
    fn set_read_timeout(&mut self, timeout: Option<Duration>);

    /// A human-readable description of the remote endpoint, for diagnostics.
    fn peer(&self) -> String;

    /// Creates a second handle to the same connection, so one thread can
    /// read while another writes (the RDDR proxies run a reader thread per
    /// instance connection).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the transport cannot be cloned (e.g. a
    /// stateful secure channel).
    fn try_clone(&self) -> Result<BoxStream> {
        Err(NetError::Io(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "stream does not support cloning",
        )))
    }

    /// Registers this stream with a reactor: subsequent readable bytes, EOF,
    /// or errors must wake `readiness`. Returns `false` if the transport
    /// cannot deliver readiness natively (callers then fall back to
    /// [`crate::poll::with_read_pump`] or a dedicated thread).
    ///
    /// After a successful registration the owner reads exclusively through
    /// [`try_read`](Stream::try_read), draining to
    /// [`TryRead::WouldBlock`] on every wake — wakes may be edge-triggered.
    fn poll_register(&mut self, readiness: Readiness) -> bool {
        let _ = readiness;
        false
    }

    /// Non-blocking read: returns immediately with data, EOF, or
    /// [`TryRead::WouldBlock`].
    ///
    /// Only meaningful after [`poll_register`](Stream::poll_register)
    /// returned `true` (or on transports that are intrinsically
    /// non-blocking).
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`read`](Stream::read); an unsupported
    /// transport reports [`NetError::Io`] with `ErrorKind::Unsupported`.
    fn try_read(&mut self, buf: &mut [u8]) -> Result<TryRead> {
        let _ = buf;
        Err(NetError::Io(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "stream does not support non-blocking reads",
        )))
    }

    /// Reads exactly `buf.len()` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] if EOF arrives first.
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            let Some(rest) = buf.get_mut(filled..) else {
                return Err(NetError::Closed);
            };
            let n = self.read(rest)?;
            if n == 0 {
                return Err(NetError::Closed);
            }
            filled += n;
        }
        Ok(())
    }
}

/// An owned, type-erased [`Stream`].
pub type BoxStream = Box<dyn Stream>;

/// Accepts inbound connections on one bound address.
pub trait Listener: Send {
    /// Blocks until a client connects.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] once the owning network shuts down.
    fn accept(&mut self) -> Result<BoxStream>;

    /// The address this listener is bound to.
    fn local_addr(&self) -> ServiceAddr;
}

/// An owned, type-erased [`Listener`].
pub type BoxListener = Box<dyn Listener>;

/// A network fabric: something that can bind listeners and dial peers.
///
/// Both [`crate::SimNet`] and [`crate::TcpNet`] implement this, so every
/// deployment in the evaluation can run in-memory or over real sockets
/// unchanged.
pub trait Network: Send + Sync {
    /// Binds a listener on `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AddressInUse`] if the address is taken.
    fn listen(&self, addr: &ServiceAddr) -> Result<BoxListener>;

    /// Opens a connection to `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] if nothing is listening.
    fn dial(&self, addr: &ServiceAddr) -> Result<BoxStream>;

    /// Releases the listener bound at `addr`, unblocking its `accept` loop.
    ///
    /// Fabrics with out-of-band teardown (plain TCP) may leave this a no-op;
    /// [`crate::SimNet`] implements it so proxies and containers can stop
    /// cleanly.
    fn unbind_addr(&self, addr: &ServiceAddr) {
        let _ = addr;
    }
}

impl Stream for Box<dyn Stream> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        (**self).read(buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        (**self).write_all(buf)
    }
    fn shutdown(&mut self) {
        (**self).shutdown()
    }
    fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        (**self).set_read_timeout(timeout)
    }
    fn peer(&self) -> String {
        (**self).peer()
    }
    fn try_clone(&self) -> Result<BoxStream> {
        (**self).try_clone()
    }
    fn poll_register(&mut self, readiness: Readiness) -> bool {
        (**self).poll_register(readiness)
    }
    fn try_read(&mut self, buf: &mut [u8]) -> Result<TryRead> {
        (**self).try_read(buf)
    }
}
