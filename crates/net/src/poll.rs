//! Poll-style readiness API over any [`Stream`](crate::Stream).
//!
//! A [`Poller`] multiplexes wake-up sources for one reactor worker thread:
//!
//! - **In-memory streams** ([`crate::DuplexStream`], and everything layered on
//!   top of it — SimNet, FaultNet, SecureNet) register a [`Readiness`] handle
//!   with the pipe they read from; the pipe's writer calls
//!   [`Readiness::wake`] whenever bytes (or EOF) arrive. These wakes are
//!   *edge-triggered*: consumers must drain with
//!   [`Stream::try_read`](crate::Stream::try_read) until `WouldBlock` on
//!   every wake.
//! - **Kernel sockets** ([`crate::TcpNet`] connections) register their raw fd
//!   via [`Readiness::register_fd`]; the poller watches them with `poll(2)`
//!   (no external event-loop crate — a ~30-line FFI shim). Kernel readiness
//!   is *level-triggered*: a readable fd reports ready on every poll until
//!   drained, so consumers must also drain to `WouldBlock` (and must
//!   [`Poller::deregister`] a token before dropping its stream, or a closed
//!   fd would report ready forever).
//! - **Timers** ([`Poller::set_timer`] / [`Readiness::wake_after`]) fire the
//!   token once the deadline passes — this is how read deadlines work when no
//!   thread blocks in `read` any more.
//!
//! When at least one fd is registered the poller parks in `poll(2)` and
//! in-memory wakes are delivered through a loopback UDP self-wake socket;
//! with no fds it parks on a condvar. Either way [`Poller::poll`] returns the
//! deduplicated set of woken [`Token`]s.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::{NetError, Result, Stream};

/// Identifies one wake-up source registered with a [`Poller`].
///
/// Tokens are opaque to the poller; reactors typically pack a session id and
/// a per-session slot into the `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u64);

/// Outcome of a non-blocking [`Stream::try_read`](crate::Stream::try_read).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRead {
    /// `n` bytes were read into the buffer.
    Data(usize),
    /// The peer has cleanly closed the stream.
    Eof,
    /// No data is available right now; a wake will follow when there is.
    WouldBlock,
}

#[cfg(unix)]
const POLLIN: i16 = 0x001;
#[cfg(unix)]
const POLLOUT: i16 = 0x004;

#[cfg(unix)]
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

#[cfg(unix)]
extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Waits (blocking) until `fd` is writable, via a one-shot `poll(2)`.
///
/// Used by non-blocking TCP streams to complete `write_all` without busy
/// spinning when the kernel send buffer is full.
///
/// # Errors
///
/// Returns [`NetError::TimedOut`] if the deadline expires first.
#[cfg(unix)]
pub fn wait_writable(fd: i32, timeout: Duration) -> Result<()> {
    let mut pfd = PollFd {
        fd,
        events: POLLOUT,
        revents: 0,
    };
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    // SAFETY: `pfd` is a valid pollfd for the duration of the call.
    let rc = unsafe { poll(&mut pfd, 1, ms) };
    if rc > 0 {
        Ok(())
    } else if rc == 0 {
        Err(NetError::TimedOut)
    } else {
        Err(NetError::Io(std::io::Error::last_os_error()))
    }
}

/// Loopback UDP pair used to interrupt a `poll(2)` park from another thread.
#[cfg(unix)]
struct Waker {
    tx: std::net::UdpSocket,
    rx: std::net::UdpSocket,
}

#[cfg(unix)]
impl Waker {
    fn new() -> Result<Self> {
        let rx = std::net::UdpSocket::bind(("127.0.0.1", 0))?;
        rx.set_nonblocking(true)?;
        let tx = std::net::UdpSocket::bind(("127.0.0.1", 0))?;
        tx.connect(rx.local_addr()?)?;
        tx.set_nonblocking(true)?;
        Ok(Self { tx, rx })
    }

    fn fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    fn wake(&self) {
        // A full socket buffer means a wake datagram is already pending, so
        // the syscall will return regardless; nothing to handle.
        // rddr-analyze: allow(error-swallow)
        let _ = self.tx.send(&[1]);
    }

    fn drain(&self) {
        let mut sink = [0u8; 16];
        while self.rx.recv(&mut sink).is_ok() {}
    }
}

struct PollState {
    /// Tokens woken since the last `poll` drain (deduplicated).
    queued: BTreeSet<u64>,
    /// Pending timers: `(deadline, seq) -> token`. The seq disambiguates
    /// equal deadlines. Holds both `wake_after` one-shots and the per-token
    /// replaceable `set_timer` deadline.
    timers: BTreeMap<(Instant, u64), u64>,
    /// Reverse index of the *replaceable* deadline per token:
    /// `token -> (deadline, seq)`. Keeps `set_timer`/`clear_timer` at
    /// O(log n) — a full-map sweep per call is quadratic once thousands of
    /// sessions re-arm a deadline every exchange.
    deadline: BTreeMap<u64, (Instant, u64)>,
    timer_seq: u64,
    /// Kernel fds under watch: `fd -> token`.
    fds: BTreeMap<i32, u64>,
    /// True while the owning thread is parked inside `poll(2)` (as opposed
    /// to the condvar) — tells wakers to poke the self-wake socket.
    in_syscall: bool,
    #[cfg(unix)]
    waker: Option<Waker>,
}

struct Shared {
    state: Mutex<PollState>,
    cond: Condvar,
}

impl Shared {
    #[cfg(unix)]
    fn wake_syscall(state: &mut PollState) {
        if state.in_syscall {
            if let Some(w) = &state.waker {
                w.wake();
            }
        }
    }

    #[cfg(not(unix))]
    fn wake_syscall(_state: &mut PollState) {}

    fn enqueue(&self, token: u64) {
        let mut st = self.state.lock();
        let was_idle = st.queued.is_empty();
        // Set/map insert, not `Storage::insert`. rddr-analyze: allow(lock-order)
        st.queued.insert(token);
        // Notify only on the empty→non-empty transition: the poller drains
        // `queued` under this lock before parking, so a non-empty queue
        // means it is either running or was already poked — skipping the
        // redundant futex wake matters when wakes arrive in bursts.
        if was_idle {
            Self::wake_syscall(&mut st);
            drop(st);
            self.cond.notify_all();
        }
    }

    fn add_timer(&self, token: u64, after: Duration) {
        let mut st = self.state.lock();
        let seq = st.timer_seq;
        st.timer_seq = st.timer_seq.wrapping_add(1);
        // Set/map insert, not `Storage::insert`. rddr-analyze: allow(lock-order)
        st.timers.insert((Instant::now() + after, seq), token);
        // With a non-empty queue the poller is awake and recomputes its park
        // deadline (under this lock) before it can park again.
        if st.queued.is_empty() {
            Self::wake_syscall(&mut st);
            drop(st);
            self.cond.notify_all();
        }
    }
}

/// A cloneable handle that wakes one [`Token`] on its owning [`Poller`].
///
/// Streams hold onto the `Readiness` passed to
/// [`Stream::poll_register`](crate::Stream::poll_register) and call
/// [`wake`](Readiness::wake) whenever new bytes, EOF, or an error become
/// observable.
#[derive(Clone)]
pub struct Readiness {
    shared: Arc<Shared>,
    token: u64,
}

impl std::fmt::Debug for Readiness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Readiness")
            .field("token", &self.token)
            .finish()
    }
}

impl Readiness {
    /// The token this handle wakes.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Wakes the token now. Idempotent until the next `poll` drains it.
    pub fn wake(&self) {
        self.shared.enqueue(self.token);
    }

    /// Arranges for the token to wake after `delay` (in addition to any
    /// data-driven wakes). Multiple pending delayed wakes may coexist.
    pub fn wake_after(&self, delay: Duration) {
        self.shared.add_timer(self.token, delay);
    }

    /// Puts a kernel fd under `poll(2)` watch for this token (read
    /// readiness). The fd must stay valid until [`Poller::deregister`].
    #[cfg(unix)]
    pub fn register_fd(&self, fd: i32) {
        let mut st = self.shared.state.lock();
        // Map insert, not `Storage::insert`. rddr-analyze: allow(lock-order)
        st.fds.insert(fd, self.token);
        Shared::wake_syscall(&mut st);
        drop(st);
        self.shared.cond.notify_all();
    }

    /// No kernel polling off unix; fd registration is unsupported.
    #[cfg(not(unix))]
    pub fn register_fd(&self, _fd: i32) {}
}

/// A readiness multiplexer for one reactor worker thread.
///
/// One thread calls [`poll`](Poller::poll) in a loop; any thread (pipe
/// writers, timer owners, injectors) may wake tokens concurrently through
/// [`Readiness`] handles created by [`readiness`](Poller::readiness).
pub struct Poller {
    shared: Arc<Shared>,
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish()
    }
}

impl Poller {
    /// Creates an empty poller.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(PollState {
                    queued: BTreeSet::new(),
                    timers: BTreeMap::new(),
                    deadline: BTreeMap::new(),
                    timer_seq: 0,
                    fds: BTreeMap::new(),
                    in_syscall: false,
                    #[cfg(unix)]
                    waker: None,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Creates a wake handle for `token`.
    pub fn readiness(&self, token: Token) -> Readiness {
        Readiness {
            shared: Arc::clone(&self.shared),
            token: token.0,
        }
    }

    /// Wakes `token` immediately (e.g. to re-run a session step).
    pub fn wake(&self, token: Token) {
        self.shared.enqueue(token.0);
    }

    /// Replaces the pending `set_timer` deadline for `token` with one firing
    /// after `delay` ([`Readiness::wake_after`] one-shots are independent and
    /// unaffected).
    pub fn set_timer(&self, token: Token, delay: Duration) {
        let mut st = self.shared.state.lock();
        if let Some(key) = st.deadline.remove(&token.0) {
            st.timers.remove(&key);
        }
        let seq = st.timer_seq;
        st.timer_seq = st.timer_seq.wrapping_add(1);
        let key = (Instant::now() + delay, seq);
        // Set/map insert, not `Storage::insert`. rddr-analyze: allow(lock-order)
        st.timers.insert(key, token.0);
        // Set/map insert, not `Storage::insert`. rddr-analyze: allow(lock-order)
        st.deadline.insert(token.0, key);
        if st.queued.is_empty() {
            Shared::wake_syscall(&mut st);
            drop(st);
            self.shared.cond.notify_all();
        }
    }

    /// Cancels the pending `set_timer` deadline for `token`.
    pub fn clear_timer(&self, token: Token) {
        let mut st = self.shared.state.lock();
        if let Some(key) = st.deadline.remove(&token.0) {
            st.timers.remove(&key);
        }
    }

    /// Removes every trace of `token`: queued wakes, timers, and watched
    /// fds. Must be called before dropping a stream whose fd was registered.
    pub fn deregister(&self, token: Token) {
        let mut st = self.shared.state.lock();
        st.queued.remove(&token.0);
        st.deadline.remove(&token.0);
        st.timers.retain(|_, t| *t != token.0);
        st.fds.retain(|_, t| *t != token.0);
    }

    /// Removes every token for which `drop_token` returns true (used to tear
    /// down all slots of a session in one sweep).
    pub fn deregister_matching(&self, drop_token: impl Fn(u64) -> bool) {
        let mut st = self.shared.state.lock();
        st.queued.retain(|t| !drop_token(*t));
        st.deadline.retain(|t, _| !drop_token(*t));
        st.timers.retain(|_, t| !drop_token(*t));
        st.fds.retain(|_, t| !drop_token(*t));
    }

    /// Blocks until at least one token wakes (or `timeout` expires), then
    /// moves all woken tokens into `out`. Returns the number delivered —
    /// zero only on timeout.
    ///
    /// Tokens are delivered deduplicated and in ascending `Token` order;
    /// reactors that pack `(session, slot)` into tokens rely on one
    /// session's wakes forming a consecutive run.
    pub fn poll(&self, out: &mut Vec<Token>, timeout: Option<Duration>) -> usize {
        out.clear();
        let overall_deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let mut st = self.shared.state.lock();
            // Promote expired timers.
            let now = Instant::now();
            while let Some((&key, &tok)) = st.timers.iter().next() {
                if key.0 > now {
                    break;
                }
                st.timers.remove(&key);
                if st.deadline.get(&tok) == Some(&key) {
                    st.deadline.remove(&tok);
                }
                // Set/map insert, not `Storage::insert`. rddr-analyze: allow(lock-order)
                st.queued.insert(tok);
            }
            if !st.queued.is_empty() {
                out.extend(st.queued.iter().map(|&t| Token(t)));
                st.queued.clear();
                return out.len();
            }
            if let Some(d) = overall_deadline {
                if now >= d {
                    return 0;
                }
            }
            let next_timer = st.timers.keys().next().map(|&(when, _)| when);
            let wake_at = match (overall_deadline, next_timer) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if st.fds.is_empty() {
                match wake_at {
                    Some(at) => {
                        let wait = at.saturating_duration_since(Instant::now());
                        let _ = self.shared.cond.wait_for(&mut st, wait);
                    }
                    None => self.shared.cond.wait(&mut st),
                }
                continue;
            }
            #[cfg(unix)]
            {
                if st.waker.is_none() {
                    match Waker::new() {
                        Ok(w) => st.waker = Some(w),
                        Err(_) => {
                            // Loopback unavailable: degrade to short condvar
                            // waits so in-memory wakes are still seen.
                            let _ = self.shared.cond.wait_for(&mut st, Duration::from_millis(5));
                            continue;
                        }
                    }
                }
                let waker_fd = st.waker.as_ref().map(|w| w.fd()).unwrap_or(-1);
                let mut pollfds: Vec<PollFd> = st
                    .fds
                    .keys()
                    .map(|&fd| PollFd {
                        fd,
                        events: POLLIN,
                        revents: 0,
                    })
                    .collect();
                pollfds.push(PollFd {
                    fd: waker_fd,
                    events: POLLIN,
                    revents: 0,
                });
                st.in_syscall = true;
                drop(st);
                let timeout_ms = match wake_at {
                    Some(at) => at
                        .saturating_duration_since(Instant::now())
                        .as_millis()
                        .min(i32::MAX as u128)
                        .max(1) as i32,
                    None => -1,
                };
                let nfds = pollfds.len() as u64;
                // SAFETY: `pollfds` outlives the call; length matches.
                let rc = unsafe { poll(pollfds.as_mut_ptr(), nfds, timeout_ms) };
                // Re-acquire: the guard was dropped before the syscall
                // above. rddr-analyze: allow(lock-order)
                let mut st = self.shared.state.lock();
                st.in_syscall = false;
                if let Some(w) = &st.waker {
                    w.drain();
                }
                if rc > 0 {
                    for pfd in &pollfds {
                        if pfd.revents != 0 && pfd.fd != waker_fd {
                            if let Some(&tok) = st.fds.get(&pfd.fd) {
                                // Set/map insert, not `Storage::insert`. rddr-analyze: allow(lock-order)
                                st.queued.insert(tok);
                            }
                        }
                    }
                }
                continue;
            }
            #[cfg(not(unix))]
            {
                // Off unix there is no fd polling; wait on the condvar.
                match wake_at {
                    Some(at) => {
                        let wait = at.saturating_duration_since(Instant::now());
                        let _ = self.shared.cond.wait_for(&mut st, wait);
                    }
                    None => self.shared.cond.wait(&mut st),
                }
                continue;
            }
        }
    }
}

/// Wraps a stream that cannot register readiness natively in a pump: a
/// helper thread blocks in `read` on a clone and forwards bytes into an
/// in-memory pipe, which *can* register. Writes still go to the original.
///
/// This is the compatibility path for exotic `Stream` impls; every in-tree
/// transport registers natively and never pays the extra thread.
///
/// # Errors
///
/// Returns an error if the stream cannot be cloned for the pump thread.
pub fn with_read_pump(stream: crate::BoxStream) -> Result<crate::BoxStream> {
    let mut reader = stream.try_clone()?;
    let (pump_tx, rx) = crate::duplex_pair("pump", &stream.peer());
    let mut pump_tx = pump_tx;
    std::thread::Builder::new()
        .name("rddr-read-pump".into())
        .spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match reader.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        let Some(chunk) = buf.get(..n) else { break };
                        if pump_tx.write_all(chunk).is_err() {
                            break;
                        }
                    }
                }
            }
            pump_tx.shutdown();
        })
        .map_err(NetError::Io)?;
    Ok(Box::new(PumpStream {
        writer: stream,
        rx: Box::new(rx),
    }))
}

struct PumpStream {
    writer: crate::BoxStream,
    rx: crate::BoxStream,
}

impl crate::Stream for PumpStream {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.rx.read(buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.writer.write_all(buf)
    }
    fn shutdown(&mut self) {
        self.writer.shutdown();
        self.rx.shutdown();
    }
    fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.rx.set_read_timeout(timeout);
    }
    fn peer(&self) -> String {
        self.writer.peer()
    }
    fn poll_register(&mut self, readiness: Readiness) -> bool {
        self.rx.poll_register(readiness)
    }
    fn try_read(&mut self, buf: &mut [u8]) -> Result<TryRead> {
        self.rx.try_read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{duplex_pair, Stream};

    #[test]
    fn timer_fires_after_delay() {
        let poller = Poller::new();
        poller.set_timer(Token(7), Duration::from_millis(20));
        let mut out = Vec::new();
        let t0 = Instant::now();
        let n = poller.poll(&mut out, Some(Duration::from_secs(2)));
        assert_eq!(n, 1);
        assert_eq!(out, vec![Token(7)]);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn wake_from_other_thread_unparks_condvar_wait() {
        let poller = Poller::new();
        let r = poller.readiness(Token(1));
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            r.wake();
        });
        let mut out = Vec::new();
        let n = poller.poll(&mut out, Some(Duration::from_secs(2)));
        h.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(out, vec![Token(1)]);
    }

    #[test]
    fn wakes_are_deduplicated() {
        let poller = Poller::new();
        let r = poller.readiness(Token(3));
        r.wake();
        r.wake();
        r.wake();
        let mut out = Vec::new();
        assert_eq!(poller.poll(&mut out, Some(Duration::from_millis(100))), 1);
    }

    #[test]
    fn deregister_cancels_queued_wakes_and_timers() {
        let poller = Poller::new();
        poller.readiness(Token(9)).wake();
        poller.set_timer(Token(9), Duration::from_millis(1));
        poller.deregister(Token(9));
        let mut out = Vec::new();
        assert_eq!(poller.poll(&mut out, Some(Duration::from_millis(50))), 0);
    }

    #[test]
    fn set_timer_replaces_previous_timer() {
        let poller = Poller::new();
        poller.set_timer(Token(4), Duration::from_millis(5));
        poller.set_timer(Token(4), Duration::from_millis(40));
        let mut out = Vec::new();
        let t0 = Instant::now();
        assert_eq!(poller.poll(&mut out, Some(Duration::from_secs(2))), 1);
        assert!(
            t0.elapsed() >= Duration::from_millis(35),
            "second set_timer must replace the first ({:?})",
            t0.elapsed()
        );
    }

    #[test]
    fn duplex_write_wakes_registered_token() {
        let poller = Poller::new();
        let (mut a, mut b) = duplex_pair("a", "b");
        assert!(b.poll_register(poller.readiness(Token(11))));
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            a.write_all(b"hi").unwrap();
            a
        });
        let mut out = Vec::new();
        assert_eq!(poller.poll(&mut out, Some(Duration::from_secs(2))), 1);
        assert_eq!(out, vec![Token(11)]);
        let mut buf = [0u8; 8];
        assert_eq!(b.try_read(&mut buf).unwrap(), TryRead::Data(2));
        assert_eq!(b.try_read(&mut buf).unwrap(), TryRead::WouldBlock);
        drop(h.join().unwrap());
        // Peer drop closes the pipe: another wake, then Eof.
        assert_eq!(poller.poll(&mut out, Some(Duration::from_secs(2))), 1);
        assert_eq!(b.try_read(&mut buf).unwrap(), TryRead::Eof);
    }

    #[test]
    fn registration_wakes_immediately_when_data_already_buffered() {
        let poller = Poller::new();
        let (mut a, mut b) = duplex_pair("a", "b");
        a.write_all(b"early").unwrap();
        assert!(b.poll_register(poller.readiness(Token(5))));
        let mut out = Vec::new();
        assert_eq!(poller.poll(&mut out, Some(Duration::from_millis(200))), 1);
        assert_eq!(out, vec![Token(5)]);
    }

    /// Regression test for the reactor read-deadline contract: a session
    /// whose deadline expires is woken by its timer and can be severed
    /// *without* stalling the other sessions multiplexed on the same poller.
    /// (Under the old thread model the blocking `read` timeout provided
    /// this; under the poller it must come from `set_timer`.)
    #[test]
    fn expired_deadline_wakes_without_stalling_other_sessions() {
        let poller = Poller::new();
        // Session 1: a stream that will never produce data, with a deadline.
        let (_quiet_peer, mut quiet) = duplex_pair("a", "b");
        assert!(quiet.poll_register(poller.readiness(Token(1))));
        poller.set_timer(Token(1), Duration::from_millis(60));
        // Session 2: a busy stream that keeps receiving data.
        let (mut busy_peer, mut busy) = duplex_pair("c", "d");
        assert!(busy.poll_register(poller.readiness(Token(2))));
        let writer = std::thread::spawn(move || {
            for _ in 0..10 {
                std::thread::sleep(Duration::from_millis(10));
                if busy_peer.write_all(b"x").is_err() {
                    break;
                }
            }
        });
        let t0 = Instant::now();
        let mut out = Vec::new();
        let mut busy_wakes = 0;
        let mut deadline_fired_at = None;
        while deadline_fired_at.is_none() && t0.elapsed() < Duration::from_secs(3) {
            poller.poll(&mut out, Some(Duration::from_millis(500)));
            for t in &out {
                match t.0 {
                    1 => deadline_fired_at = Some(t0.elapsed()),
                    2 => {
                        busy_wakes += 1;
                        let mut sink = [0u8; 8];
                        while matches!(busy.try_read(&mut sink), Ok(TryRead::Data(_))) {}
                    }
                    _ => {}
                }
            }
        }
        writer.join().unwrap();
        let fired = deadline_fired_at.expect("deadline timer must fire");
        assert!(
            fired >= Duration::from_millis(55),
            "deadline fired early: {fired:?}"
        );
        assert!(
            fired < Duration::from_millis(500),
            "deadline wake stalled: {fired:?}"
        );
        // The busy session made progress while the quiet one waited: its
        // wakes interleaved with (not after) the deadline.
        assert!(
            busy_wakes >= 3,
            "busy session starved while deadline pended ({busy_wakes} wakes)"
        );
        // Severing the expired session must not disturb the busy one.
        poller.deregister(Token(1));
        quiet.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn tcp_fd_readiness_via_poll_syscall() {
        use crate::{Network, ServiceAddr, TcpNet};
        let net = TcpNet::new();
        let mut listener = net.listen(&ServiceAddr::new("127.0.0.1", 0)).unwrap();
        let bound = listener.local_addr();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(20));
            conn.write_all(b"pong").unwrap();
            conn
        });
        let mut client = net.dial(&bound).unwrap();
        let poller = Poller::new();
        assert!(client.poll_register(poller.readiness(Token(42))));
        let mut out = Vec::new();
        assert_eq!(poller.poll(&mut out, Some(Duration::from_secs(5))), 1);
        assert_eq!(out, vec![Token(42)]);
        let mut buf = [0u8; 16];
        assert_eq!(client.try_read(&mut buf).unwrap(), TryRead::Data(4));
        assert_eq!(&buf[..4], b"pong");
        assert_eq!(client.try_read(&mut buf).unwrap(), TryRead::WouldBlock);
        // Must deregister before dropping the fd.
        poller.deregister(Token(42));
        drop(client);
        drop(server.join().unwrap());
    }

    #[cfg(unix)]
    #[test]
    fn in_memory_wake_interrupts_poll_syscall_park() {
        use crate::{Network, ServiceAddr, TcpNet};
        // Register one quiet TCP fd so the poller parks in poll(2), then
        // deliver an in-memory wake: the self-wake socket must unpark it.
        let net = TcpNet::new();
        let mut listener = net.listen(&ServiceAddr::new("127.0.0.1", 0)).unwrap();
        let bound = listener.local_addr();
        let srv = std::thread::spawn(move || listener.accept());
        let mut client = net.dial(&bound).unwrap();
        let server_conn = srv.join().unwrap().unwrap();
        let poller = Poller::new();
        assert!(client.poll_register(poller.readiness(Token(1))));
        let r = poller.readiness(Token(2));
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            r.wake();
        });
        let mut out = Vec::new();
        let t0 = Instant::now();
        assert_eq!(poller.poll(&mut out, Some(Duration::from_secs(5))), 1);
        assert!(t0.elapsed() < Duration::from_secs(4));
        assert_eq!(out, vec![Token(2)]);
        h.join().unwrap();
        poller.deregister(Token(1));
        drop(server_conn);
    }

    #[test]
    fn read_pump_adapts_unregisterable_streams() {
        let (mut a, b) = duplex_pair("a", "b");
        // Box the end and wrap it in the pump (duplex *can* register
        // natively; the pump must still behave correctly over it).
        let mut pumped = with_read_pump(Box::new(b)).unwrap();
        let poller = Poller::new();
        assert!(pumped.poll_register(poller.readiness(Token(6))));
        a.write_all(b"via-pump").unwrap();
        let mut out = Vec::new();
        assert_eq!(poller.poll(&mut out, Some(Duration::from_secs(2))), 1);
        let mut buf = [0u8; 32];
        // Pump thread may deliver in pieces; drain.
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < 8 && Instant::now() < deadline {
            match pumped.try_read(&mut buf) {
                Ok(TryRead::Data(n)) => got.extend_from_slice(&buf[..n]),
                Ok(TryRead::WouldBlock) => {
                    poller.poll(&mut out, Some(Duration::from_millis(100)));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(&got, b"via-pump");
    }
}
