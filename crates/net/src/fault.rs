//! Deterministic network fault injection.
//!
//! A [`FaultPlan`] is a seeded schedule of connection-level faults — connect
//! refusals, host partitions, read stalls, and mid-stream resets after a byte
//! budget (which also models partial writes: the prefix that fits the budget
//! is delivered, the rest is lost). Attach a plan to any [`Network`] with
//! [`FaultNet`] (typically over [`crate::SimNet`]), or wrap an individual
//! already-established stream (e.g. a TCP connection) with
//! [`FaultPlan::wrap`].
//!
//! Determinism: the fate of the *k*-th connection to a given address is a
//! pure function of `(seed, address, k)` — per-address dial sequence numbers
//! are tracked under one lock, and probabilistic draws come from a splitmix64
//! hash of that triple rather than a shared RNG stream. Replaying the same
//! dial order against the same plan yields byte-identical fault behavior, so
//! chaos runs are replayable.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{BoxListener, BoxStream, NetError, Network, Result, ServiceAddr, Stream};

/// One injected fault kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The dial fails with [`NetError::ConnectionRefused`].
    Refuse,
    /// Every read on the connection is delayed by the given duration before
    /// data is delivered (models a straggling or hung peer).
    Stall(Duration),
    /// After the connection has carried this many payload bytes (reads plus
    /// writes combined), it is torn down with [`NetError::Reset`]. A write
    /// that crosses the budget delivers only the prefix that fits — the
    /// partial-write fault — before the reset surfaces.
    ResetAfterBytes(u64),
}

/// One injected storage fault kind, consumed by simulated disks (see
/// `rddr-pgstore`'s `DiskFaults` hook). Sequence numbers are per
/// `(target, file, operation)`: torn pages count fsynced writes, lost
/// fsyncs count fsync calls, truncated tails count crashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// An fsynced write persists only its leading half; the rest of the
    /// page reads back as zeros after a crash.
    TornPage,
    /// An fsync reports success but hardens nothing.
    LostFsync,
    /// A crash truncates the file's last durable append mid-record (the
    /// torn-WAL-tail recovery divergence corner).
    TruncatedWalTail,
}

/// Probabilistic storage fault mix for one target (per-mille draws, same
/// seeded replay guarantee as [`ChaosProfile`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageChaosProfile {
    /// Probability (0–1000) that an fsynced write tears.
    pub torn_page_per_mille: u16,
    /// Probability (0–1000) that an fsync is silently lost.
    pub lost_fsync_per_mille: u16,
    /// Probability (0–1000) that a crash truncates the last append.
    pub truncate_tail_per_mille: u16,
}

/// Which dials a rule applies to, in per-address arrival order (0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnSelector {
    /// Exactly the n-th connection to the address.
    Nth(u64),
    /// The n-th connection and every one after it.
    From(u64),
    /// Every connection to the address.
    All,
}

impl ConnSelector {
    fn matches(&self, seq: u64) -> bool {
        match *self {
            ConnSelector::Nth(n) => seq == n,
            ConnSelector::From(n) => seq >= n,
            ConnSelector::All => true,
        }
    }
}

/// Probabilistic fault mix for one address: each connection independently
/// draws its fate from the plan seed (per-mille probabilities), so a profile
/// with the same seed replays identically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Probability (0–1000) that a dial is refused outright.
    pub refuse_per_mille: u16,
    /// Probability (0–1000) that the connection carries a reset byte budget.
    pub reset_per_mille: u16,
    /// Upper bound for the drawn budget; the budget is in `1..=window`.
    pub reset_window_bytes: u64,
    /// Probability (0–1000) that every read on the connection stalls.
    pub stall_per_mille: u16,
    /// Stall duration applied when the stall draw hits.
    pub stall: Duration,
}

/// Counter snapshot of everything a plan has injected so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Connections the plan has adjudicated (dials plus [`FaultPlan::wrap`]).
    pub dials: u64,
    /// Dials refused by an explicit rule or a chaos draw.
    pub refused: u64,
    /// Dials refused because the destination host was partitioned.
    pub partitioned: u64,
    /// Connections torn down mid-stream by an exhausted byte budget.
    pub resets: u64,
    /// Connections created with a read stall.
    pub stalled: u64,
    /// Writes that delivered only a prefix before the reset surfaced.
    pub truncated_writes: u64,
    /// Storage writes torn by a [`StorageFault::TornPage`] draw.
    pub torn_pages: u64,
    /// Fsyncs silently lost to a [`StorageFault::LostFsync`] draw.
    pub lost_fsyncs: u64,
    /// Crashes that truncated a WAL tail ([`StorageFault::TruncatedWalTail`]).
    pub truncated_tails: u64,
}

struct Rule {
    key: String,
    selector: ConnSelector,
    fault: Fault,
}

struct StorageRule {
    target: String,
    /// `None` applies to every file on the target's disk.
    file: Option<String>,
    selector: ConnSelector,
    fault: StorageFault,
}

#[derive(Default)]
struct PlanState {
    rules: Vec<Rule>,
    chaos: BTreeMap<String, ChaosProfile>,
    storage_rules: Vec<StorageRule>,
    storage_chaos: BTreeMap<String, StorageChaosProfile>,
    partitioned: BTreeSet<String>,
    seq: BTreeMap<String, u64>,
}

struct Shared {
    seed: u64,
    state: Mutex<PlanState>,
    dials: AtomicU64,
    refused: AtomicU64,
    partitioned: AtomicU64,
    resets: AtomicU64,
    stalled: AtomicU64,
    truncated_writes: AtomicU64,
    torn_pages: AtomicU64,
    lost_fsyncs: AtomicU64,
    truncated_tails: AtomicU64,
}

/// The fate assigned to one connection, fixed at dial time.
#[derive(Clone, Copy, Debug, Default)]
struct Fate {
    refuse: bool,
    partitioned: bool,
    stall: Option<Duration>,
    budget: Option<u64>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A seeded, replayable schedule of network faults. Cloning shares the
/// schedule and its counters, so a test can keep a handle while the network
/// owns another.
#[derive(Clone)]
pub struct FaultPlan {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.shared.seed)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FaultPlan {
    /// Creates an empty plan; `seed` drives every probabilistic draw.
    pub fn new(seed: u64) -> Self {
        Self {
            shared: Arc::new(Shared {
                seed,
                state: Mutex::new(PlanState::default()),
                dials: AtomicU64::new(0),
                refused: AtomicU64::new(0),
                partitioned: AtomicU64::new(0),
                resets: AtomicU64::new(0),
                stalled: AtomicU64::new(0),
                truncated_writes: AtomicU64::new(0),
                torn_pages: AtomicU64::new(0),
                lost_fsyncs: AtomicU64::new(0),
                truncated_tails: AtomicU64::new(0),
            }),
        }
    }

    /// The seed the plan was created with.
    pub fn seed(&self) -> u64 {
        self.shared.seed
    }

    /// Schedules a fault for connections to `addr` selected by `selector`.
    /// Rules stack; a later rule for the same fault kind wins.
    pub fn inject(&self, addr: &ServiceAddr, selector: ConnSelector, fault: Fault) {
        self.shared.state.lock().rules.push(Rule {
            key: addr.to_string(),
            selector,
            fault,
        });
    }

    /// Refuses the selected dials to `addr`.
    pub fn refuse(&self, addr: &ServiceAddr, selector: ConnSelector) {
        self.inject(addr, selector, Fault::Refuse);
    }

    /// Stalls every read on the selected connections to `addr` by `delay`.
    pub fn stall(&self, addr: &ServiceAddr, selector: ConnSelector, delay: Duration) {
        self.inject(addr, selector, Fault::Stall(delay));
    }

    /// Resets the selected connections to `addr` after `bytes` payload bytes.
    pub fn reset_after(&self, addr: &ServiceAddr, selector: ConnSelector, bytes: u64) {
        self.inject(addr, selector, Fault::ResetAfterBytes(bytes));
    }

    /// Installs a probabilistic fault mix for `addr` (applied to connections
    /// no explicit rule already decided).
    pub fn chaos(&self, addr: &ServiceAddr, profile: ChaosProfile) {
        self.shared
            .state
            .lock()
            .chaos
            // Map insert, not `Storage::insert`. rddr-analyze: allow(lock-order)
            .insert(addr.to_string(), profile);
    }

    /// Partitions a host: every dial to any port on it is refused until
    /// [`FaultPlan::heal`] is called.
    pub fn partition(&self, host: &str) {
        self.shared
            .state
            .lock()
            .partitioned
            .insert(host.to_string());
    }

    /// Heals a partition created by [`FaultPlan::partition`].
    pub fn heal(&self, host: &str) {
        self.shared.state.lock().partitioned.remove(host);
    }

    /// Snapshot of everything injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dials: self.shared.dials.load(Ordering::SeqCst),
            refused: self.shared.refused.load(Ordering::SeqCst),
            partitioned: self.shared.partitioned.load(Ordering::SeqCst),
            resets: self.shared.resets.load(Ordering::SeqCst),
            stalled: self.shared.stalled.load(Ordering::SeqCst),
            truncated_writes: self.shared.truncated_writes.load(Ordering::SeqCst),
            torn_pages: self.shared.torn_pages.load(Ordering::SeqCst),
            lost_fsyncs: self.shared.lost_fsyncs.load(Ordering::SeqCst),
            truncated_tails: self.shared.truncated_tails.load(Ordering::SeqCst),
        }
    }

    /// Schedules a storage fault on `target`'s simulated disk. `file`
    /// restricts the rule to one file (`None` = any); `selector` picks
    /// operation sequence numbers — fsynced writes for
    /// [`StorageFault::TornPage`], fsyncs for [`StorageFault::LostFsync`],
    /// crashes for [`StorageFault::TruncatedWalTail`].
    pub fn storage_inject(
        &self,
        target: &str,
        file: Option<&str>,
        selector: ConnSelector,
        fault: StorageFault,
    ) {
        self.shared.state.lock().storage_rules.push(StorageRule {
            target: target.to_string(),
            file: file.map(str::to_string),
            selector,
            fault,
        });
    }

    /// Installs a probabilistic storage fault mix for `target` (consulted
    /// only when no explicit rule decided the operation).
    pub fn storage_chaos(&self, target: &str, profile: StorageChaosProfile) {
        self.shared
            .state
            .lock()
            .storage_chaos
            // Map insert, not `Storage::insert`. rddr-analyze: allow(lock-order)
            .insert(target.to_string(), profile);
    }

    /// Adjudicates one storage operation: `seq`-th op of `fault`'s kind on
    /// `(target, file)`. Pure in `(seed, target, file, kind, seq)` plus the
    /// installed rules, so same-seed runs replay identically.
    pub fn storage_fault(&self, target: &str, file: &str, fault: StorageFault, seq: u64) -> bool {
        let state = self.shared.state.lock();
        let mut decided = None;
        for rule in &state.storage_rules {
            if rule.fault == fault
                && rule.target == target
                && rule.file.as_deref().is_none_or(|f| f == file)
                && rule.selector.matches(seq)
            {
                decided = Some(true);
            }
        }
        let hit = match decided {
            Some(d) => d,
            None => match state.storage_chaos.get(target) {
                Some(profile) => {
                    let per_mille = match fault {
                        StorageFault::TornPage => profile.torn_page_per_mille,
                        StorageFault::LostFsync => profile.lost_fsync_per_mille,
                        StorageFault::TruncatedWalTail => profile.truncate_tail_per_mille,
                    };
                    let kind = match fault {
                        StorageFault::TornPage => "torn",
                        StorageFault::LostFsync => "fsync",
                        StorageFault::TruncatedWalTail => "tail",
                    };
                    let key = format!("storage/{kind}/{target}/{file}");
                    let draw = splitmix64(
                        self.shared.seed ^ fnv1a(&key) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    (draw % 1000) < u64::from(per_mille)
                }
                None => false,
            },
        };
        drop(state);
        if hit {
            let counter = match fault {
                StorageFault::TornPage => &self.shared.torn_pages,
                StorageFault::LostFsync => &self.shared.lost_fsyncs,
                StorageFault::TruncatedWalTail => &self.shared.truncated_tails,
            };
            counter.fetch_add(1, Ordering::SeqCst);
        }
        hit
    }

    /// Applies the next fate for `addr` to an already-established stream
    /// (how TCP connections join a plan: accept or dial normally, then wrap).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] when the fate is a refusal or
    /// the host is partitioned; the stream is shut down first.
    pub fn wrap(&self, addr: &ServiceAddr, mut stream: BoxStream) -> Result<BoxStream> {
        let fate = self.next_fate(addr);
        if fate.refuse {
            stream.shutdown();
            return Err(self.refusal(addr, fate));
        }
        Ok(self.attach(fate, stream))
    }

    /// Draws (and consumes) the fate of the next connection to `addr`.
    fn next_fate(&self, addr: &ServiceAddr) -> Fate {
        self.shared.dials.fetch_add(1, Ordering::SeqCst);
        let key = addr.to_string();
        let mut state = self.shared.state.lock();
        let seq_slot = state.seq.entry(key.clone()).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        let mut fate = Fate::default();
        if state.partitioned.contains(addr.host()) {
            fate.refuse = true;
            fate.partitioned = true;
            return fate;
        }
        let mut decided_refuse = false;
        let mut decided_stall = false;
        let mut decided_budget = false;
        for rule in state.rules.iter().filter(|r| r.key == key) {
            if !rule.selector.matches(seq) {
                continue;
            }
            match rule.fault {
                Fault::Refuse => {
                    fate.refuse = true;
                    decided_refuse = true;
                }
                Fault::Stall(d) => {
                    fate.stall = Some(d);
                    decided_stall = true;
                }
                Fault::ResetAfterBytes(b) => {
                    fate.budget = Some(b);
                    decided_budget = true;
                }
            }
        }
        if let Some(profile) = state.chaos.get(&key) {
            let base = splitmix64(
                self.shared.seed ^ fnv1a(&key) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let r_refuse = base;
            let r_reset = splitmix64(base);
            let r_budget = splitmix64(r_reset);
            let r_stall = splitmix64(r_budget);
            if !decided_refuse && (r_refuse % 1000) < u64::from(profile.refuse_per_mille) {
                fate.refuse = true;
            }
            if !decided_budget && (r_reset % 1000) < u64::from(profile.reset_per_mille) {
                let window = profile.reset_window_bytes.max(1);
                fate.budget = Some(1 + r_budget % window);
            }
            if !decided_stall && (r_stall % 1000) < u64::from(profile.stall_per_mille) {
                fate.stall = Some(profile.stall);
            }
        }
        fate
    }

    fn refusal(&self, addr: &ServiceAddr, fate: Fate) -> NetError {
        if fate.partitioned {
            self.shared.partitioned.fetch_add(1, Ordering::SeqCst);
            NetError::ConnectionRefused(format!("{addr} (partitioned)"))
        } else {
            self.shared.refused.fetch_add(1, Ordering::SeqCst);
            NetError::ConnectionRefused(format!("{addr} (fault injected)"))
        }
    }

    fn attach(&self, fate: Fate, inner: BoxStream) -> BoxStream {
        if fate.stall.is_none() && fate.budget.is_none() {
            return inner;
        }
        if fate.stall.is_some() {
            self.shared.stalled.fetch_add(1, Ordering::SeqCst);
        }
        Box::new(FaultStream {
            inner,
            conn: Arc::new(ConnState {
                stall: fate.stall,
                budget: fate.budget.map(AtomicU64::new),
                reset: AtomicBool::new(false),
            }),
            plan: Arc::clone(&self.shared),
            readiness: None,
            stall_gate: None,
        })
    }
}

/// A [`Network`] decorator that routes every dial through a [`FaultPlan`].
/// Listen/unbind delegate untouched, so servers are unaffected.
pub struct FaultNet<N: Network> {
    inner: N,
    plan: FaultPlan,
}

impl<N: Network> FaultNet<N> {
    /// Wraps `inner` so its dials consult `plan`.
    pub fn new(inner: N, plan: FaultPlan) -> Self {
        Self { inner, plan }
    }

    /// The attached plan (shared handle).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped fabric.
    pub fn inner(&self) -> &N {
        &self.inner
    }
}

impl<N: Network> Network for FaultNet<N> {
    fn listen(&self, addr: &ServiceAddr) -> Result<BoxListener> {
        self.inner.listen(addr)
    }

    fn dial(&self, addr: &ServiceAddr) -> Result<BoxStream> {
        let fate = self.plan.next_fate(addr);
        if fate.refuse {
            return Err(self.plan.refusal(addr, fate));
        }
        let stream = self.inner.dial(addr)?;
        Ok(self.plan.attach(fate, stream))
    }

    fn unbind_addr(&self, addr: &ServiceAddr) {
        self.inner.unbind_addr(addr);
    }
}

/// Shared across [`Stream::try_clone`] handles so the byte budget and reset
/// flag are connection-wide, not per-handle.
struct ConnState {
    stall: Option<Duration>,
    budget: Option<AtomicU64>,
    reset: AtomicBool,
}

struct FaultStream {
    inner: BoxStream,
    conn: Arc<ConnState>,
    plan: Arc<Shared>,
    /// Readiness handle captured at `poll_register`, used to schedule the
    /// end of an injected stall as a timer instead of blocking the reactor.
    readiness: Option<crate::poll::Readiness>,
    /// When a stall fate is active: the instant the currently pending stall
    /// elapses. `try_read` returns `WouldBlock` until then, then delivers
    /// and re-arms on the next read — mirroring the blocking `read`'s
    /// per-read sleep without holding a worker thread.
    stall_gate: Option<std::time::Instant>,
}

impl FaultStream {
    /// Charges `want` bytes against the budget; returns how many are allowed.
    fn charge(&self, want: u64) -> u64 {
        let Some(budget) = self.conn.budget.as_ref() else {
            return want;
        };
        let mut allowed = want;
        let _ = budget.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
            allowed = cur.min(want);
            Some(cur - allowed)
        });
        allowed
    }

    /// Marks the connection reset (idempotently) and tears down the inner
    /// stream so the peer observes the fault too.
    fn trip(&mut self) {
        if !self.conn.reset.swap(true, Ordering::SeqCst) {
            self.plan.resets.fetch_add(1, Ordering::SeqCst);
        }
        self.inner.shutdown();
    }
}

impl Stream for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if self.conn.reset.load(Ordering::SeqCst) {
            return Err(NetError::Reset);
        }
        if let Some(delay) = self.conn.stall {
            // The stall IS the injected fault. rddr-analyze: allow(blocking-hot-path)
            std::thread::sleep(delay);
        }
        let n = self.inner.read(buf)?;
        let allowed = self.charge(n as u64);
        if allowed < n as u64 {
            self.trip();
            if allowed == 0 {
                return Err(NetError::Reset);
            }
        }
        Ok(allowed as usize)
    }

    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        if self.conn.reset.load(Ordering::SeqCst) {
            return Err(NetError::Reset);
        }
        let allowed = self.charge(buf.len() as u64);
        if allowed >= buf.len() as u64 {
            return self.inner.write_all(buf);
        }
        // Partial write: the prefix that fits the budget is delivered, then
        // the connection is torn down.
        self.plan.truncated_writes.fetch_add(1, Ordering::SeqCst);
        if let Some(prefix) = buf.get(..allowed as usize) {
            if !prefix.is_empty() {
                // Fault injection: the truncated prefix is delivered
                // best-effort and the caller gets Reset regardless.
                // rddr-analyze: allow(error-swallow)
                let _ = self.inner.write_all(prefix);
            }
        }
        self.trip();
        Err(NetError::Reset)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.inner.set_read_timeout(timeout);
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }

    fn try_clone(&self) -> Result<BoxStream> {
        Ok(Box::new(FaultStream {
            inner: self.inner.try_clone()?,
            conn: Arc::clone(&self.conn),
            plan: Arc::clone(&self.plan),
            readiness: None,
            stall_gate: None,
        }))
    }

    fn poll_register(&mut self, readiness: crate::poll::Readiness) -> bool {
        if self.inner.poll_register(readiness.clone()) {
            self.readiness = Some(readiness);
            true
        } else {
            false
        }
    }

    fn try_read(&mut self, buf: &mut [u8]) -> Result<crate::poll::TryRead> {
        use crate::poll::TryRead;
        if self.conn.reset.load(Ordering::SeqCst) {
            return Err(NetError::Reset);
        }
        if let Some(delay) = self.conn.stall {
            // The stall fault under the reactor: instead of sleeping (which
            // would block every other session on this worker), gate delivery
            // behind a deadline and ask the poller to wake us when it lapses.
            let now = std::time::Instant::now();
            match self.stall_gate {
                None => {
                    self.stall_gate = Some(now + delay);
                    if let Some(r) = &self.readiness {
                        r.wake_after(delay);
                    }
                    return Ok(TryRead::WouldBlock);
                }
                Some(gate) if now < gate => {
                    if let Some(r) = &self.readiness {
                        r.wake_after(gate - now);
                    }
                    return Ok(TryRead::WouldBlock);
                }
                Some(_) => {}
            }
        }
        match self.inner.try_read(buf)? {
            TryRead::Data(n) => {
                // Delivered: the next read pays a fresh stall.
                self.stall_gate = None;
                let allowed = self.charge(n as u64);
                if allowed < n as u64 {
                    self.trip();
                    if allowed == 0 {
                        return Err(NetError::Reset);
                    }
                }
                Ok(TryRead::Data(allowed as usize))
            }
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimNet;

    fn echo(net: &SimNet, addr: &ServiceAddr) {
        let mut listener = net.listen(addr).unwrap();
        std::thread::spawn(move || {
            while let Ok(mut conn) = listener.accept() {
                std::thread::spawn(move || {
                    let mut chunk = [0u8; 256];
                    loop {
                        match conn.read(&mut chunk) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => {
                                if conn.write_all(&chunk[..n]).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
    }

    fn fault_net(seed: u64) -> (FaultNet<SimNet>, FaultPlan, ServiceAddr) {
        let sim = SimNet::new();
        let addr = ServiceAddr::new("svc", 9000);
        echo(&sim, &addr);
        let plan = FaultPlan::new(seed);
        (FaultNet::new(sim, plan.clone()), plan, addr)
    }

    #[test]
    fn refuse_rule_hits_only_selected_dial() {
        let (net, plan, addr) = fault_net(1);
        plan.refuse(&addr, ConnSelector::Nth(1));
        assert!(net.dial(&addr).is_ok());
        assert!(matches!(
            net.dial(&addr),
            Err(NetError::ConnectionRefused(_))
        ));
        assert!(net.dial(&addr).is_ok());
        let s = plan.stats();
        assert_eq!((s.dials, s.refused), (3, 1));
    }

    #[test]
    fn reset_budget_truncates_write_and_resets() {
        let (net, plan, addr) = fault_net(2);
        plan.reset_after(&addr, ConnSelector::Nth(0), 4);
        let mut conn = net.dial(&addr).unwrap();
        assert!(matches!(conn.write_all(b"abcdef"), Err(NetError::Reset)));
        assert!(matches!(conn.read(&mut [0u8; 8]), Err(NetError::Reset)));
        let s = plan.stats();
        assert_eq!((s.resets, s.truncated_writes), (1, 1));
    }

    #[test]
    fn reset_budget_charges_reads_too() {
        let (net, plan, addr) = fault_net(3);
        plan.reset_after(&addr, ConnSelector::Nth(0), 6);
        let mut conn = net.dial(&addr).unwrap();
        conn.write_all(b"abcd").unwrap(); // 4 of 6 spent
        let mut buf = [0u8; 8];
        let n = conn.read(&mut buf).unwrap(); // echo returns 4, only 2 allowed
        assert_eq!(n, 2);
        assert_eq!(&buf[..2], b"ab");
        assert!(matches!(conn.read(&mut buf), Err(NetError::Reset)));
        assert_eq!(plan.stats().resets, 1);
    }

    #[test]
    fn partition_refuses_every_port_until_healed() {
        let (net, plan, addr) = fault_net(4);
        plan.partition("svc");
        assert!(matches!(
            net.dial(&addr),
            Err(NetError::ConnectionRefused(_))
        ));
        assert!(matches!(
            net.dial(&addr.with_port(9001)),
            Err(NetError::ConnectionRefused(_))
        ));
        plan.heal("svc");
        assert!(net.dial(&addr).is_ok());
        let s = plan.stats();
        assert_eq!((s.partitioned, s.refused), (2, 0));
    }

    #[test]
    fn stall_delays_reads() {
        let (net, plan, addr) = fault_net(5);
        plan.stall(&addr, ConnSelector::All, Duration::from_millis(40));
        let mut conn = net.dial(&addr).unwrap();
        conn.write_all(b"x").unwrap();
        let start = std::time::Instant::now();
        let mut buf = [0u8; 1];
        assert_eq!(conn.read(&mut buf).unwrap(), 1);
        assert!(start.elapsed() >= Duration::from_millis(40));
        assert_eq!(plan.stats().stalled, 1);
    }

    #[test]
    fn clones_share_budget_and_reset_flag() {
        let (net, _plan, addr) = fault_net(6);
        _plan.reset_after(&addr, ConnSelector::Nth(0), 4);
        let mut conn = net.dial(&addr).unwrap();
        let mut clone = conn.try_clone().unwrap();
        conn.write_all(b"abcd").unwrap();
        assert!(matches!(clone.write_all(b"e"), Err(NetError::Reset)));
        assert!(matches!(conn.read(&mut [0u8; 1]), Err(NetError::Reset)));
    }

    #[test]
    fn chaos_draws_replay_identically() {
        let outcomes = |seed: u64| {
            let (net, plan, addr) = fault_net(seed);
            plan.chaos(
                &addr,
                ChaosProfile {
                    refuse_per_mille: 300,
                    reset_per_mille: 300,
                    reset_window_bytes: 32,
                    ..ChaosProfile::default()
                },
            );
            let mut fates = Vec::new();
            for _ in 0..32 {
                match net.dial(&addr) {
                    Err(_) => fates.push(-1i64),
                    Ok(mut conn) => {
                        // Probe the budget by writing until reset (bounded).
                        let mut written = 0i64;
                        for _ in 0..64 {
                            match conn.write_all(b"x") {
                                Ok(()) => written += 1,
                                Err(_) => break,
                            }
                        }
                        fates.push(written);
                    }
                }
            }
            (fates, plan.stats())
        };
        let (f1, s1) = outcomes(0xDEAD_BEEF);
        let (f2, s2) = outcomes(0xDEAD_BEEF);
        assert_eq!(f1, f2);
        assert_eq!(s1, s2);
        assert!(f1.contains(&-1), "some dials refused: {f1:?}");
        assert!(f1.contains(&64), "some dials clean: {f1:?}");
        let (f3, _) = outcomes(0xFEED_F00D);
        assert_ne!(f1, f3, "different seed should change the schedule");
    }

    #[test]
    fn explicit_rule_beats_chaos_draw() {
        let (net, plan, addr) = fault_net(7);
        plan.chaos(
            &addr,
            ChaosProfile {
                refuse_per_mille: 1000,
                ..ChaosProfile::default()
            },
        );
        // No explicit rule: chaos refuses everything.
        assert!(net.dial(&addr).is_err());
        // An explicit stall rule decides stall only; refusal still drawn.
        plan.refuse(&addr, ConnSelector::Nth(1));
        assert!(net.dial(&addr).is_err());
    }

    #[test]
    fn wrap_applies_fate_to_established_stream() {
        let plan = FaultPlan::new(8);
        let addr = ServiceAddr::new("db", 5432);
        plan.reset_after(&addr, ConnSelector::Nth(0), 2);
        let (client, _server) = crate::duplex_pair("client", "db:5432");
        let mut wrapped = plan.wrap(&addr, Box::new(client)).unwrap();
        assert!(matches!(wrapped.write_all(b"abc"), Err(NetError::Reset)));
        plan.refuse(&addr, ConnSelector::Nth(1));
        let (client2, _server2) = crate::duplex_pair("client", "db:5432");
        assert!(plan.wrap(&addr, Box::new(client2)).is_err());
    }

    #[test]
    fn storage_rule_hits_selected_sequence_and_file() {
        let plan = FaultPlan::new(10);
        plan.storage_inject(
            "db-2",
            Some("wal"),
            ConnSelector::Nth(0),
            StorageFault::TruncatedWalTail,
        );
        assert!(plan.storage_fault("db-2", "wal", StorageFault::TruncatedWalTail, 0));
        assert!(!plan.storage_fault("db-2", "wal", StorageFault::TruncatedWalTail, 1));
        assert!(!plan.storage_fault("db-2", "heap", StorageFault::TruncatedWalTail, 0));
        assert!(!plan.storage_fault("db-1", "wal", StorageFault::TruncatedWalTail, 0));
        assert!(!plan.storage_fault("db-2", "wal", StorageFault::TornPage, 0));
        assert_eq!(plan.stats().truncated_tails, 1);
    }

    #[test]
    fn storage_rule_without_file_applies_to_all_files() {
        let plan = FaultPlan::new(11);
        plan.storage_inject("db-0", None, ConnSelector::All, StorageFault::LostFsync);
        assert!(plan.storage_fault("db-0", "wal", StorageFault::LostFsync, 0));
        assert!(plan.storage_fault("db-0", "heap", StorageFault::LostFsync, 7));
        assert_eq!(plan.stats().lost_fsyncs, 2);
    }

    #[test]
    fn storage_chaos_replays_identically_per_seed() {
        let draws = |seed: u64| {
            let plan = FaultPlan::new(seed);
            plan.storage_chaos(
                "db-1",
                StorageChaosProfile {
                    torn_page_per_mille: 250,
                    lost_fsync_per_mille: 250,
                    truncate_tail_per_mille: 500,
                },
            );
            let mut out = Vec::new();
            for seq in 0..64 {
                out.push(plan.storage_fault("db-1", "heap", StorageFault::TornPage, seq));
                out.push(plan.storage_fault("db-1", "wal", StorageFault::LostFsync, seq));
                out.push(plan.storage_fault("db-1", "wal", StorageFault::TruncatedWalTail, seq));
            }
            out
        };
        let a = draws(0xABCD);
        let b = draws(0xABCD);
        assert_eq!(a, b);
        assert!(a.contains(&true) && a.contains(&false));
        assert_ne!(a, draws(0xDCBA), "different seed, different schedule");
    }

    #[test]
    fn plain_connection_passes_through_unwrapped() {
        let (net, plan, addr) = fault_net(9);
        let mut conn = net.dial(&addr).unwrap();
        conn.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(plan.stats().dials, 1);
    }
}
