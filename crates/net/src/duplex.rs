use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::poll::{Readiness, TryRead};
use crate::{NetError, Result, Stream};

/// Shared state for one direction of a duplex pipe.
struct Pipe {
    buf: Mutex<PipeBuf>,
    readable: Condvar,
}

struct PipeBuf {
    data: VecDeque<u8>,
    closed: bool,
    /// Reactor handle to wake whenever data or EOF arrives. Wakes are
    /// edge-triggered: registered consumers drain via `try_read` until
    /// `WouldBlock` on every wake. Blocking `read`ers coexist through the
    /// condvar path.
    watcher: Option<Readiness>,
}

impl Pipe {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            buf: Mutex::new(PipeBuf {
                data: VecDeque::new(),
                closed: false,
                watcher: None,
            }),
            readable: Condvar::new(),
        })
    }

    fn write(&self, bytes: &[u8]) -> Result<()> {
        let mut guard = self.buf.lock();
        if guard.closed {
            return Err(NetError::Closed);
        }
        let was_empty = guard.data.is_empty();
        guard.data.extend(bytes);
        // Wake only on the empty→non-empty transition: consumers (blocking
        // readers and registered watchers alike) only park after observing
        // an empty buffer under this lock, so leftover data means the wake
        // that announced it is still pending — a pipelined burst of writes
        // pays one wake, not one per frame.
        if !was_empty {
            return Ok(());
        }
        let watcher = guard.watcher.clone();
        drop(guard);
        // A pipe direction has exactly one logical consumer (the peer's
        // reader); waking one waiter suffices and skips the thundering herd
        // a `try_clone`'d endpoint would otherwise pay per write. `close`
        // still notifies all: every waiter must observe EOF.
        self.readable.notify_one();
        if let Some(w) = watcher {
            w.wake();
        }
        Ok(())
    }

    fn read(&self, out: &mut [u8], timeout: Option<Duration>) -> Result<usize> {
        let mut guard = self.buf.lock();
        loop {
            if !guard.data.is_empty() {
                let n = out.len().min(guard.data.len());
                for (slot, byte) in out.iter_mut().zip(guard.data.drain(..n)) {
                    *slot = byte;
                }
                return Ok(n);
            }
            if guard.closed {
                return Ok(0);
            }
            match timeout {
                Some(t) => {
                    if self.readable.wait_for(&mut guard, t).timed_out()
                        && guard.data.is_empty()
                        && !guard.closed
                    {
                        return Err(NetError::TimedOut);
                    }
                }
                None => self.readable.wait(&mut guard),
            }
        }
    }

    fn close(&self) {
        let mut guard = self.buf.lock();
        guard.closed = true;
        let watcher = guard.watcher.clone();
        drop(guard);
        self.readable.notify_all();
        if let Some(w) = watcher {
            w.wake();
        }
    }
}

/// One end of an in-memory duplex byte stream.
///
/// Created in pairs by [`duplex_pair`]; data written to one end is readable
/// from the other. This is the connection type used by [`crate::SimNet`].
pub struct DuplexStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    peer: String,
    read_timeout: Option<Duration>,
    bytes_tx: Arc<AtomicU64>,
    close_on_drop: bool,
}

impl std::fmt::Debug for DuplexStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DuplexStream")
            .field("peer", &self.peer)
            .finish()
    }
}

/// Creates a connected pair of in-memory streams.
///
/// `a_name` and `b_name` label the two endpoints: the first returned stream
/// reports `b_name` as its peer and vice versa.
///
/// # Examples
///
/// ```
/// use rddr_net::{duplex_pair, Stream};
///
/// let (mut client, mut server) = duplex_pair("client", "server");
/// client.write_all(b"ping").unwrap();
/// let mut buf = [0u8; 4];
/// server.read_exact(&mut buf).unwrap();
/// assert_eq!(&buf, b"ping");
/// assert_eq!(client.peer(), "server");
/// ```
pub fn duplex_pair(a_name: &str, b_name: &str) -> (DuplexStream, DuplexStream) {
    duplex_pair_counted(
        a_name,
        b_name,
        Arc::new(AtomicU64::new(0)),
        Arc::new(AtomicU64::new(0)),
    )
}

/// Like [`duplex_pair`] but accounting traffic into shared byte counters
/// (used by [`crate::SimNet`] for its [`crate::NetStats`]).
pub(crate) fn duplex_pair_counted(
    a_name: &str,
    b_name: &str,
    a_to_b: Arc<AtomicU64>,
    b_to_a: Arc<AtomicU64>,
) -> (DuplexStream, DuplexStream) {
    let ab = Pipe::new();
    let ba = Pipe::new();
    let a = DuplexStream {
        rx: Arc::clone(&ba),
        tx: Arc::clone(&ab),
        peer: b_name.to_string(),
        read_timeout: None,
        bytes_tx: Arc::clone(&a_to_b),
        close_on_drop: true,
    };
    let b = DuplexStream {
        rx: ab,
        tx: ba,
        peer: a_name.to_string(),
        read_timeout: None,
        bytes_tx: b_to_a,
        close_on_drop: true,
    };
    (a, b)
}

impl Stream for DuplexStream {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.rx.read(buf, self.read_timeout)
    }

    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.tx.write(buf)?;
        self.bytes_tx.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn shutdown(&mut self) {
        self.tx.close();
        self.rx.close();
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn try_clone(&self) -> Result<crate::BoxStream> {
        Ok(Box::new(DuplexStream {
            rx: Arc::clone(&self.rx),
            tx: Arc::clone(&self.tx),
            peer: self.peer.clone(),
            read_timeout: self.read_timeout,
            bytes_tx: Arc::clone(&self.bytes_tx),
            close_on_drop: false,
        }))
    }

    fn poll_register(&mut self, readiness: Readiness) -> bool {
        let mut guard = self.rx.buf.lock();
        let ready_now = !guard.data.is_empty() || guard.closed;
        guard.watcher = Some(readiness.clone());
        drop(guard);
        if ready_now {
            readiness.wake();
        }
        true
    }

    fn try_read(&mut self, buf: &mut [u8]) -> Result<TryRead> {
        let mut guard = self.rx.buf.lock();
        if !guard.data.is_empty() {
            let n = buf.len().min(guard.data.len());
            for (slot, byte) in buf.iter_mut().zip(guard.data.drain(..n)) {
                *slot = byte;
            }
            return Ok(TryRead::Data(n));
        }
        if guard.closed {
            return Ok(TryRead::Eof);
        }
        Ok(TryRead::WouldBlock)
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        if self.close_on_drop {
            self.tx.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_directions() {
        let (mut a, mut b) = duplex_pair("a", "b");
        a.write_all(b"to-b").unwrap();
        b.write_all(b"to-a").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"to-b");
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"to-a");
    }

    #[test]
    fn drop_signals_eof_to_peer() {
        let (a, mut b) = duplex_pair("a", "b");
        drop(a);
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn read_after_shutdown_drains_then_eof() {
        let (mut a, mut b) = duplex_pair("a", "b");
        a.write_all(b"xy").unwrap();
        a.shutdown();
        let mut buf = [0u8; 2];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"xy");
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn read_timeout_fires() {
        let (_a, mut b) = duplex_pair("a", "b");
        b.set_read_timeout(Some(Duration::from_millis(10)));
        let mut buf = [0u8; 1];
        assert!(matches!(b.read(&mut buf), Err(NetError::TimedOut)));
    }

    #[test]
    fn write_to_closed_peer_fails() {
        let (mut a, mut b) = duplex_pair("a", "b");
        b.shutdown();
        assert!(matches!(a.write_all(b"x"), Err(NetError::Closed)));
    }

    #[test]
    fn large_transfer_is_intact() {
        let (mut a, mut b) = duplex_pair("a", "b");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let writer = std::thread::spawn(move || {
            for chunk in payload.chunks(4096) {
                a.write_all(chunk).unwrap();
            }
        });
        let mut got = vec![0u8; expected.len()];
        b.read_exact(&mut got).unwrap();
        writer.join().unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn write_wakes_reader_blocked_under_read_timeout() {
        // Pins the notify_one wakeup: a reader parked in the timed wait path
        // must be woken by a write long before its timeout expires, not
        // discover the data only when `wait_for` times out.
        let (mut a, mut b) = duplex_pair("a", "b");
        b.set_read_timeout(Some(Duration::from_secs(5)));
        let reader = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            let mut buf = [0u8; 2];
            b.read_exact(&mut buf).unwrap();
            (buf, t0.elapsed())
        });
        std::thread::sleep(Duration::from_millis(20));
        a.write_all(b"hi").unwrap();
        let (buf, elapsed) = reader.join().unwrap();
        assert_eq!(&buf, b"hi");
        assert!(
            elapsed < Duration::from_secs(4),
            "reader should wake on write, not on timeout (took {elapsed:?})"
        );
    }

    #[test]
    fn concurrent_reader_wakes_on_write() {
        let (mut a, mut b) = duplex_pair("a", "b");
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(Duration::from_millis(20));
        a.write_all(b"abc").unwrap();
        assert_eq!(&reader.join().unwrap(), b"abc");
    }
}
